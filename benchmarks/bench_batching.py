"""BATCH-THROUGHPUT: message aggregation on small-call workloads.

Small calls are round-trip bound: a 64-byte echo pays the same framing,
capability pass, and RTT as a 64 KiB one.  This bench measures how much
of that fixed cost the batching layer recovers, three ways:

* **TCP, explicit scopes** — sequential small echoes vs the same calls
  queued through ``gp.batch()`` scopes over one pipelined connection.
  The scoped run must clear **2x** the unbatched msgs/sec (it typically
  lands far higher: one round trip per chunk instead of per call).
* **TCP, transparent coalescing** — a threaded workload with the
  context's :class:`~repro.core.batching.BatchPolicy` enabled; reported
  via the recorder's ``batch_*`` counters.  The gate here is that
  aggregation really happens (mean flushed batch size > 1), not a
  wall-clock ratio — thread scheduling is the driver's, not ours.
* **simnet, virtual time** — the seeded
  :class:`~repro.cluster.workload.BatchedSyntheticWorkload` vs its
  unbatched twin on a quiet simulated cluster.  Batched goodput must
  clear **2x**, and two identically-seeded runs must agree bit for bit
  (makespan, latencies, per-object counts).

Also runnable as a plain script (CI's docs job uses it as a smoke
gate):

    python benchmarks/bench_batching.py --smoke
"""

import argparse
import sys
import threading
import time

import pytest

from repro.cluster import (
    BatchedSyntheticWorkload,
    SyntheticWorkload,
    bind_workers,
    build_cluster,
)
from repro.cluster.node import WorkUnit
from repro.core import ORB
from repro.core.context import Placement
from repro.core.objref import ObjectReference
from repro.core.resilience import BreakerRegistry, RetryPolicy
from repro.metrics.recorder import MetricsRecorder
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

SEED = 2026
PAYLOAD = b"\xa5" * 64          # a genuinely small call
TCP_CALLS = 600
BATCH_SIZE = 16
COALESCE_THREADS = 8
COALESCE_CALLS = 40             # per thread
SIM_REQUESTS = 400


# -- TCP wall clock -----------------------------------------------------

def tcp_world():
    """Client and server that can only reach each other over TCP, so
    every call rides the pipelined socket."""
    orb = ORB()
    server = orb.context("bench-srv", enable_tcp=True,
                         placement=Placement("sm", "sl", "ss"))
    client = orb.context("bench-cli", enable_tcp=True,
                         placement=Placement("cm", "cl", "cs"))
    oref = ObjectReference.from_bytes(
        server.export(WorkUnit("w")).to_bytes())
    for entry in oref.protocols:
        entry.proto_data["addresses"] = [
            a for a in entry.proto_data.get("addresses", [])
            if a.get("transport") == "tcp"]
    return orb, client.bind(oref)


def tcp_msgs_per_sec(n_calls: int, batch_size: int) -> float:
    """Sequential small echoes; ``batch_size > 1`` routes them through
    explicit scopes in chunks."""
    orb, gp = tcp_world()
    try:
        gp.invoke("process", PAYLOAD)   # settle the connection
        started = time.perf_counter()
        if batch_size <= 1:
            for _ in range(n_calls):
                gp.invoke("process", PAYLOAD)
        else:
            done = 0
            while done < n_calls:
                take = min(batch_size, n_calls - done)
                with gp.batch() as scope:
                    futures = [scope.invoke("process", PAYLOAD)
                               for _ in range(take)]
                for future in futures:
                    assert bytes(future.result()) == PAYLOAD
                done += take
        elapsed = time.perf_counter() - started
    finally:
        orb.shutdown()
    return n_calls / elapsed


def tcp_coalescing_stats(n_threads: int, calls_per_thread: int) -> dict:
    """Threaded workload with transparent coalescing on; returns
    msgs/sec plus the recorder's batch counters."""
    orb, gp = tcp_world()
    recorder = MetricsRecorder(clock=gp.context.clock)
    recorder.attach(gp.hooks)
    try:
        gp.context.batch_policy.enabled = True
        gp.invoke("process", PAYLOAD)
        barrier = threading.Barrier(n_threads)
        failures = []

        def worker():
            barrier.wait()
            for _ in range(calls_per_thread):
                if bytes(gp.invoke("process", PAYLOAD)) != PAYLOAD:
                    failures.append("corrupt echo")

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        elapsed = time.perf_counter() - started
        assert not failures, failures[:3]
        flushes = recorder.counter_value("batch_flushes_total")
        batched = recorder.counter_value("batched_calls_total")
    finally:
        recorder.detach(gp.hooks)
        orb.shutdown()
    total = n_threads * calls_per_thread
    return {"msgs_per_sec": total / elapsed,
            "flushes": flushes, "batched_calls": batched,
            "mean_batch": batched / flushes if flushes else 0.0}


# -- simnet virtual time ------------------------------------------------

def sim_world(seed: int):
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    for i in range(3):
        topo.add_machine(f"m{i}", lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    nodes = build_cluster(orb, ["m1", "m2"], workers_per_node=1)
    client = orb.context("client", machine="m0")
    client.breakers = BreakerRegistry(client.clock, cooldown=1.0)
    table = bind_workers(client, nodes,
                         retry_policy=RetryPolicy(max_attempts=4,
                                                  seed=seed))
    return sim, orb, table


def sim_point(batch_size: int, *, seed: int = SEED,
              n_requests: int = SIM_REQUESTS):
    """One virtual-time run; returns (msgs/sec, WorkloadResult)."""
    sim, orb, table = sim_world(seed)
    kwargs = dict(seed=seed, n_requests=n_requests,
                  object_names=list(table), payload_bytes=64,
                  mean_think_seconds=0.0)
    if batch_size <= 1:
        workload = SyntheticWorkload(**kwargs)
    else:
        workload = BatchedSyntheticWorkload(batch_size=batch_size,
                                            **kwargs)
    result = workload.run([table], sim)
    orb.shutdown()
    assert result.errors == 0, "quiet network must not error"
    return n_requests / result.makespan, result


# -- reporting and gates ------------------------------------------------

def run_suite(*, tcp_calls: int, coalesce_calls: int,
              sim_requests: int) -> dict:
    tcp_plain = tcp_msgs_per_sec(tcp_calls, 1)
    tcp_scoped = tcp_msgs_per_sec(tcp_calls, BATCH_SIZE)
    coalesced = tcp_coalescing_stats(COALESCE_THREADS, coalesce_calls)
    sim_plain, _ = sim_point(1, n_requests=sim_requests)
    sim_batched, first = sim_point(BATCH_SIZE, n_requests=sim_requests)
    sim_again, second = sim_point(BATCH_SIZE, n_requests=sim_requests)
    return {
        "tcp_plain": tcp_plain, "tcp_scoped": tcp_scoped,
        "coalesced": coalesced,
        "sim_plain": sim_plain, "sim_batched": sim_batched,
        "sim_again": sim_again,
        "sim_results": (first, second),
    }


def check(stats: dict) -> None:
    """The claims every run must uphold."""
    assert stats["tcp_scoped"] >= 2.0 * stats["tcp_plain"], (
        f"explicit batching must at least double TCP msgs/sec: "
        f"{stats['tcp_scoped']:.0f} vs {stats['tcp_plain']:.0f}")
    assert stats["coalesced"]["mean_batch"] > 1.0, (
        "transparent coalescing never aggregated anything")
    assert stats["sim_batched"] >= 2.0 * stats["sim_plain"], (
        f"batched virtual-time goodput must at least double: "
        f"{stats['sim_batched']:.0f} vs {stats['sim_plain']:.0f}")
    first, second = stats["sim_results"]
    assert stats["sim_batched"] == stats["sim_again"], \
        "identical seed must give identical virtual throughput"
    assert first == second and first.to_dict() == second.to_dict(), \
        "identical seed must give identical batched results"


def format_report(stats: dict) -> str:
    co = stats["coalesced"]
    return "\n".join([
        f"tcp unbatched        {stats['tcp_plain']:>10.0f} msgs/s",
        f"tcp scoped (x{BATCH_SIZE:<3})    {stats['tcp_scoped']:>10.0f}"
        f" msgs/s   ({stats['tcp_scoped'] / stats['tcp_plain']:.1f}x)",
        f"tcp coalesced        {co['msgs_per_sec']:>10.0f} msgs/s   "
        f"(mean batch {co['mean_batch']:.1f}, "
        f"{co['flushes']:.0f} flushes)",
        f"simnet unbatched     {stats['sim_plain']:>10.0f} msgs/s "
        f"(virtual)",
        f"simnet batched (x{BATCH_SIZE:<3}){stats['sim_batched']:>10.0f}"
        f" msgs/s (virtual, "
        f"{stats['sim_batched'] / stats['sim_plain']:.1f}x)",
    ])


@pytest.mark.benchmark(group="batching")
def test_batching_throughput(benchmark, record_result):
    stats = benchmark.pedantic(
        lambda: run_suite(tcp_calls=TCP_CALLS,
                          coalesce_calls=COALESCE_CALLS,
                          sim_requests=SIM_REQUESTS),
        rounds=1, iterations=1)
    check(stats)
    record_result(
        "batching_throughput",
        f"Small-call ({len(PAYLOAD)} B) throughput, unbatched vs "
        f"batched (seed {SEED})\n" + format_report(stats))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run (CI smoke gate)")
    args = parser.parse_args(argv)
    stats = run_suite(
        tcp_calls=200 if args.smoke else TCP_CALLS,
        coalesce_calls=15 if args.smoke else COALESCE_CALLS,
        sim_requests=150 if args.smoke else SIM_REQUESTS)
    check(stats)
    print(format_report(stats))
    print("\nbatching bench ok: >=2x on both transports, "
          "simnet runs deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
