"""ABL-CAP: per-capability overhead ablation.

§5's inference is that "the capabilities based approach adds only a
small amount of overhead" because network time dominates.  This ablation
quantifies it per capability: for each capability alone (and the paper's
stack) over ATM and Ethernet, the bandwidth lost relative to plain
Nexus at 1 MiB payloads.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.cluster.node import WorkUnit
from repro.core.capabilities import (
    AuthenticationCapability,
    CallQuotaCapability,
    CompressionCapability,
    EncryptionCapability,
    IntegrityCapability,
)
from repro.core.orb import ORB
from repro.security.keys import Principal
from repro.simnet.linktypes import ATM_155, ETHERNET_10
from repro.simnet.presets import paper_testbed
from repro.simnet.simulator import NetworkSimulator

PAYLOAD = 1 << 20
REPS = 3


def stacks(server, client):
    principal = Principal("bench", "lab")
    key = server.keystore.generate(principal)
    client.keystore.install(principal, key)
    always = "always"
    return {
        "quota": [CallQuotaCapability.for_calls(10 ** 9,
                                                applicability=always)],
        "encryption": [EncryptionCapability.server_descriptor(
            key_seed=1, applicability=always)],
        "auth": [AuthenticationCapability.for_principal(
            principal, applicability=always)],
        "integrity": [IntegrityCapability.checksum(applicability=always)],
        "compression": [CompressionCapability.with_codec(
            "rle", applicability=always)],
        "quota+encryption (paper)": [
            CallQuotaCapability.for_calls(10 ** 9, applicability=always),
            EncryptionCapability.server_descriptor(key_seed=1,
                                                   applicability=always)],
    }


def measure_mbps(gp, sim) -> float:
    payload = np.arange(PAYLOAD, dtype=np.uint8)
    gp.invoke("process", payload[:1])
    t0 = sim.clock.now()
    for _ in range(REPS):
        gp.invoke("process", payload)
    return (2 * PAYLOAD * REPS * 8.0) / (sim.clock.now() - t0) / 1e6


def run_ablation(fabric):
    tb = paper_testbed(fabric=fabric)
    sim = NetworkSimulator(tb.topology, keep_records=0)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    server = orb.context("server", machine=tb.m1)

    baseline_gp = client.bind(server.export(WorkUnit("base")))
    baseline_gp.drop_protocol("shm")
    baseline = measure_mbps(baseline_gp, sim)

    rows = [("plain nexus (baseline)", baseline, 0.0)]
    for name, stack in stacks(server, client).items():
        gp = client.bind(server.export(WorkUnit(name),
                                       glue_stacks=[stack]))
        gp.drop_protocol("shm")
        gp.drop_protocol("nexus")
        mbps = measure_mbps(gp, sim)
        rows.append((name, mbps, 100.0 * (baseline - mbps) / baseline))
    orb.shutdown()
    return rows


@pytest.mark.benchmark(group="ablation")
def test_capability_overhead(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: {"atm": run_ablation(ATM_155),
                 "ethernet": run_ablation(ETHERNET_10)},
        rounds=1, iterations=1)

    out = []
    for fabric, rows in results.items():
        table = format_table(
            ["configuration", "Mbps @1MiB", "overhead vs nexus (%)"],
            [[n, f"{m:.4g}", f"{o:.1f}"] for n, m, o in rows])
        out.append(f"[{fabric}]\n{table}")
    record_result("capability_overhead", "\n\n".join(out))

    for fabric, rows in results.items():
        budget = 35.0 if fabric == "atm" else 10.0
        for name, _mbps, overhead in rows:
            if "compression" in name:
                continue  # compression can *win* or lose; not bounded here
            assert overhead < budget, (fabric, name, overhead)
