"""CHAOS-SWEEP: degradation curves vs fault severity.

Drives the same seeded `SyntheticWorkload` through increasingly hostile
`FaultPlan`s — a mid-run reply-loss window plus a node flap — and
reports, per severity, the degradation curve the `MetricsRecorder`
measured in virtual time: goodput dip, error rate, retry volume, and
time-to-recovery.  Every run is a pure function of its seed, so the
sweep doubles as a determinism check: the 0.4-severity point is run
twice and must produce identical buckets.

Also runnable as a plain script (CI's docs job uses it as a smoke
gate):

    python benchmarks/bench_chaos_sweep.py --smoke
"""

import argparse
import sys

import pytest

from repro.cluster import ChaosRun, SyntheticWorkload, bind_workers, build_cluster
from repro.core import ORB
from repro.core.resilience import BreakerRegistry, RetryPolicy
from repro.faults import FaultPlan, FaultRule
from repro.metrics import assert_degradation
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

SEED = 2026
SEVERITIES = [0.0, 0.2, 0.4, 0.6]
N_REQUESTS = 400

#: Fault phases (virtual seconds): reply loss in [2, 4), node flap at 5.
LOSS_WINDOW = (2.0, 4.0)
FLAP_AT, FLAP_FOR = 5.0, 1.0


def build_world(seed: int):
    """3 machines, workers on m1/m2, client (short-cooldown breakers)
    on m0."""
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    for i in range(3):
        topo.add_machine(f"m{i}", lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    nodes = build_cluster(orb, ["m1", "m2"], workers_per_node=1)
    client = orb.context("client", machine="m0")
    client.breakers = BreakerRegistry(client.clock, cooldown=1.0)
    table = bind_workers(client, nodes,
                         retry_policy=RetryPolicy(max_attempts=4, seed=seed))
    return sim, orb, table


def run_severity(drop_p: float, *, seed: int = SEED,
                 n_requests: int = N_REQUESTS):
    """One sweep point: the scripted chaos scenario at loss ``drop_p``."""
    sim, orb, table = build_world(seed)
    plan = FaultPlan(seed=seed)
    if drop_p > 0:
        plan.rule_between(*LOSS_WINDOW,
                          FaultRule("drop", probability=drop_p, dst="m0"))
        plan.flap_node("m2", ["m0", "m1"], at=FLAP_AT, duration=FLAP_FOR)
    workload = SyntheticWorkload(seed=seed, n_requests=n_requests,
                                 object_names=list(table),
                                 payload_bytes=2048,
                                 mean_think_seconds=0.02)
    report = ChaosRun(workload, plan, bucket_seconds=1.0).run([table], sim)
    orb.shutdown()
    return report


def sweep(severities, n_requests: int):
    return [(p, run_severity(p, n_requests=n_requests))
            for p in severities]


def format_report(results) -> str:
    lines = [f"{'loss':>5}  {'ok':>4}  {'err':>4}  {'retries':>7}  "
             f"{'dip':>6}  {'recovered':>9}"]
    for p, report in results:
        envelope = assert_degradation(report.curve, max_dip=1.0)
        retries = report.metrics["counters"].get("retries_total", 0)
        recovered = envelope["recovered_at"]
        lines.append(
            f"{p:>5.2f}  {report.result.ok:>4}  "
            f"{report.result.errors:>4}  {retries:>7.0f}  "
            f"{envelope['dip']:>6.1%}  "
            f"{'never' if recovered is None else f'{recovered:.0f}s':>9}")
    worst = results[-1][1]
    lines.append("")
    lines.append(f"worst severity ({results[-1][0]:.2f}) curve:")
    lines.append(worst.curve.format_table())
    return "\n".join(lines)


def check(results, *, n_requests: int) -> None:
    """The qualitative claims every sweep must uphold."""
    clean = results[0][1]
    assert clean.result.errors == 0, "fault-free run must not error"
    assert clean.result.ok == n_requests
    for p, report in results[1:]:
        # The harness recovers: goodput is back to >= 80% of baseline
        # within 4 virtual seconds of the trough at every severity.
        assert_degradation(report.curve, recover_within=4.0)
        assert report.result.errors > 0 or p == 0.0 or \
            report.metrics["counters"].get("retries_total", 0) > 0


def run_determinism_check(drop_p: float, n_requests: int) -> None:
    a = run_severity(drop_p, n_requests=n_requests)
    b = run_severity(drop_p, n_requests=n_requests)
    assert a.curve.to_dicts() == b.curve.to_dicts(), \
        "identical seed must give identical degradation buckets"
    assert a.metrics == b.metrics
    assert a.result == b.result


@pytest.mark.benchmark(group="chaos")
def test_chaos_sweep(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: sweep(SEVERITIES, N_REQUESTS), rounds=1, iterations=1)
    check(results, n_requests=N_REQUESTS)
    run_determinism_check(0.4, N_REQUESTS)
    record_result(
        "chaos_sweep",
        f"Degradation vs reply-loss severity ({N_REQUESTS} requests, "
        f"seed {SEED}, loss window {LOSS_WINDOW}, flap at {FLAP_AT}s, "
        f"virtual time)\n" + format_report(results))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep (CI smoke gate)")
    args = parser.parse_args(argv)
    severities = [0.0, 0.4] if args.smoke else SEVERITIES
    n_requests = 150 if args.smoke else N_REQUESTS
    results = sweep(severities, n_requests)
    check(results, n_requests=n_requests)
    run_determinism_check(severities[-1], n_requests)
    print(format_report(results))
    print("\nchaos sweep ok: envelopes held, curves deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
