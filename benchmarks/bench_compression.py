"""ABL-COMP: compression codec throughput and ratios (wall clock).

Three payload classes that bracket the compression capability's use:
sparse numeric arrays (RLE's home turf), structured text (LZSS/zlib),
and incompressible noise (the worst case the capability must not choke
on).
"""

import numpy as np
import pytest

from repro.compression import LzssCodec, RleCodec, ZlibCodec

rng = np.random.default_rng(1)

SPARSE = np.zeros(1 << 18, dtype=np.uint8)
SPARSE[:: 1024] = 7
SPARSE = SPARSE.tobytes()

TEXT = (b"timestamp=1999-04-12 station=KBMG temp=17.2 wind=3.4 "
        b"pressure=1013.2 humidity=0.81\n") * 2000

NOISE = rng.integers(0, 256, size=1 << 17, dtype=np.uint8).tobytes()

CODECS = [RleCodec(), LzssCodec(), ZlibCodec()]
PAYLOADS = {"sparse": SPARSE, "text": TEXT, "noise": NOISE}


@pytest.mark.benchmark(group="compress")
@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
@pytest.mark.parametrize("payload_name", list(PAYLOADS))
def test_compress(benchmark, codec, payload_name):
    payload = PAYLOADS[payload_name]
    # LZSS is a from-scratch Python matcher: skip its slowest pairing to
    # keep the suite brisk; its throughput is visible on the text case.
    if codec.name == "lzss" and payload_name == "noise":
        pytest.skip("lzss/noise: worst case, measured via text instead")
    out = benchmark(lambda: codec.compress(payload))
    assert codec.decompress(out) == payload


@pytest.mark.benchmark(group="decompress")
@pytest.mark.parametrize("codec", CODECS, ids=lambda c: c.name)
def test_decompress_sparse(benchmark, codec):
    wire = codec.compress(SPARSE)
    out = benchmark(lambda: codec.decompress(wire))
    assert out == SPARSE


@pytest.mark.benchmark(group="compress")
def test_ratio_table(benchmark, record_result):
    """Record the achieved ratios per codec and payload class (the
    numbers that decide the capability's default)."""
    from repro.bench.reporting import format_table

    def compute():
        return [[codec.name, name, f"{codec.ratio(payload):.4f}"]
                for codec in CODECS
                for name, payload in PAYLOADS.items()]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    record_result("compression_ratios",
                  "Compression ratios (compressed/original)\n"
                  + format_table(["codec", "payload", "ratio"], rows))
    # RLE must crush the sparse case; zlib must crush text.
    assert RleCodec().ratio(SPARSE) < 0.02
    assert ZlibCodec().ratio(TEXT) < 0.1
