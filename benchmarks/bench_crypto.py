"""ABL-CRYPTO: security-primitive throughput (wall clock).

The simulator charges *modelled* 1999 costs for capability processing;
this bench measures what the primitives actually cost on the host, for
anyone re-calibrating the CpuModel or using the library wall-clock.
"""

import numpy as np
import pytest

from repro.security.block_cipher import XteaCtr
from repro.security.dh import DhPrivateKey
from repro.security.hmac_md import hmac_sign
from repro.security.stream_cipher import StreamCipher

PAYLOAD = np.random.default_rng(0).integers(
    0, 256, size=1 << 20, dtype=np.uint8).tobytes()  # 1 MiB


@pytest.mark.benchmark(group="crypto")
def test_stream_cipher_throughput(benchmark):
    cipher = StreamCipher(b"bench-key")
    out = benchmark(lambda: cipher.encrypt(PAYLOAD, nonce=7))
    assert len(out) == len(PAYLOAD)


@pytest.mark.benchmark(group="crypto")
def test_xtea_ctr_throughput(benchmark):
    cipher = XteaCtr(b"0123456789abcdef")
    out = benchmark(lambda: cipher.encrypt(PAYLOAD, nonce=7))
    assert len(out) == len(PAYLOAD)


@pytest.mark.benchmark(group="crypto")
def test_hmac_throughput(benchmark):
    out = benchmark(lambda: hmac_sign(b"key", PAYLOAD))
    assert len(out) == 32


@pytest.mark.benchmark(group="crypto")
def test_dh_key_agreement(benchmark):
    """Full ephemeral handshake: keygen + shared-secret derivation.
    This is the per-OR (not per-message!) cost of the encryption
    capability."""
    server = DhPrivateKey(seed=1)

    def handshake():
        client = DhPrivateKey()
        return client.derive_key(server.public, nbytes=16)

    key = benchmark(handshake)
    assert len(key) == 16


@pytest.mark.benchmark(group="crypto")
def test_adler32_throughput(benchmark):
    from repro.util.checksums import adler32

    out = benchmark(lambda: adler32(PAYLOAD))
    assert 0 <= out < 2 ** 32
