"""DIRECTORY: replicated-naming availability through a leader partition.

Stands up a 3-replica `repro.directory` group on the simulated network,
binds a few names, partitions the leader's machine away mid-run, and
measures resolution availability while the majority side re-elects,
takes a write, heals, and converges.  Two gates:

* **availability** — fresh resolves must succeed for >= 80% of attempts
  across the whole run, outage window included;
* **determinism** — the run is seeded end to end (election timeouts,
  fault plan, virtual time), so executing the same scenario twice must
  produce bit-identical traces.

Also runnable as a plain script (CI's docs job uses it as a smoke
gate):

    python benchmarks/bench_directory.py --smoke
"""

import argparse
import sys

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.directory import FOLLOWER, DirectoryCluster
from repro.exceptions import HpcError
from repro.faults import FaultPlan
from repro.idl.interface import remote_interface, remote_method
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

SEED = 42
MACHINES = ["m0", "m1", "m2"]
NAMES = 3
ROUNDS = 32
STEP = 0.25
PARTITION_AT = 0.5
HEAL_AT = 5.0


@remote_interface("DirBenchTarget")
class DirBenchTarget:
    @remote_method
    def ping(self) -> str:
        return "pong"


def run_once(seed: int = SEED) -> dict:
    """One seeded partition scenario; returns its full plain-data trace."""
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    for name in MACHINES + ["mc"]:
        topo.add_machine(name, lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    bus = HookBus()
    events = []
    for kind in ("leader_elected", "lease_expired", "quorum_write"):
        bus.on(kind, lambda e: events.append(e.kind))
    cluster = DirectoryCluster(orb, replicas=3, machines=MACHINES,
                               seed=seed, hooks=bus)
    cli = orb.context("cli", machine="mc")
    client = cluster.client(cli)

    first = cluster.elect()
    oref = cli.export(DirBenchTarget())
    for i in range(NAMES):
        client.bind(f"svc/{i}", oref)

    leader_machine = MACHINES[int(first.split("-")[1])]
    others = [m for m in MACHINES if m != leader_machine]
    plan = FaultPlan(seed=seed)
    start = cluster.contexts[0].clock.now()
    plan.partition_at(start + PARTITION_AT, [leader_machine], others)
    plan.heal_at(start + HEAL_AT)
    sim.fault_plan = plan

    ok = attempts = 0
    wrote_during = None
    trace = []
    for round_no in range(ROUNDS):
        cluster.pump(STEP, plan=plan)
        for i in range(NAMES):
            attempts += 1
            try:
                client.resolve(f"svc/{i}", fresh=True)
                ok += 1
            except HpcError:
                pass
        # One write must land on the majority side during the outage.
        if wrote_during is None and round_no >= 8:
            try:
                wrote_during = (round_no,
                                client.bind("svc/during", oref))
            except HpcError:
                pass
        trace.append((round_no,
                      round(cluster.contexts[0].clock.now(), 6),
                      cluster.leader_id(), ok))
    # Let the deposed leader rejoin and the logs converge.
    settled = None
    for extra in range(40):
        cluster.pump(0.5, plan=plan)
        if (cluster.leader_id()
                and cluster.replicas[first].role == FOLLOWER
                and len({(rep.state.last_seq, rep.state.applied_seq)
                         for rep in cluster.replicas.values()}) == 1):
            settled = extra
            break
    result = {
        "first": first,
        "second": cluster.leader_id(),
        "wrote_during": wrote_during,
        "settled": settled,
        "events": events,
        "trace": trace,
        "snapshots": {nid: rep.state.snapshot() for nid, rep
                      in sorted(cluster.replicas.items())},
        "ok": ok,
        "attempts": attempts,
        "availability": ok / attempts,
    }
    cluster.stop()
    return result


def check(a: dict, b: dict) -> dict:
    """The acceptance criteria every run pair must uphold."""
    assert a["availability"] >= 0.8, (
        f"resolution availability {a['availability']:.1%} < 80% "
        f"through the partition")
    assert a["second"], "no leader after heal"
    assert a["second"] != a["first"], "majority side never re-elected"
    assert a["wrote_during"] is not None, \
        "no write landed during the outage"
    assert a["settled"] is not None, "replica logs never converged"
    assert len(set(map(repr, a["snapshots"].values()))) == 1, \
        "replica tables diverged"
    assert a == b, "seeded runs were not bit-identical"
    return {"availability": a["availability"],
            "failover": f"{a['first']} -> {a['second']}",
            "elections": a["events"].count("leader_elected"),
            "settled_after": a["settled"]}


def format_report(summary: dict) -> str:
    return (f"availability={summary['availability']:.1%} "
            f"failover={summary['failover']} "
            f"elections={summary['elections']} "
            f"converged(+{summary['settled_after']} settle rounds)")


@pytest.mark.benchmark(group="directory")
def test_directory_partition_availability(benchmark, record_result):
    a = benchmark.pedantic(run_once, rounds=1, iterations=1)
    b = run_once()
    summary = check(a, b)
    record_result(
        "directory_partition",
        f"Replicated directory through a leader partition (3 replicas, "
        f"simnet, seed={SEED}, partition {PARTITION_AT}s–{HEAL_AT}s)\n"
        + format_report(summary))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke gate (same scenario; kept for "
                        "symmetry with the other benches)")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)
    a = run_once(args.seed)
    b = run_once(args.seed)
    summary = check(a, b)
    print(format_report(summary))
    print("\ndirectory ok: re-elected through a leader partition, "
          "bit-identical across two seeded runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
