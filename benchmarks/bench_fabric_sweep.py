"""ABL-FABRIC: where does "capabilities are nearly free" stop holding?

§5 infers that "even for fast networks such as ATM, the capabilities
based approach adds only a small amount of overhead" because the wire
dominates.  That is a statement about the 1999 network/CPU balance — so
this ablation sweeps the fabric from 10 Mbps Ethernet to a gigabit-class
link (CPU model held fixed at the Ultra-10) and measures the capability
overhead trend.  The forward-looking result: the overhead grows
monotonically with fabric speed and stops being "small" somewhere past
the paper's ATM-era hardware — the claim is an artifact of its decade,
which the model makes quantitative.
"""

import pytest

from repro.bench.figures import run_fig5
from repro.bench.reporting import format_table
from repro.simnet.linktypes import (
    ATM_155,
    ETHERNET_10,
    ETHERNET_100,
    GIGABIT_1000,
)

FABRICS = [ETHERNET_10, ETHERNET_100, ATM_155, GIGABIT_1000]
PROBE_SIZE = 1 << 20


def sweep():
    rows = []
    for fabric in FABRICS:
        result = run_fig5(fabric=fabric, sizes=[PROBE_SIZE],
                          repetitions=2)
        nexus = result.bandwidth_mbps["Nexus"][0]
        overhead = result.capability_overhead_at(PROBE_SIZE)
        shm = result.shm_speedup_at(PROBE_SIZE)
        rows.append((fabric.name, nexus, 100 * overhead, shm))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_fabric_sweep(benchmark, record_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["fabric", "Nexus Mbps @1MiB", "capability overhead (%)",
         "shm speedup (x)"],
        [[name, f"{mbps:.4g}", f"{ov:.1f}", f"{spd:.1f}"]
         for name, mbps, ov, spd in rows])
    record_result(
        "fabric_sweep",
        "Capability overhead vs fabric speed (quota+encryption stack, "
        "Ultra-10 CPU)\n" + table)

    # Monotone in *achieved* bandwidth: faster networks expose more
    # capability CPU.  (The ATM model's end-to-end rate sits below
    # switched 100 Mbps Ethernet's, so sort by what Nexus achieved.)
    by_speed = sorted(rows, key=lambda r: r[1])
    overheads = [ov for _n, _m, ov, _s in by_speed]
    assert overheads == sorted(overheads)
    # The paper's era (<= ATM): small.  The gigabit extrapolation: not.
    by_name = {name: ov for name, _m, ov, _s in rows}
    assert by_name["ethernet-10"] < 3
    assert by_name["atm-155"] < 15
    assert by_name["gigabit-1000"] > by_name["atm-155"]
