"""FAULT-REC: recovery latency vs loss rate under simnet.

The resilient invocation layer pays for packet loss with retries and
seeded backoff.  This sweep injects probabilistic reply loss on the
client-server link and measures, in deterministic virtual time, what a
logical call costs as the loss rate climbs — the price of transparency.
"""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.core.resilience import RetryPolicy
from repro.exceptions import HpcError
from repro.faults import FaultPlan
from repro.idl import remote_interface, remote_method
from repro.simnet import NetworkSimulator, paper_testbed

LOSS_RATES = [0.0, 0.05, 0.15, 0.30, 0.50]
CALLS = 60
SEED = 1999


@remote_interface("BenchCell")
class BenchCell:
    @remote_method(retry_safe=True)
    def put(self, v: int) -> int:
        return v


def run_loss_rate(loss: float, seed: int = SEED):
    """One sweep point: CALLS invocations under ``loss`` reply loss.
    Returns (mean virtual latency, retries, failed calls)."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    server = orb.context("server", machine=tb.m1)
    plan = FaultPlan(seed=seed, hooks=HookBus())
    if loss > 0:
        plan.drop(probability=loss, src="M1", dst="M0")
        sim.fault_plan = plan

    gp = client.bind(server.export(BenchCell()),
                     retry_policy=RetryPolicy(max_attempts=6, seed=seed))
    retries = []
    gp.hooks.on("retry", lambda e: retries.append(e.data["attempt"]))

    clock = client.clock
    latencies, failed = [], 0
    for i in range(CALLS):
        t0 = clock.now()
        try:
            gp.invoke("put", i)
        except HpcError:
            failed += 1
        latencies.append(clock.now() - t0)
    orb.shutdown()
    return sum(latencies) / len(latencies), len(retries), failed


@pytest.mark.benchmark(group="fault-recovery")
def test_recovery_latency_vs_loss(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: [run_loss_rate(p) for p in LOSS_RATES],
        rounds=1, iterations=1)

    lines = [f"{'loss':>6}  {'mean call (ms)':>14}  {'retries':>7}  "
             f"{'failed':>6}"]
    for loss, (mean_s, retries, failed) in zip(LOSS_RATES, results):
        lines.append(f"{loss:>6.2f}  {mean_s * 1e3:>14.3f}  "
                     f"{retries:>7}  {failed:>6}")
    record_result(
        "fault_recovery",
        f"Recovery latency vs reply-loss rate ({CALLS} calls, "
        f"seed {SEED}, virtual time)\n" + "\n".join(lines))

    clean_mean, clean_retries, clean_failed = results[0]
    assert clean_retries == 0 and clean_failed == 0

    # Loss costs latency: the lossy sweep points are monotonically more
    # expensive than the clean baseline, and retries really happened.
    for loss, (mean_s, retries, failed) in zip(LOSS_RATES[1:],
                                               results[1:]):
        assert retries > 0
        assert mean_s > clean_mean

    # Determinism: the sweep is a pure function of the seed.
    assert run_loss_rate(0.30) == run_loss_rate(0.30)
