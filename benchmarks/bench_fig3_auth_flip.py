"""FIG3: the two-client authentication-flip scenario.

Reproduces Figure 3: a LAN-scoped authentication capability means the
off-LAN client authenticates and the local one does not; after the
object migrates to the other LAN the roles flip, with no client code
changes.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.scenario import run_fig3_scenario


@pytest.mark.benchmark(group="fig3")
def test_fig3_auth_flip(benchmark, record_result):
    result = benchmark.pedantic(run_fig3_scenario, rounds=1, iterations=1)

    table = format_table(
        ["client", "before migration", "after migration"],
        [["P1", result.before["P1"], result.after["P1"]],
         ["P2", result.before["P2"], result.after["P2"]]])
    record_result("fig3_auth_flip",
                  "Figure 3 authentication adaptivity\n" + table)

    assert result.before == {"P1": "nexus", "P2": "glue[auth]"}
    assert result.after == {"P1": "glue[auth]", "P2": "nexus"}
