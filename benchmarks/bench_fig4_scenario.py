"""FIG4: the §5 migration experiment — protocol choice per stage.

Reproduces Figure 4-A's tour (client on M0; server migrates
M1 -> M2 -> M3 -> M0) and prints the per-stage table: which protocol the
GP selected and the bandwidth it achieved — the adaptive-capabilities
headline of the paper.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.scenario import run_fig4_scenario
from repro.simnet.linktypes import ATM_155

EXPECTED_SEQUENCE = [
    "glue[quota+encryption]",
    "glue[quota]",
    "nexus",
    "shm",
]


@pytest.mark.benchmark(group="fig4")
def test_fig4_migration_tour(benchmark, record_result):
    stages = benchmark.pedantic(
        lambda: run_fig4_scenario(fabric=ATM_155, repetitions=5),
        rounds=1, iterations=1)

    table = format_table(
        ["stage", "server machine", "locality", "protocol selected",
         "bandwidth (Mbps)"],
        [[s.stage, s.machine, s.locality, s.selected,
          f"{s.bandwidth_mbps:.4g}"] for s in stages])
    record_result("fig4_scenario",
                  "Figure 4 migration experiment (64 KiB payload)\n"
                  + table)

    assert [s.selected for s in stages] == EXPECTED_SEQUENCE
    bws = [s.bandwidth_mbps for s in stages]
    assert bws[0] < bws[1] < bws[2] < bws[3]
    assert bws[3] / bws[2] > 5  # shared memory is the big jump
