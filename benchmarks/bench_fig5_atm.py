"""FIG5-ATM: Figure 5 — bandwidth vs array size over 155 Mbps ATM.

Regenerates the paper's only results figure.  The printed table is the
figure as data: one row per array size, one column per protocol curve.
Expected shape (paper, §5): the three network protocols nearly coincide;
shared memory is more than an order of magnitude faster.
"""

import pytest

from repro.bench.figures import DEFAULT_SIZES, PROTOCOL_LABELS, run_fig5
from repro.bench.reporting import format_series_table
from repro.simnet.linktypes import ATM_155


@pytest.mark.benchmark(group="fig5")
def test_fig5_atm(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig5(fabric=ATM_155, repetitions=3),
        rounds=1, iterations=1)

    table = format_series_table(
        "bytes", result.sizes,
        {label: [f"{v:.4g}" for v in series]
         for label, series in result.series().items()})
    shape = (
        f"shm speedup @1MB          : "
        f"{result.shm_speedup_at(DEFAULT_SIZES[-1]):.1f}x\n"
        f"capability overhead @1MB  : "
        f"{100 * result.capability_overhead_at(DEFAULT_SIZES[-1]):.1f}%"
    )
    record_result("fig5_atm",
                  f"Figure 5 over {result.fabric} (bandwidth, Mbps)\n"
                  f"{table}\n{shape}")

    # The paper's qualitative claims must hold.
    assert result.shm_speedup_at(DEFAULT_SIZES[-1]) > 10
    assert result.capability_overhead_at(DEFAULT_SIZES[-1]) < 0.15
    for i in range(len(result.sizes)):
        network = [result.bandwidth_mbps[l][i] for l in PROTOCOL_LABELS[:3]]
        assert max(network) / min(network) < 1.30
