"""FIG5-ETH: the Figure 5 sweep over 10 Mbps Ethernet.

§5: "The results for ATM are shown in Figure 5 (those for Ethernet are
virtually identical)" — same qualitative shape, lower plateau.
"""

import pytest

from repro.bench.figures import DEFAULT_SIZES, PROTOCOL_LABELS, run_fig5
from repro.bench.reporting import format_series_table
from repro.simnet.linktypes import ETHERNET_10


@pytest.mark.benchmark(group="fig5")
def test_fig5_ethernet(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig5(fabric=ETHERNET_10, repetitions=3),
        rounds=1, iterations=1)

    table = format_series_table(
        "bytes", result.sizes,
        {label: [f"{v:.4g}" for v in series]
         for label, series in result.series().items()})
    record_result("fig5_ethernet",
                  f"Figure 5 over {result.fabric} (bandwidth, Mbps)\n"
                  f"{table}")

    assert result.shm_speedup_at(DEFAULT_SIZES[-1]) > 10
    # Wire time dominates even harder on the slow fabric: the capability
    # overhead is smaller than on ATM.
    assert result.capability_overhead_at(DEFAULT_SIZES[-1]) < 0.05
    for i, size in enumerate(result.sizes):
        network = [result.bandwidth_mbps[l][i] for l in PROTOCOL_LABELS[:3]]
        # Small messages feel the fixed per-capability setup cost; from a
        # few KiB up the curves coincide within 10%.
        bound = 1.30 if size < 4096 else 1.10
        assert max(network) / min(network) < bound
