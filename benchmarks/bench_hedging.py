"""HEDGE: tail latency with and without hedged requests under simnet.

A seeded slow-link FaultPlan gives a fraction of requests a +2s delay.
Hedging races a second attempt once the primary outlives the tracked
latency percentile, so the slow calls are cut to roughly the hedge
delay plus one clean RTT — the classic tail-at-scale trade: a few
percent duplicate work for an order-of-magnitude better p99.
"""

import pytest

from repro.core import ORB
from repro.core.instrumentation import HookBus
from repro.core.resilience import HedgePolicy
from repro.faults import FaultPlan
from repro.idl import remote_interface, remote_method
from repro.simnet import NetworkSimulator, paper_testbed

SLOW_RATES = [0.05, 0.10, 0.20]
SLOW_EXTRA_S = 2.0
WARMUP = 20
CALLS = 100
SEED = 10


@remote_interface("HedgeCell")
class HedgeCell:
    @remote_method(retry_safe=True)
    def put(self, v: int) -> int:
        return v


def _quantile(samples, q):
    ordered = sorted(samples)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def run_hedge_point(slow_rate: float, hedging: bool, seed: int = SEED):
    """One sweep point: CALLS retry-safe invocations with a
    ``slow_rate`` chance of a +2s request delay.  Returns
    (p50, p99, hedges launched, hedge wins)."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    server = orb.context("server", machine=tb.m1)
    if hedging:
        client.hedge_policy = HedgePolicy(enabled=True, quantile=0.9,
                                          min_samples=WARMUP)
    gp = client.bind(server.export(HedgeCell()))
    durations, hedges, wins = [], [], []
    gp.hooks.on("request",
                lambda e: durations.append(e.data["duration"])
                if e.data["outcome"] == "ok" else None)
    gp.hooks.on("hedge", lambda e: hedges.append(e.data))
    gp.hooks.on("hedge_win", lambda e: wins.append(e.data))

    for i in range(WARMUP):                  # tracker warm-up, no faults
        gp.invoke("put", i)
    plan = FaultPlan(seed=seed, hooks=HookBus())
    plan.delay(SLOW_EXTRA_S, probability=slow_rate, src="M0", dst="M1")
    sim.fault_plan = plan
    for i in range(CALLS):
        gp.invoke("put", i)
    orb.shutdown()
    measured = durations[WARMUP:]
    return (_quantile(measured, 0.5), _quantile(measured, 0.99),
            len(hedges), len(wins))


@pytest.mark.benchmark(group="hedging")
def test_hedging_tail_latency(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: [(rate, run_hedge_point(rate, False),
                  run_hedge_point(rate, True))
                 for rate in SLOW_RATES],
        rounds=1, iterations=1)

    lines = [f"{'slow':>5}  {'p50 off (ms)':>12}  {'p99 off (ms)':>12}  "
             f"{'p50 on (ms)':>12}  {'p99 on (ms)':>12}  "
             f"{'hedges':>6}  {'wins':>5}"]
    for rate, off, on in results:
        lines.append(
            f"{rate:>5.2f}  {off[0] * 1e3:>12.3f}  {off[1] * 1e3:>12.3f}  "
            f"{on[0] * 1e3:>12.3f}  {on[1] * 1e3:>12.3f}  "
            f"{on[2]:>6}  {on[3]:>5}")
    record_result(
        "hedging",
        f"Tail latency, hedging off/on ({CALLS} calls/point, "
        f"+{SLOW_EXTRA_S:.0f}s slow requests, seed {SEED}, virtual "
        f"time)\n" + "\n".join(lines))

    for rate, off, on in results:
        p50_off, p99_off, _, _ = off
        p50_on, p99_on, hedges, wins = on
        assert p99_off > SLOW_EXTRA_S        # the tail really exists
        # Hedging never regresses the tail (tolerate float accounting
        # noise: a collided hedge reports delay + d2 vs the primary's
        # d1, identical up to the last ulp).
        assert p99_on <= p99_off * (1 + 1e-9)
        assert hedges > 0 and wins > 0       # by actually racing
        # The median barely moves: hedges only fire on the tail.
        assert p50_on == pytest.approx(p50_off, rel=0.10)

    # At modest tail rates a both-legs-slow collision is improbable and
    # the p99 win is strict; at 20% the occasional collision legitimately
    # stays slow (min of two delayed legs), hence only <= above.
    for rate, off, on in results:
        if rate <= 0.10:
            assert on[1] < off[1] / 10

    # Determinism: each point is a pure function of the seed.
    assert run_hedge_point(0.10, True) == run_hedge_point(0.10, True)
