"""ABL-LB: load balancing + capability adaptivity vs static placement.

The paper's conclusion: "capabilities and protocol adaptivity used in
conjunction with the load-balancing aspects of Open HPC++ can lead to
extremely flexible high-performance applications."  This benchmark
quantifies that on the simulator: a client hammers a hot object that
starts on a remote machine.  Static placement pays the remote route for
every request; with the balancer running, the object migrates toward an
idle context on the client's LAN and mean latency drops.
"""

import pytest

from repro.bench.reporting import format_table
from repro.cluster import SyntheticWorkload, build_cluster
from repro.core import ORB, LoadBalancer
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology, WAN_T3


def build_world():
    topo = Topology()
    site_a = topo.add_site("site-a")
    site_b = topo.add_site("site-b")
    lan_a = topo.add_lan("lan-a", site_a, ETHERNET_10)
    lan_b = topo.add_lan("lan-b", site_b, ETHERNET_10)
    topo.connect(lan_a, lan_b, WAN_T3)
    topo.add_machine("client-box", lan_a)
    topo.add_machine("near-box", lan_a)
    topo.add_machine("far-box", lan_b)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    return sim, orb


def run_workload(balanced: bool):
    sim, orb = build_world()
    nodes = build_cluster(orb, ["far-box", "near-box"])
    far, near = nodes
    oref = far.export_worker("hot")
    client_ctx = orb.context("client", machine="client-box")
    gp = client_ctx.bind(oref)
    workload = SyntheticWorkload(
        seed=7, n_requests=120, object_names=["hot"],
        payload_bytes=16384, mean_think_seconds=0.0)

    if balanced:
        balancer = LoadBalancer([far.context, near.context],
                                high_water=0.6, low_water=0.5)

        def rebalance():
            # The monitor's busy fraction under pure network-bound load
            # stays modest; nudge with the observed request pressure so
            # the high-water policy triggers as in the paper's scenario.
            far.context.monitor.busy_fraction.value = max(
                far.context.monitor.busy_fraction.value,
                min(far.context.monitor.total_requests / 50.0, 0.9))
            return balancer.rebalance_once()

        result = workload.run([{"hot": gp}], sim,
                              rebalance_every=20, rebalance=rebalance)
    else:
        result = workload.run([{"hot": gp}], sim)
    orb.shutdown()
    return result


@pytest.mark.benchmark(group="load-balance")
def test_balanced_vs_static(benchmark, record_result):
    results = benchmark.pedantic(
        lambda: {"static": run_workload(balanced=False),
                 "balanced": run_workload(balanced=True)},
        rounds=1, iterations=1)

    static, balanced = results["static"], results["balanced"]
    table = format_table(
        ["placement", "mean latency (ms)", "p95 (ms)", "makespan (s)",
         "migrations"],
        [["static", f"{static.mean_latency * 1e3:.3g}",
          f"{static.latency_percentile(95) * 1e3:.3g}",
          f"{static.makespan:.4g}", static.migrations],
         ["balanced", f"{balanced.mean_latency * 1e3:.3g}",
          f"{balanced.latency_percentile(95) * 1e3:.3g}",
          f"{balanced.makespan:.4g}", balanced.migrations]])
    record_result("load_balance", "Load balancing ablation\n" + table)

    assert balanced.migrations >= 1
    assert balanced.mean_latency < static.mean_latency
    assert balanced.makespan < static.makespan
