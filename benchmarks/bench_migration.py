"""ABL-MIG: the cost of migration itself.

Migration buys locality (Figure 4) at a price: re-export, capability
re-creation, state transfer, and one wasted round trip per stale GP.
This ablation measures (a) wall-clock migration latency vs servant state
size for by-value moves, and (b) the virtual-time penalty a client pays
on its first post-migration request (the MOVED round trip), versus the
per-request savings the move buys — i.e. the break-even request count.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.core import ORB
from repro.core.migration import migrate
from repro.idl import remote_interface, remote_method
from repro.simnet import NetworkSimulator, paper_testbed


@remote_interface("Stateful")
class Stateful:
    def __init__(self, nbytes: int = 0):
        self.blob = np.zeros(nbytes, dtype=np.uint8)

    @remote_method
    def size(self) -> int:
        return int(self.blob.nbytes)

    @remote_method
    def touch(self, payload):
        return len(payload)

    def hpc_get_state(self):
        return {"blob": self.blob}

    def hpc_set_state(self, state):
        self.blob = np.array(state["blob"], dtype=np.uint8)


@pytest.mark.benchmark(group="migration")
@pytest.mark.parametrize("state_bytes", [0, 1 << 16, 1 << 22],
                         ids=["empty", "64KiB", "4MiB"])
def test_by_value_migration_latency(benchmark, state_bytes):
    """Wall-clock cost of one by-value migration (marshal state, rebuild
    servant, re-register stacks, install forward)."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology, keep_records=0)
    orb = ORB(simulator=sim)
    a = orb.context("mig-a", machine=tb.m1)
    b = orb.context("mig-b", machine=tb.m2)

    counter = [0]

    def one_migration():
        counter[0] += 1
        oref = a.export(Stateful(state_bytes),
                        object_id=f"obj-{counter[0]}")
        new = migrate(a, oref.object_id, b, by_value=True)
        # Clean up the target so state does not accumulate over rounds.
        b.unexport(new.object_id)
        with a._lock:
            a.forwards.pop(oref.object_id, None)

    benchmark(one_migration)
    orb.shutdown()


@pytest.mark.benchmark(group="migration")
def test_break_even_request_count(benchmark, record_result):
    """How many requests until a migration pays for itself?  (virtual
    time; 64 KiB echo payloads, remote site -> client's machine)"""

    def run():
        tb = paper_testbed()
        sim = NetworkSimulator(tb.topology, keep_records=0)
        orb = ORB(simulator=sim)
        client = orb.context("client", machine=tb.m0)
        far = orb.context("far", machine=tb.m1)
        near = orb.context("near", machine=tb.m0)
        oref = far.export(Stateful(1 << 16))
        gp = client.bind(oref)
        payload = np.zeros(1 << 16, dtype=np.uint8)
        gp.invoke("touch", payload)  # settle

        t0 = sim.clock.now()
        gp.invoke("touch", payload)
        cost_far = sim.clock.now() - t0

        t0 = sim.clock.now()
        migrate(far, oref.object_id, near, by_value=True)
        gp.invoke("touch", payload)  # pays the MOVED + retry penalty
        migration_penalty = sim.clock.now() - t0

        t0 = sim.clock.now()
        gp.invoke("touch", payload)
        cost_near = sim.clock.now() - t0
        orb.shutdown()
        saving = cost_far - cost_near
        return {
            "cost_far_ms": cost_far * 1e3,
            "cost_near_ms": cost_near * 1e3,
            "penalty_ms": migration_penalty * 1e3,
            "break_even_requests": migration_penalty / saving,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("migration_break_even", format_table(
        ["metric", "value"],
        [["remote request (ms)", f"{stats['cost_far_ms']:.3f}"],
         ["local request (ms)", f"{stats['cost_near_ms']:.3f}"],
         ["migration penalty (ms)", f"{stats['penalty_ms']:.3f}"],
         ["break-even (requests)",
          f"{stats['break_even_requests']:.1f}"]]))

    assert stats["cost_near_ms"] < stats["cost_far_ms"]
    # Migration must amortize within a modest number of requests for the
    # Figure 4 story to make sense.
    assert stats["break_even_requests"] < 20
