"""ABL-ORB: wall-clock ORB overhead on real transports.

The simulated benches measure *modelled* time; this one measures what
the Python implementation actually costs per invocation over the real
in-process transports — the number an adopter embedding the library
cares about.  Four configurations mirror the Figure 5 curves: plain
nexus, glue[quota], glue[quota+encryption], and the shm-ring transport.
"""

import numpy as np
import pytest

from repro.cluster.node import WorkUnit
from repro.core import ORB
from repro.core.capabilities import CallQuotaCapability, EncryptionCapability
from repro.core.context import Placement

PAYLOAD = np.arange(1 << 16, dtype=np.uint8)  # 64 KiB


def build(config: str):
    orb = ORB()
    if config == "shm":
        # Same machine: the shm protocol is applicable.
        server = orb.context("s")
        client = orb.context("c")
        gp = client.bind(server.export(WorkUnit("w")))
        assert gp.selected_proto_id == "shm"
        return orb, gp
    server = orb.context("s", placement=Placement("sm", "sl", "ss"))
    client = orb.context("c", placement=Placement("cm", "cl", "cs"))
    if config == "nexus":
        gp = client.bind(server.export(WorkUnit("w")))
        assert gp.selected_proto_id == "nexus"
    elif config == "glue-quota":
        gp = client.bind(server.export(WorkUnit("w"), glue_stacks=[
            [CallQuotaCapability.for_calls(10 ** 9,
                                           applicability="always")]]))
        assert gp.describe_selection() == "glue[quota]"
    else:  # glue-quota-encryption
        gp = client.bind(server.export(WorkUnit("w"), glue_stacks=[
            [CallQuotaCapability.for_calls(10 ** 9,
                                           applicability="always"),
             EncryptionCapability.server_descriptor(
                 key_seed=3, applicability="always")]]))
        assert gp.describe_selection() == "glue[quota+encryption]"
    return orb, gp


@pytest.mark.benchmark(group="orb-wallclock")
@pytest.mark.parametrize("config", [
    "nexus", "glue-quota", "glue-quota-encryption", "shm"])
def test_invocation_latency(benchmark, config):
    orb, gp = build(config)
    stub = gp.narrow()
    stub.process(PAYLOAD[:1])  # settle the connection
    try:
        out = benchmark(lambda: stub.process(PAYLOAD))
        assert len(out) == len(PAYLOAD)
    finally:
        orb.shutdown()


@pytest.mark.benchmark(group="orb-wallclock")
def test_small_call_latency(benchmark):
    """Fixed per-call overhead: a no-payload invocation."""
    orb, gp = build("nexus")
    stub = gp.narrow()
    stub.status()
    try:
        out = benchmark(stub.status)
        assert out["name"] == "w"
    finally:
        orb.shutdown()
