"""OVERLOAD: goodput under 10x offered load, with and without admission.

Four seeded scenarios through :class:`repro.cluster.OverloadRun`
(open-loop Poisson arrivals in virtual time against the *real*
:class:`~repro.admission.AdmissionController`):

    unloaded     0.25x capacity, admission on — the latency baseline
    saturation   1x capacity, admission on — the goodput baseline
    10x + adm    10x capacity, admission on
    10x - adm    10x capacity, no admission (fixed workers, unbounded
                 FIFO — the pre-admission endpoint)

The gates this bench enforces (the headline claims of
``docs/ADMISSION.md``):

    1. goodput at 10x with admission >= 80% of saturation goodput;
    2. interactive p99 at 10x within 2x its unloaded value;
    3. the no-admission baseline collapses (goodput < 20% of
       saturation) even though it still *completes* requests — they
       finish too late to beat their deadlines;
    4. identically seeded runs produce identical reports.

Also runnable as a plain script (CI's docs job uses it as a smoke
gate):

    python benchmarks/bench_overload.py --smoke
"""

import argparse
import sys

import pytest

from repro.admission import AdmissionPolicy
from repro.cluster import OverloadPhase, OverloadRun

SEED = 11
SERVICE_TIME = 0.02          #: virtual seconds per request
WORKERS = 4                  #: baseline pool size == limiter max
DEADLINE = 0.25              #: per-request budget (virtual seconds)
CAPACITY = WORKERS / SERVICE_TIME    # 200 requests/second
DURATION = 10.0
MIX = (0.6, 0.3, 0.1)


def make_policy() -> AdmissionPolicy:
    """Short queue on purpose: with service time S, W workers, and Q
    queued units a fresh admit waits up to Q*S/W before dispatch, so
    the queue bound *is* the interactive tail-latency bound."""
    return AdmissionPolicy(enabled=True, max_limit=WORKERS,
                           queue_capacity=8)


def run_scenarios(duration: float):
    def phases(rate):
        return [OverloadPhase(duration=duration, rate=rate, mix=MIX)]

    def run(policy, rate):
        return OverloadRun(policy=policy, seed=SEED,
                           service_time=SERVICE_TIME, deadline=DEADLINE,
                           baseline_workers=WORKERS).run(phases(rate))

    return {
        "unloaded": run(make_policy(), 0.25 * CAPACITY),
        "saturation": run(make_policy(), CAPACITY),
        "10x + adm": run(make_policy(), 10 * CAPACITY),
        "10x - adm": run(None, 10 * CAPACITY),
    }


def check(reports) -> None:
    sat = reports["saturation"].goodput
    adm = reports["10x + adm"]
    base = reports["10x - adm"]
    unloaded_p99 = reports["unloaded"].latency_by_class[
        "interactive"]["p99"]
    loaded = adm.latency_by_class["interactive"]

    assert adm.goodput >= 0.8 * sat, \
        f"10x goodput {adm.goodput:.1f} < 80% of saturation {sat:.1f}"
    assert loaded["p99"] <= 2.0 * unloaded_p99, \
        f"interactive p99 {loaded['p99']:.4f} > 2x unloaded " \
        f"{unloaded_p99:.4f}"
    assert base.goodput < 0.2 * sat, \
        f"no-admission baseline did not collapse: {base.goodput:.1f}"
    # The baseline is not *idle* — it completes at capacity, too late.
    assert base.completed > 0.8 * sat * adm.duration
    assert adm.shed_by_reason.get("queue_full", 0) > 0
    # Strict priority: interactive tail well under batch tail.
    assert loaded["p99"] < adm.latency_by_class["batch"]["p99"]


def run_determinism_check(duration: float) -> None:
    a = run_scenarios(duration)["10x + adm"]
    b = run_scenarios(duration)["10x + adm"]
    assert a.to_dict() == b.to_dict(), \
        "identical seed must give identical overload reports"


def format_report(reports) -> str:
    lines = [
        f"capacity {CAPACITY:.0f} req/s ({WORKERS} workers x "
        f"{SERVICE_TIME * 1000:.0f}ms service), deadline "
        f"{DEADLINE * 1000:.0f}ms, seed {SEED}, virtual time",
        "",
        f"{'scenario':>10}  {'offered':>7}  {'goodput':>7}  {'shed':>6}  "
        f"{'int p50':>8}  {'int p99':>8}  {'batch p99':>9}",
    ]
    for name, r in reports.items():
        inter = r.latency_by_class["interactive"]
        batch = r.latency_by_class["batch"]

        def ms(v):
            return "-" if v is None else f"{v * 1000:.1f}ms"

        lines.append(
            f"{name:>10}  {r.offered:>7}  {r.goodput:>7.1f}  "
            f"{r.shed:>6}  {ms(inter['p50']):>8}  {ms(inter['p99']):>8}  "
            f"{ms(batch['p99']):>9}")
    adm = reports["10x + adm"]
    lines.append("")
    lines.append(f"10x + adm sheds by reason: {adm.shed_by_reason}")
    lines.append(
        f"baseline at 10x completes {reports['10x - adm'].completed} "
        f"requests but only {reports['10x - adm'].timely} in deadline "
        f"— completion without timeliness is not goodput")
    return "\n".join(lines)


@pytest.mark.benchmark(group="overload")
def test_overload_goodput(benchmark, record_result):
    reports = benchmark.pedantic(
        lambda: run_scenarios(DURATION), rounds=1, iterations=1)
    check(reports)
    run_determinism_check(DURATION)
    record_result(
        "overload_goodput",
        f"Goodput under overload, admission on/off (10s phases)\n"
        + format_report(reports))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short phases (CI smoke gate)")
    args = parser.parse_args(argv)
    duration = 4.0 if args.smoke else DURATION
    reports = run_scenarios(duration)
    check(reports)
    run_determinism_check(duration)
    print(format_report(reports))
    print("\noverload bench ok: gates held, reports deterministic")
    return 0


if __name__ == "__main__":
    sys.exit(main())
