"""ABL-POLICY: selection-policy ablation (extension experiment).

Compares three selection policies on the paper testbed against two OR
orderings:

* *well-ordered* — the Figure 4-B layout (cheapest applicable first for
  the local case);
* *adversarial* — an expensive encrypting glue entry listed first.

Policies: the paper's first-match, pool-order (user control, §3.2), and
the cost-aware extension (`repro.core.cost_policy`).  The metric is the
virtual time of the same 10-request program.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.cluster.node import WorkUnit
from repro.core import ORB, FirstMatchPolicy
from repro.core.capabilities import EncryptionCapability
from repro.core.cost_policy import CostAwarePolicy
from repro.core.selection import PoolOrderPolicy
from repro.simnet import NetworkSimulator, paper_testbed

PAYLOAD = 1 << 16
REQUESTS = 10


def run_program(policy_name: str) -> dict:
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology, keep_records=0)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    remote = orb.context("remote", machine=tb.m1)

    # Adversarial OR: encrypting glue listed first, applicable always.
    oref = remote.export(WorkUnit("w"), glue_stacks=[
        [EncryptionCapability.server_descriptor(
            key_seed=5, applicability="always")]])

    policy = {
        "first-match": FirstMatchPolicy(),
        "pool-order": PoolOrderPolicy(),
        "cost-aware": CostAwarePolicy(client, reference_bytes=PAYLOAD),
    }[policy_name]
    gp = client.bind(oref, policy=policy)
    if policy_name == "pool-order":
        # The §3.2 user-control story: the administrator hand-orders the
        # local pool to prefer the plain protocol.
        gp.pool.reorder(["nexus", "shm", "glue"])

    payload = np.arange(PAYLOAD, dtype=np.uint8)
    gp.invoke("process", payload[:1])
    t0 = sim.clock.now()
    for _ in range(REQUESTS):
        gp.invoke("process", payload)
    elapsed = sim.clock.now() - t0
    selected = gp.describe_selection()
    orb.shutdown()
    return {"policy": policy_name, "selected": selected,
            "virtual_seconds": elapsed}


@pytest.mark.benchmark(group="ablation")
def test_policy_ablation(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: [run_program(p) for p in
                 ("first-match", "pool-order", "cost-aware")],
        rounds=1, iterations=1)

    table = format_table(
        ["policy", "protocol chosen", "virtual time (s)"],
        [[r["policy"], r["selected"], f"{r['virtual_seconds']:.5f}"]
         for r in rows])
    record_result("policy_ablation",
                  "Selection-policy ablation (adversarial OR order, "
                  f"{REQUESTS} x {PAYLOAD} B)\n" + table)

    by_name = {r["policy"]: r for r in rows}
    # First-match obeys the (bad) OR order; the other two escape it.
    assert by_name["first-match"]["selected"].startswith("glue")
    assert by_name["pool-order"]["selected"] == "nexus"
    assert by_name["cost-aware"]["selected"] == "nexus"
    assert by_name["cost-aware"]["virtual_seconds"] < \
        by_name["first-match"]["virtual_seconds"]
