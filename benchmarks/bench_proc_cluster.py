"""PROC-CLUSTER: live-process crash recovery, measured end-to-end.

Boots a real 3-node `ProcCluster` — separate OS processes serving over
kernel TCP — drives a threaded client workload through a replicated
`GlobalPointer`, SIGKILLs one node mid-run, and reports the goodput
degradation curve the client actually observed: pre-kill baseline, the
dip, and time-to-recovery through failover and retries.  This is the
acceptance gate for the process harness: after a single SIGKILL,
goodput must recover to >= 80% of the pre-kill baseline within the
envelope window, with zero client-visible errors, and every child
process must be reaped on exit.

Also runnable as a plain script (CI's docs job uses it as a smoke
gate):

    python benchmarks/bench_proc_cluster.py --smoke
"""

import argparse
import sys

import pytest

from repro.cluster.procs import ProcCluster, ProcRun
from repro.core.resilience import RetryPolicy
from repro.faults.process import kill_node
from repro.metrics import assert_degradation

NODES = 3
THREADS = 4
DURATION = 6.0
KILL_AT = 3.0
BUCKET = 0.5
RETRY = RetryPolicy(max_attempts=4, base_backoff=0.02, max_backoff=0.2)


def run_crash(*, duration: float = DURATION, kill_at: float = KILL_AT):
    """One measured run: N processes, one SIGKILL, live goodput curve."""
    with ProcCluster(nodes=NODES) as cluster:
        gp = cluster.bind("w0", retry_policy=RETRY)
        run = ProcRun(duration=duration, threads=THREADS,
                      bucket_seconds=BUCKET)
        run.schedule(kill_at, kill_node(cluster, "n0"), "SIGKILL n0")
        report = run.run(cluster, [gp])
    assert cluster.orphans == [], f"unreaped children: {cluster.orphans}"
    return report, cluster.exit_codes()


def check(report) -> dict:
    """The acceptance criteria every run must uphold."""
    assert report.ok > 0, "workload produced no successful calls"
    assert report.errors == 0, (
        f"{report.errors} client-visible errors — retries/failover "
        f"should absorb a single crash")
    envelope = assert_degradation(report.curve, recover_within=2.5,
                                  recovered_fraction=0.8,
                                  baseline_buckets=3)
    assert report.metrics["counters"]["proc_exits.sigkill"] >= 1.0
    return envelope


def format_report(report, envelope, exit_codes) -> str:
    recovered = envelope["recovered_at"]
    lines = [
        f"nodes={NODES} threads={THREADS} ok={report.ok} "
        f"errors={report.errors} duration={report.duration:.1f}s",
        f"baseline={envelope['baseline']:.0f}/s dip={envelope['dip']:.1%} "
        f"recovered="
        f"{'never' if recovered is None else f'{recovered:.1f}s'}",
        f"exit codes: {exit_codes}",
        "",
        report.curve.format_table(),
    ]
    return "\n".join(lines)


@pytest.mark.proc
@pytest.mark.benchmark(group="proc")
def test_proc_cluster_crash(benchmark, record_result):
    report, exit_codes = benchmark.pedantic(run_crash, rounds=1,
                                            iterations=1)
    envelope = check(report)
    record_result(
        "proc_cluster_crash",
        f"Live-process SIGKILL recovery ({NODES} nodes, kill at "
        f"{KILL_AT}s of {DURATION}s, kernel TCP, wall-clock)\n"
        + format_report(report, envelope, exit_codes))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shorter run (CI smoke gate)")
    args = parser.parse_args(argv)
    if args.smoke:
        report, exit_codes = run_crash(duration=4.0, kill_at=2.0)
    else:
        report, exit_codes = run_crash()
    envelope = check(report)
    print(format_report(report, envelope, exit_codes))
    print("\nproc cluster ok: recovered through a live SIGKILL, "
          "all children reaped")
    return 0


if __name__ == "__main__":
    sys.exit(main())
