"""ABL-SEL: protocol-selection cost.

Selection runs on *every* remote request (§3.2), so its cost is part of
the per-request overhead budget.  Measured: first-match selection over
realistic and adversarially large protocol tables, plus the applicability
evaluation of a capability-stacked glue entry.
"""

import pytest

from repro.core.objref import ProtocolEntry
from repro.core.proto_pool import ProtocolPool
from repro.core.selection import FirstMatchPolicy, Locality
from repro.core.protocol import get_proto_class

REMOTE = Locality(False, False, False)
POLICY = FirstMatchPolicy()


def paper_table():
    """The Figure 4-B table: two glue entries, shm, nexus."""
    inner = ProtocolEntry("nexus", {"addresses": []}).to_wire()
    return [
        ProtocolEntry("glue", {
            "glue_id": "g1",
            "capabilities": [{"type": "quota", "max_calls": 10},
                             {"type": "encryption", "server_public": 5}],
            "inner": inner}),
        ProtocolEntry("glue", {
            "glue_id": "g2",
            "capabilities": [{"type": "quota", "max_calls": 10}],
            "inner": inner}),
        ProtocolEntry("shm", {}),
        ProtocolEntry("nexus", {}),
    ]


def applicable(entry):
    return get_proto_class(entry.proto_id).applicable(entry, REMOTE, None)


@pytest.mark.benchmark(group="selection")
def test_select_paper_table(benchmark):
    entries = paper_table()
    pool = ProtocolPool(["glue", "shm", "nexus"]).ids()

    chosen = benchmark(lambda: POLICY.select(entries, pool, REMOTE,
                                             applicable))
    assert chosen.proto_id == "glue"

    # Selection must stay well under the fixed per-request CPU cost the
    # simulator charges (40 us on the reference machine).
    assert benchmark.stats.stats.mean < 40e-6


@pytest.mark.benchmark(group="selection")
def test_select_large_table(benchmark):
    """100 inapplicable entries before the winner: linear scan cost."""
    entries = [ProtocolEntry("shm", {}) for _ in range(100)]
    entries.append(ProtocolEntry("nexus", {}))
    pool = ["shm", "nexus"]

    chosen = benchmark(lambda: POLICY.select(entries, pool, REMOTE,
                                             applicable))
    assert chosen.proto_id == "nexus"


@pytest.mark.benchmark(group="selection")
def test_glue_applicability_evaluation(benchmark):
    """Evaluating a two-capability glue entry's AND rule."""
    entry = paper_table()[0]
    glue_cls = get_proto_class("glue")

    out = benchmark(lambda: glue_cls.applicable(entry, REMOTE, None))
    assert out is True
