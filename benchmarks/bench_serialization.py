"""ABL-SER: serialization codec throughput (wall clock).

The paper's proto-objects own their data encoding (§3.1); this ablation
measures the real cost of ours: XDR vs CDR marshalling of scalar-heavy
and array-heavy values, plus the zero-copy array fast path.
"""

import numpy as np
import pytest

from repro.serialization.cdr import CdrDecoder, CdrEncoder
from repro.serialization.marshal import Marshaller

XDR = Marshaller()
CDR = Marshaller(CdrEncoder, CdrDecoder)

SCALAR_VALUE = {
    "name": "environmental-simulation",
    "steps": list(range(100)),
    "params": {f"k{i}": float(i) * 1.5 for i in range(50)},
    "flags": [True, False] * 20,
}

ARRAY_VALUE = np.arange(1 << 18, dtype=np.float64)  # 2 MiB


@pytest.mark.benchmark(group="serialization")
@pytest.mark.parametrize("m,label", [(XDR, "xdr"), (CDR, "cdr")])
def test_scalar_heavy_roundtrip(benchmark, m, label):
    def roundtrip():
        return m.loads(m.dumps(SCALAR_VALUE))

    out = benchmark(roundtrip)
    assert out == SCALAR_VALUE


@pytest.mark.benchmark(group="serialization")
@pytest.mark.parametrize("m,label", [(XDR, "xdr"), (CDR, "cdr")])
def test_array_heavy_roundtrip(benchmark, m, label):
    def roundtrip():
        return m.loads(m.dumps(ARRAY_VALUE))

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, ARRAY_VALUE)


@pytest.mark.benchmark(group="serialization")
def test_array_dumps_is_zero_copy_fast(benchmark):
    """Encoding a large array must run at memcpy-like speed (the §3.2
    'no extra data copying' requirement): >1 GB/s on any modern box."""
    wire_len = len(XDR.dumps(ARRAY_VALUE))

    def encode():
        return XDR.dumps(ARRAY_VALUE)

    benchmark(encode)
    nbytes = ARRAY_VALUE.nbytes
    seconds = benchmark.stats.stats.mean
    assert wire_len > nbytes
    assert nbytes / seconds > 1e9, "array encode path is copying too much"


@pytest.mark.benchmark(group="serialization")
def test_rsr_header_cost(benchmark):
    """Per-request fixed overhead: one RSR header encode/decode."""
    from repro.nexus.rsr import RsrMessage

    def roundtrip():
        m = RsrMessage.request(12345, "hpc.invoke", b"x" * 64)
        return RsrMessage.decode(m.encode())

    out = benchmark(roundtrip)
    assert out.handler == "hpc.invoke"
