"""ABL-XPORT: raw transport throughput (wall clock).

Round-trip echo over each *real* transport — in-process queues, the
shared-memory ring, and genuine TCP loopback — measuring the Python-level
cost of the byte-moving layer that sits under every protocol object.
"""

import threading

import pytest

from repro.transport.inproc import InProcTransport
from repro.transport.shm import ShmTransport
from repro.transport.tcp import TcpTransport

PAYLOAD_SMALL = b"x" * 64
PAYLOAD_LARGE = b"x" * (1 << 20)


def make_echo_pair(transport):
    listener = transport.listen()
    client = transport.connect(listener.address)
    server = listener.accept(timeout=5.0)
    stop = threading.Event()

    def echo_loop():
        while not stop.is_set():
            try:
                server.send(server.recv(timeout=0.5))
            except Exception:
                if stop.is_set():
                    break

    thread = threading.Thread(target=echo_loop, daemon=True)
    thread.start()

    def cleanup():
        stop.set()
        client.close()
        server.close()
        listener.close()
        thread.join(timeout=2.0)

    return client, cleanup


@pytest.mark.benchmark(group="transport-small")
@pytest.mark.parametrize("transport_cls",
                         [InProcTransport, ShmTransport, TcpTransport],
                         ids=["inproc", "shm", "tcp"])
def test_small_message_roundtrip(benchmark, transport_cls):
    # Large ring so the 1 MiB bench below also streams comfortably.
    transport = (transport_cls(ring_capacity=1 << 22)
                 if transport_cls is ShmTransport else transport_cls())
    client, cleanup = make_echo_pair(transport)
    try:
        def roundtrip():
            client.send(PAYLOAD_SMALL)
            return client.recv(timeout=5.0)

        out = benchmark(roundtrip)
        assert out == PAYLOAD_SMALL
    finally:
        cleanup()


@pytest.mark.benchmark(group="transport-large")
@pytest.mark.parametrize("transport_cls",
                         [InProcTransport, ShmTransport, TcpTransport],
                         ids=["inproc", "shm", "tcp"])
def test_large_message_roundtrip(benchmark, transport_cls):
    transport = (transport_cls(ring_capacity=1 << 22)
                 if transport_cls is ShmTransport else transport_cls())
    client, cleanup = make_echo_pair(transport)
    try:
        def roundtrip():
            client.send(PAYLOAD_LARGE)
            return client.recv(timeout=10.0)

        out = benchmark(roundtrip)
        assert len(out) == len(PAYLOAD_LARGE)
    finally:
        cleanup()
