#!/usr/bin/env python
"""Capability exchange and dynamic capability attachment (§4).

Two properties the paper highlights over OIP-style "illities":

1. **Capabilities can be passed between processes.**  They live in the
   object reference, so handing a colleague your OR hands them your
   access mode — here, a metered reference whose server-side call budget
   is shared between the original holder and the delegate.

2. **Capabilities can be changed dynamically.**  A client holding a
   plain reference negotiates a brand-new capability stack with the
   server's control surface at run time and prefers it, without the
   server object being re-exported.

Run:  python examples/capability_delegation.py
"""

from repro import (
    ORB,
    CallQuotaCapability,
    ObjectReference,
    Placement,
    QuotaExceededError,
    RemoteException,
    TracingCapability,
    remote_interface,
    remote_method,
)


@remote_interface("ComputeService")
class ComputeService:
    @remote_method
    def solve(self, n: int) -> int:
        """A stand-in for an expensive solve: sum of squares."""
        return sum(i * i for i in range(n))


def main() -> None:
    orb = ORB()
    lab = orb.context("lab", placement=Placement(
        machine="hpc", lan="hpc-lan", site="lab"))
    alice = orb.context("alice", placement=Placement(
        machine="alice-pc", lan="dept-lan", site="campus"))
    bob = orb.context("bob", placement=Placement(
        machine="bob-pc", lan="dorm-lan", site="campus"))

    # --- 1. delegation: the quota travels inside the OR ----------------
    metered_oref = lab.export(ComputeService(), glue_stacks=[
        [CallQuotaCapability.for_calls(4, applicability="always")]])

    gp_alice = alice.bind(metered_oref)
    print("alice's protocol:", gp_alice.describe_selection())
    print("alice solve(10):", gp_alice.narrow().solve(10))
    print("alice solve(20):", gp_alice.narrow().solve(20))

    # Alice mails her reference to Bob — literally: the OR crosses a
    # byte boundary, as it would in a message.
    wire = gp_alice.dup().to_bytes()
    received = ObjectReference.from_bytes(wire)
    gp_bob = bob.bind(received)
    print("bob's protocol  :", gp_bob.describe_selection())
    print("bob solve(30)   :", gp_bob.narrow().solve(30))
    print("bob solve(40)   :", gp_bob.narrow().solve(40))

    # The *server-side* budget is shared: four calls total were allowed,
    # so the fifth dies no matter who issues it.
    try:
        gp_bob.narrow().solve(50)
    except (QuotaExceededError, RemoteException) as exc:
        print("fifth call refused:", type(exc).__name__, "-", exc)

    # --- 2. dynamic attachment ------------------------------------------
    plain_oref = lab.export(ComputeService())
    gp = alice.bind(plain_oref)
    print("\nbefore negotiation:", gp.describe_selection())

    # Alice wants an audit trail for compliance: she proposes a tracing
    # stack; the server registers it and returns the glue entry.
    gp.add_capability_stack([TracingCapability.describe()],
                            applicability="always")
    print("after negotiation :", gp.describe_selection())
    gp.narrow().solve(100)
    gp.narrow().solve(200)

    # The client half of the tracing capability recorded the traffic.
    glue_client = gp._client_for(gp.select_protocol())
    tracer = glue_client.capabilities[0]
    print("audit trail:")
    for event in tracer.events:
        print(f"  {event.direction:>7} {event.stage:<9} {event.nbytes}B")

    orb.shutdown()


if __name__ == "__main__":
    main()
