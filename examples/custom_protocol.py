#!/usr/bin/env python
"""Open Implementation in action: write your own protocol and policy.

§3.2 promises that "custom protocols are supported by having users write
their own proto-classes that satisfy a standard interface" and that the
application controls selection.  This example:

1. defines a **custom proto-class** (`logged`) whose proto-objects keep
   a request journal — a user-written protocol in ~20 lines;
2. installs it in an object reference's protocol table and the client's
   pool, and watches selection pick it;
3. swaps the GP's **selection policy** for the cost-aware extension and
   watches it escape an adversarially ordered table.

Run:  python examples/custom_protocol.py
"""

from repro import (
    ORB,
    EncryptionCapability,
    ProtocolClass,
    ProtocolClient,
    ProtocolEntry,
    register_proto_class,
    remote_interface,
    remote_method,
)
from repro.core.cost_policy import CostAwarePolicy
from repro.simnet import NetworkSimulator, paper_testbed


# ----------------------------------------------------------------------
# 1. A user-written proto-class: journal every invocation.
# ----------------------------------------------------------------------

class JournalingClient(ProtocolClient):
    """Proto-object that records (method, payload size) per request."""

    journal: list = []

    def invoke(self, invocation):
        result = super().invoke(invocation)
        type(self).journal.append(
            (invocation.method, len(invocation.args)))
        return result


@register_proto_class
class JournalingProtocol(ProtocolClass):
    """Nexus semantics + client-side journaling."""

    proto_id = "logged"
    default_applicability = "always"
    client_cls = JournalingClient


@remote_interface("Matrix")
class MatrixService:
    @remote_method
    def scale(self, values, factor: float):
        return [v * factor for v in values]


def main() -> None:
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    server = orb.context("server", machine=tb.m1)

    oref = server.export(MatrixService())

    # --- 2. install the custom protocol ---------------------------------
    # Reuse the server's nexus addresses: the custom protocol rides the
    # same endpoint, it only changes the client-side proto-object.
    nexus_data = dict(oref.entry("nexus").proto_data)
    oref.protocols.insert(0, ProtocolEntry("logged", nexus_data))

    gp = client.bind(oref)
    gp.pool.allow("logged", prefer=True)
    print("protocol table :", gp.oref.proto_ids())
    print("selected       :", gp.selected_proto_id)

    stub = gp.narrow()
    print("scale result   :", stub.scale([1.0, 2.0, 3.0], 2.5))
    stub.scale([4.0], 0.5)
    print("journal        :", JournalingClient.journal)

    # --- 3. swap the selection policy ------------------------------------
    # An adversarial OR: an always-applicable encrypting glue entry is
    # listed first.  First-match obeys; the cost-aware policy does not.
    adversarial = server.export(MatrixService(), glue_stacks=[
        [EncryptionCapability.server_descriptor(
            key_seed=9, applicability="always")]])
    gp_first = client.bind(adversarial)
    gp_cost = client.bind(adversarial,
                          policy=CostAwarePolicy(client,
                                                 reference_bytes=1 << 16))
    print("\nadversarial table:", gp_first.oref.proto_ids())
    print("first-match picks:", gp_first.describe_selection())
    print("cost-aware picks :", gp_cost.describe_selection())

    payload = [float(i) for i in range(2000)]
    t0 = sim.clock.now()
    gp_first.narrow().scale(payload, 1.0)
    first_cost = sim.clock.now() - t0
    t0 = sim.clock.now()
    gp_cost.narrow().scale(payload, 1.0)
    cost_cost = sim.clock.now() - t0
    print(f"per-request virtual time: first-match {first_cost * 1e3:.2f} ms,"
          f" cost-aware {cost_cost * 1e3:.2f} ms")

    orb.shutdown()


if __name__ == "__main__":
    main()
