#!/usr/bin/env python
"""Load balancing with capability adaptivity (§4.3 + conclusion).

A cluster serves hot simulation objects.  One machine ends up carrying
all the load while a machine on the clients' own LAN idles.  The load
balancer notices the high-water mark, migrates the hottest object, and —
because the object lands on the clients' LAN — the authentication
capability silently stops applying and every request gets faster *and*
cheaper.  The paper's conclusion, measured.

Run:  python examples/load_balancing.py
"""

from repro import (
    ORB,
    AuthenticationCapability,
    LoadBalancer,
    Principal,
)
from repro.cluster import SyntheticWorkload, build_cluster
from repro.cluster.node import WorkUnit
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology, WAN_T3


def build_world():
    topo = Topology()
    main_site = topo.add_site("datacenter")
    edge_site = topo.add_site("branch-office")
    dc_lan = topo.add_lan("dc-lan", main_site, ETHERNET_10)
    edge_lan = topo.add_lan("edge-lan", edge_site, ETHERNET_10)
    topo.connect(dc_lan, edge_lan, WAN_T3)
    topo.add_machine("dc-server", dc_lan)
    topo.add_machine("edge-server", edge_lan)
    topo.add_machine("edge-client", edge_lan)
    sim = NetworkSimulator(topo, keep_records=0)
    return sim, ORB(simulator=sim)


def run(balanced: bool) -> tuple:
    sim, orb = build_world()
    dc, edge = build_cluster(orb, ["dc-server", "edge-server"])
    client_ctx = orb.context("client", machine="edge-client")

    # Clients authenticate when off the serving LAN (the Figure 3 rule).
    principal = Principal("branch", "corp")
    key = dc.context.keystore.generate(principal)
    client_ctx.keystore.install(principal, key)
    edge.context.keystore.install(principal, key)

    oref = dc.context.export(
        WorkUnit("hot"),
        glue_stacks=[[AuthenticationCapability.for_principal(principal)]])
    gp = client_ctx.bind(oref)

    workload = SyntheticWorkload(seed=11, n_requests=150,
                                 object_names=["hot"],
                                 payload_bytes=8192,
                                 mean_think_seconds=0.0)

    protocols = []

    def remember_protocol():
        protocols.append(gp.describe_selection())

    if balanced:
        balancer = LoadBalancer([dc.context, edge.context],
                                high_water=0.6, low_water=0.5)

        def rebalance():
            # Pressure proxy: sustained request volume marks the context
            # hot (pure network-bound load keeps busy-fraction low).
            dc.context.monitor.busy_fraction.value = max(
                dc.context.monitor.busy_fraction.value,
                min(dc.context.monitor.total_requests / 40.0, 0.95))
            events = balancer.rebalance_once()
            remember_protocol()
            return events

        result = workload.run([{"hot": gp}], sim,
                              rebalance_every=25, rebalance=rebalance)
    else:
        result = workload.run([{"hot": gp}], sim)
    remember_protocol()
    orb.shutdown()
    return result, protocols


def main() -> None:
    static, static_protocols = run(balanced=False)
    balanced, balanced_protocols = run(balanced=True)

    print("placement   mean-latency   p95-latency   makespan  migrations")
    for name, r in (("static", static), ("balanced", balanced)):
        print(f"{name:>9}  {r.mean_latency * 1e3:>10.2f} ms"
              f"  {r.latency_percentile(95) * 1e3:>9.2f} ms"
              f"  {r.makespan:>7.3f} s  {r.migrations:>9}")

    print("\nprotocol selected by the client:")
    print("  static   :", " -> ".join(dict.fromkeys(static_protocols)))
    print("  balanced :", " -> ".join(dict.fromkeys(balanced_protocols)))
    print("\nThe migration moved the object onto the client's LAN, so the"
          "\nauthentication capability stopped applying (glue -> plain"
          "\nprotocol) and latency dropped — adaptivity + load balancing.")


if __name__ == "__main__":
    main()
