#!/usr/bin/env python
"""The Figure 4 experiment as a narrated walkthrough.

A client on machine M0 holds one global pointer while its server object
migrates M1 -> M2 -> M3 -> M0 across the paper's testbed.  At every stop
the GP re-runs protocol selection and the chosen protocol changes:

    stage 1 (M1, remote site)   glue[quota+encryption]
    stage 2 (M2, same campus)   glue[quota]
    stage 3 (M3, same LAN)      nexus
    stage 4 (M0, same machine)  shm

No client code changes between stages — that is the paper's point.

Run:  python examples/migration_adaptive.py
"""

import numpy as np

from repro import (
    ORB,
    CallQuotaCapability,
    EncryptionCapability,
    migrate,
    remote_interface,
    remote_method,
)
from repro.simnet import NetworkSimulator, paper_testbed


@remote_interface("ParticleField")
class ParticleField:
    """A migratable simulation object with real state."""

    def __init__(self, n: int = 1 << 12):
        self.positions = np.zeros(n)
        self.ticks = 0

    @remote_method
    def advance(self, velocity: float) -> int:
        self.positions += velocity
        self.ticks += 1
        return self.ticks

    @remote_method
    def sample(self, k: int):
        return self.positions[:k].copy()

    # state protocol -> migration moves the object by value, proving the
    # state really travels.
    def hpc_get_state(self):
        return {"positions": self.positions, "ticks": self.ticks}

    def hpc_set_state(self, state):
        self.positions = np.array(state["positions"], dtype=np.float64)
        self.ticks = int(state["ticks"])


def main() -> None:
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)

    client = orb.context("client", machine=tb.m0)
    stops = [orb.context(f"ctx-{m.name}", machine=m)
             for m in (tb.m1, tb.m2, tb.m3, tb.m0)]

    # Figure 4-B's protocol table: two glue entries, then shm, then nexus.
    oref = stops[0].export(ParticleField(), glue_stacks=[
        [CallQuotaCapability.for_calls(10_000),
         EncryptionCapability.server_descriptor(key_seed=42)],
        [CallQuotaCapability.for_calls(10_000)],
    ])
    gp = client.bind(oref)
    field = gp.narrow()
    payload = 1 << 16

    print(f"{'stage':>5}  {'server':>7}  {'locality':>12}  "
          f"{'protocol':>24}  {'64KiB round trip':>18}")
    for stage, ctx in enumerate(stops, start=1):
        if stage > 1:
            migrate(stops[stage - 2], oref.object_id, ctx, by_value=True)
            field.advance(0.0)   # first call after the move follows the
            #                      MOVED notice and re-selects
        field.advance(1.0)
        t0 = sim.clock.now()
        field.sample(payload // 8)   # 64 KiB of float64 back
        rtt_ms = (sim.clock.now() - t0) * 1e3
        locality = client.placement.locality_to(ctx.placement)
        loc_name = ("same-machine" if locality.same_machine else
                    "same-lan" if locality.same_lan else
                    "same-site" if locality.same_site else "remote")
        print(f"{stage:>5}  {ctx.placement.machine:>7}  {loc_name:>12}  "
              f"{gp.describe_selection():>24}  {rtt_ms:>15.3f} ms")

    print(f"\nobject ticks after the tour: {field.advance(0.0)} "
          f"(state followed the object)")
    print(f"total virtual time: {sim.clock.now() * 1e3:.2f} ms")
    orb.shutdown()


if __name__ == "__main__":
    main()
