#!/usr/bin/env python
"""Quickstart: export an object, bind a global pointer, stack capabilities.

Walks the Figure 1 / Figure 2 path end to end in one process:

1. define a remote interface with decorators;
2. export a servant from a server context (building its object
   reference with a capability-carrying glue protocol entry);
3. bind a global pointer in a client context and invoke through a
   typed stub;
4. watch protocol selection choose — and the application steer it.

Run:  python examples/quickstart.py
"""

from repro import (
    ORB,
    CallQuotaCapability,
    IntegrityCapability,
    Placement,
    remote_interface,
    remote_method,
)


# ----------------------------------------------------------------------
# 1. A remote interface: decorated methods become the wire contract.
# ----------------------------------------------------------------------

@remote_interface("KeyValueStore")
class KeyValueStore:
    """A small replicated-dictionary servant."""

    def __init__(self):
        self._data = {}

    @remote_method
    def put(self, key: str, value) -> bool:
        self._data[key] = value
        return True

    @remote_method
    def get(self, key: str):
        return self._data.get(key)

    @remote_method(returns="int")
    def size(self) -> int:
        return len(self._data)


def main() -> None:
    # ------------------------------------------------------------------
    # 2. Contexts: one server, one client, on (logically) different LANs
    #    so that the quota capability below is applicable.
    # ------------------------------------------------------------------
    orb = ORB()
    server = orb.context("server", placement=Placement(
        machine="server-box", lan="server-lan", site="lab"))
    client = orb.context("client", placement=Placement(
        machine="client-box", lan="client-lan", site="lab"))

    # Export with a glue stack: at most 10 calls, checksum-protected.
    oref = server.export(KeyValueStore(), glue_stacks=[[
        CallQuotaCapability.for_calls(10),
        IntegrityCapability.checksum(),
    ]])
    print("protocol table:", oref.proto_ids())

    # ------------------------------------------------------------------
    # 3. Bind a GP; narrow to a typed stub.
    # ------------------------------------------------------------------
    gp = client.bind(oref)
    print("selected protocol:", gp.describe_selection())

    store = gp.narrow()
    store.put("greeting", "hello, distributed world")
    store.put("answer", 42)
    print("get('greeting') ->", store.get("greeting"))
    print("size() ->", store.size())

    # ------------------------------------------------------------------
    # 4. Open Implementation: the application can see and steer the
    #    protocol decision per GP.
    # ------------------------------------------------------------------
    gp.pool.disallow("glue")           # locally forbid the glue protocol
    print("after disallowing glue:", gp.describe_selection())
    gp.pool.allow("glue", prefer=True)  # and bring it back, preferred
    print("after re-allowing glue:", gp.describe_selection())

    # The quota capability meters requests: burn the remaining budget.
    from repro import QuotaExceededError

    spent = 0
    try:
        while True:
            store.size()
            spent += 1
    except QuotaExceededError as exc:
        print(f"quota enforced after {spent} more calls: {exc}")

    orb.shutdown()


if __name__ == "__main__":
    main()
