#!/usr/bin/env python
"""A task farm: the "high-performance" half of the paper's title.

HPC++'s global pointers exist to program *parallel* distributed codes.
This example builds a small task farm on the simulated cluster:

1. a :class:`PlacementScheduler` spreads solver objects across machines;
2. the client fans a batch of integration tasks out with
   ``invoke_async`` and gathers futures;
3. the load monitor shows the work landed where the scheduler put it;
4. a straggler machine triggers the load balancer, and the farm keeps
   running through the migration.

Run:  python examples/task_farm.py
"""

import numpy as np

from repro import ORB, LoadBalancer, remote_interface, remote_method
from repro.cluster import PlacementScheduler
from repro.simnet import ETHERNET_100, NetworkSimulator, Topology


@remote_interface("Solver")
class Solver:
    """Integrates f(x) = 4 / (1 + x^2) over a slice of [0, 1] — the
    classic distributed-pi kernel."""

    def __init__(self):
        self.slices_done = 0

    @remote_method
    def integrate(self, lo: float, hi: float, n: int) -> float:
        xs = np.linspace(lo, hi, n, endpoint=False) + (hi - lo) / (2 * n)
        self.slices_done += 1
        return float(np.sum(4.0 / (1.0 + xs * xs)) * (hi - lo) / n)

    def hpc_get_state(self):
        return {"slices_done": self.slices_done}

    def hpc_set_state(self, state):
        self.slices_done = state["slices_done"]


def main() -> None:
    # --- a four-machine cluster on one switched LAN ---------------------
    topo = Topology()
    site = topo.add_site("cluster")
    lan = topo.add_lan("cluster-lan", site, ETHERNET_100)
    for i in range(4):
        topo.add_machine(f"node{i}", lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)

    nodes = [orb.context(f"ctx{i}", machine=f"node{i}")
             for i in range(4)]
    client = orb.context("driver", machine="node0")

    # --- place 8 solvers across the nodes --------------------------------
    scheduler = PlacementScheduler(nodes, policy="round-robin")
    farm = [scheduler.place(Solver())[1] for _ in range(8)]
    gps = [client.bind(oref) for oref in farm]
    placement = {}
    for oref, (oid, ctx_id) in zip(farm, scheduler.placements):
        placement.setdefault(ctx_id, 0)
        placement[ctx_id] += 1
    print("solver placement:", dict(sorted(placement.items())))

    # --- fan out 64 slices of the integral -------------------------------
    slices = 64
    edges = np.linspace(0.0, 1.0, slices + 1)
    futures = []
    for k in range(slices):
        gp = gps[k % len(gps)]
        futures.append(gp.invoke_async(
            "integrate", float(edges[k]), float(edges[k + 1]), 20_000))
    pi = sum(f.result() for f in futures)
    print(f"pi ~= {pi:.10f}  (error {abs(pi - np.pi):.2e})")
    print(f"virtual time for the batch: {sim.clock.now() * 1e3:.2f} ms")

    # --- per-node accounting ----------------------------------------------
    for node in nodes:
        mon = node.monitor
        print(f"  {node.id}: {mon.total_requests} requests")

    # --- a straggler appears; the balancer sheds its hottest object -------
    nodes[1].monitor.busy_fraction.value = 0.95
    nodes[3].monitor.busy_fraction.value = 0.02
    balancer = LoadBalancer(nodes, high_water=0.8, low_water=0.3)
    events = balancer.rebalance_once()
    for event in events:
        print(f"balancer: moved {event.object_id} "
              f"{event.source_id} -> {event.target_id}")

    # The farm keeps computing through the migration.
    total = sum(gp.invoke("integrate", 0.0, 1.0, 1000) for gp in gps)
    print(f"post-migration sanity: mean pi ~= {total / len(gps):.6f}")
    orb.shutdown()


if __name__ == "__main__":
    main()
