#!/usr/bin/env python
"""The paper's motivating scenario (§1): an environmental simulation
served to very different clients.

"Consider a large environmental simulation running on a multi-processor
supercomputer at a national lab.  There can be many kinds of clients for
this simulation..."

This example builds that deployment on the simulated network and gives
each client class exactly the access §1 prescribes:

* **analyst** (inside the lab's LAN): full interface, no authentication,
  no encryption — plain protocol.
* **university partner** (another site): full interface, but requests
  are authenticated and encrypted over the WAN.
* **subscriber** (commercial client): *read-only view* of the interface,
  authenticated, and metered — access "on a total number of accesses
  basis".
* **trial user**: read-only view with a *time lease* — "access to the
  weather data only for the time they have paid for".

Run:  python examples/weather_service.py
"""

import numpy as np

from repro import (
    ORB,
    AuthenticationCapability,
    CallQuotaCapability,
    EncryptionCapability,
    InterfaceView,
    LeaseExpiredError,
    Principal,
    QuotaExceededError,
    RemoteException,
    TimeLeaseCapability,
    remote_interface,
    remote_method,
)
from repro.simnet import (
    ETHERNET_100,
    NetworkSimulator,
    Topology,
    WAN_T3,
)


@remote_interface("WeatherSimulation")
class WeatherSimulation:
    """The supercomputer-resident simulation servant."""

    def __init__(self, grid: int = 64):
        rng = np.random.default_rng(1999)
        self._field = rng.standard_normal((grid, grid))
        self._steps = 0

    @remote_method
    def step(self, hours: int) -> int:
        """Advance the simulation (privileged)."""
        for _ in range(hours):
            # A toy diffusion step — enough to make state evolve.
            f = self._field
            self._field = 0.6 * f + 0.1 * (
                np.roll(f, 1, 0) + np.roll(f, -1, 0)
                + np.roll(f, 1, 1) + np.roll(f, -1, 1))
            self._steps += 1
        return self._steps

    @remote_method
    def feed_observations(self, data) -> int:
        """Assimilate observations (privileged)."""
        arr = np.asarray(data, dtype=np.float64)
        n = min(len(arr), self._field.size)
        self._field.reshape(-1)[:n] += 0.01 * arr[:n]
        return int(n)

    @remote_method
    def get_map(self, resolution: int):
        """The final weather map (what every client wants)."""
        step = max(1, self._field.shape[0] // max(resolution, 1))
        return self._field[::step, ::step].copy()

    @remote_method
    def forecast_summary(self) -> dict:
        return {
            "steps": self._steps,
            "mean": float(self._field.mean()),
            "max": float(self._field.max()),
        }


READ_ONLY = InterfaceView("WeatherReadOnly",
                          ["get_map", "forecast_summary"])


def main() -> None:
    # --- the world: lab site + university site + commercial ISP -------
    topo = Topology()
    lab = topo.add_site("national-lab")
    campus = topo.add_site("university")
    isp = topo.add_site("commercial-isp")
    lab_lan = topo.add_lan("lab-lan", lab, ETHERNET_100)
    uni_lan = topo.add_lan("uni-lan", campus, ETHERNET_100)
    isp_lan = topo.add_lan("isp-lan", isp, ETHERNET_100)
    topo.connect(lab_lan, uni_lan, WAN_T3)
    topo.connect(lab_lan, isp_lan, WAN_T3)
    topo.add_machine("supercomputer", lab_lan)
    topo.add_machine("analyst-ws", lab_lan)
    topo.add_machine("uni-ws", uni_lan)
    topo.add_machine("subscriber-pc", isp_lan)

    sim = NetworkSimulator(topo)
    orb = ORB(simulator=sim)
    lab_ctx = orb.context("lab", machine="supercomputer")
    analyst_ctx = orb.context("analyst", machine="analyst-ws")
    uni_ctx = orb.context("university", machine="uni-ws")
    sub_ctx = orb.context("subscriber", machine="subscriber-pc")

    simulation = WeatherSimulation()

    # --- principals and keys ------------------------------------------
    uni = Principal("partner", "university")
    subscriber = Principal("acme", "commercial")
    for principal, ctx in ((uni, uni_ctx), (subscriber, sub_ctx)):
        key = lab_ctx.keystore.generate(principal)
        ctx.keystore.install(principal, key)

    # --- one export per client class (different ORs, one servant) -----
    analyst_oref = lab_ctx.export(simulation)

    partner_oref = lab_ctx.export(simulation, glue_stacks=[[
        AuthenticationCapability.for_principal(uni),
        EncryptionCapability.server_descriptor(key_seed=77),
    ]])

    subscriber_oref = lab_ctx.export(
        simulation, view=READ_ONLY, glue_stacks=[[
            AuthenticationCapability.for_principal(
                subscriber, applicability="always"),
            CallQuotaCapability.for_calls(5, applicability="always"),
        ]])

    # --- analyst: local, trusted, full interface -----------------------
    analyst = analyst_ctx.bind(analyst_oref)
    print("analyst protocol      :", analyst.describe_selection())
    analyst.narrow().feed_observations(np.linspace(0, 1, 512))
    print("analyst stepped to    :", analyst.narrow().step(6))

    # --- university partner: authenticated + encrypted over the WAN ----
    partner = uni_ctx.bind(partner_oref)
    print("partner protocol      :", partner.describe_selection())
    summary = partner.narrow().forecast_summary()
    print("partner sees steps    :", summary["steps"])
    m = partner.narrow().get_map(8)
    print("partner map shape     :", m.shape)

    # --- subscriber: metered read-only view ----------------------------
    sub = sub_ctx.bind(subscriber_oref)
    print("subscriber protocol   :", sub.describe_selection())
    stub = sub.narrow()
    print("subscriber methods    :", sub.oref.interface.method_names())
    try:
        for i in range(10):
            stub.forecast_summary()
    except QuotaExceededError as exc:
        print(f"subscriber metered    : cut off after {i} calls ({exc})")
    # The restricted view refuses privileged methods outright.
    try:
        stub.step  # noqa: B018
    except AttributeError:
        print("subscriber view       : 'step' not even visible on stub")

    # --- trial user: time-leased access ---------------------------------
    # The lease clock starts when the trial is sold, i.e. now.
    trial_oref = lab_ctx.export(
        simulation, view=READ_ONLY, glue_stacks=[[
            TimeLeaseCapability.until(sim.clock.now() + 0.25),
        ]])
    trial = sub_ctx.bind(trial_oref)
    trial.narrow().forecast_summary()
    sim.clock.advance(0.5)  # half a virtual second later...
    try:
        trial.narrow().forecast_summary()
    except (LeaseExpiredError, RemoteException) as exc:
        print("trial user            : lease expired ->",
              type(exc).__name__)

    print(f"total virtual time    : {sim.clock.now() * 1e3:.2f} ms")
    orb.shutdown()


if __name__ == "__main__":
    main()
