"""Legacy setup entry point.

Exists so `pip install -e .` works on offline machines without the
`wheel` package (see the note at the top of pyproject.toml). All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
