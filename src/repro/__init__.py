"""Open HPC++ reproduction: a capabilities-based communication model for
high-performance distributed applications.

Reproduces Diwan & Gannon, *A Capabilities Based Communication Model for
High-Performance Distributed Applications: The Open HPC++ Approach*
(IPPS 1999): an open ORB with HPC++ global-pointer/context abstractions,
run-time protocol adaptivity, and remote access capabilities stacked in
a glue protocol — plus the substrates the paper depends on (XDR/CDR
serialization, transports, a Nexus-like RSR layer, security and
compression primitives, and a deterministic network simulator standing
in for the 1999 testbed).

Quick tour::

    from repro import ORB, remote_interface, remote_method

    @remote_interface("Echo")
    class Echo:
        @remote_method
        def echo(self, x):
            return x

    orb = ORB()
    server = orb.context("server")
    client = orb.context("client")
    gp = client.bind(server.export(Echo()))
    assert gp.narrow().echo(42) == 42

See DESIGN.md for the paper-to-module map and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.core import (
    ORB,
    APPLICABILITY_RULES,
    CAPABILITY_TYPES,
    Capability,
    Context,
    CostAwarePolicy,
    FirstMatchPolicy,
    GLOBAL_HOOKS,
    GlobalPointer,
    HealthMonitor,
    HookBus,
    Invocation,
    LoadBalancer,
    LoadMonitor,
    NameService,
    ObjectReference,
    PROTO_CLASSES,
    ProtocolClass,
    ProtocolClient,
    ProtocolEntry,
    ProtocolPool,
    SelectionPolicy,
    Locality,
    make_capability,
    migrate,
    register_applicability_rule,
    register_proto_class,
)
from repro.core.context import Placement
from repro.core.capabilities import (
    AuthenticationCapability,
    CallQuotaCapability,
    CompressionCapability,
    EncryptionCapability,
    IntegrityCapability,
    PaddingCapability,
    TimeLeaseCapability,
    TracingCapability,
)
from repro.exceptions import (
    AuthenticationError,
    CapabilityError,
    HpcError,
    LeaseExpiredError,
    NoApplicableProtocolError,
    QuotaExceededError,
    RemoteException,
)
from repro.idl import (
    InterfaceSpec,
    InterfaceView,
    interface_of,
    parse_idl,
    remote_interface,
    remote_method,
)
from repro.security.acl import AccessControlList, Permission
from repro.security.keys import KeyStore, Principal

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # runtime
    "ORB",
    "Context",
    "Placement",
    "GlobalPointer",
    "ObjectReference",
    "ProtocolEntry",
    "ProtocolPool",
    "Invocation",
    "NameService",
    "migrate",
    "LoadBalancer",
    "LoadMonitor",
    "HealthMonitor",
    "CostAwarePolicy",
    "HookBus",
    "GLOBAL_HOOKS",
    # protocols & selection
    "PROTO_CLASSES",
    "ProtocolClass",
    "ProtocolClient",
    "register_proto_class",
    "SelectionPolicy",
    "FirstMatchPolicy",
    "Locality",
    "APPLICABILITY_RULES",
    "register_applicability_rule",
    # capabilities
    "CAPABILITY_TYPES",
    "Capability",
    "make_capability",
    "AuthenticationCapability",
    "CallQuotaCapability",
    "CompressionCapability",
    "EncryptionCapability",
    "IntegrityCapability",
    "PaddingCapability",
    "TimeLeaseCapability",
    "TracingCapability",
    # idl
    "remote_interface",
    "remote_method",
    "interface_of",
    "InterfaceSpec",
    "InterfaceView",
    "parse_idl",
    # security
    "KeyStore",
    "Principal",
    "AccessControlList",
    "Permission",
    # exceptions
    "HpcError",
    "RemoteException",
    "CapabilityError",
    "QuotaExceededError",
    "LeaseExpiredError",
    "AuthenticationError",
    "NoApplicableProtocolError",
]
