"""Server-side admission control and overload protection.

The client-metering capabilities of §4.2 (quotas, leases) have a
missing mirror: nothing protects a *server* from the unbounded
correlation-id'd pipelines PR 4 made cheap.  This package is that
mirror — a policy-driven admission layer every
:class:`~repro.nexus.endpoint.Endpoint` can dispatch through:

* :class:`AdmissionPolicy` — the swappable knob object
  (``ctx.set_admission_policy``), Open Implementation style;
* :class:`AdmissionQueue` — bounded, priority-classed
  (interactive / batch / best-effort), cost-unit-accounted queue with
  an optional LIFO-within-class discipline;
* :class:`ConcurrencyLimiter` — AIMD limit on in-flight dispatches fed
  by observed service latency, replacing the fixed worker-pool size;
* :class:`AdmissionController` — the shed/admit decision point wiring
  queue + limiter to an endpoint, emitting ``admit`` / ``shed`` /
  ``limit_change`` events;
* :func:`deadline_scope` / :func:`ambient_deadline` — server-side
  deadline propagation, so an expired budget sheds before dispatch and
  nested invokes inherit the shrunken remainder.

See ``docs/ADMISSION.md`` for the policy model and pushback contract.
"""

from repro.admission.controller import AdmissionController
from repro.admission.deadline import ambient_deadline, deadline_scope
from repro.admission.limiter import ConcurrencyLimiter
from repro.admission.policy import (
    BATCH,
    BEST_EFFORT,
    CLASS_NAMES,
    INTERACTIVE,
    AdmissionPolicy,
    class_ordinal,
)
from repro.admission.queue import AdmissionQueue, QueuedItem

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionQueue",
    "QueuedItem",
    "ConcurrencyLimiter",
    "INTERACTIVE",
    "BATCH",
    "BEST_EFFORT",
    "CLASS_NAMES",
    "class_ordinal",
    "ambient_deadline",
    "deadline_scope",
]
