"""The admission controller: queue + limiter + shed decisions.

One controller fronts one :class:`~repro.nexus.endpoint.Endpoint`.
Every two-way request the endpoint receives is *offered*; the
controller either admits it into the bounded priority queue (``admit``
event) or sheds it with a pushback reply (``shed`` event).  Workers
draw admitted work through :meth:`pop` (blocking, threaded transports)
or :meth:`try_pop` (non-blocking, the synchronous simulated world),
both gated by the adaptive :class:`ConcurrencyLimiter`; completions
feed service latency back through :meth:`finish`.

Shed reasons — the vocabulary of the ``shed`` event and of
:class:`~repro.exceptions.OverloadError.reason`::

    queue_full   the bounded queue could not take the request's cost
    deadline     the request's remaining time budget expired (on
                 arrival, or while it sat in the queue)
    stopping     the endpoint is shutting down
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.admission.limiter import ConcurrencyLimiter
from repro.admission.policy import AdmissionPolicy
from repro.admission.queue import AdmissionQueue, QueuedItem
from repro.serialization.marshal import peek_batch_count
from repro.util.timing import TimeSource, WallClock

__all__ = ["AdmissionController"]

#: Handler-name literals, duplicated from repro.core.protocol to keep
#: the admission package importable below the core layer.
_BATCH_HANDLER = "hpc.invoke.batch"
_GLUE_BATCH_HANDLER = "hpc.glue.batch"

#: reject callback signature: (retry_after_seconds, reason) -> None
Reject = Callable[[float, str], None]


class AdmissionController:
    """Admission decisions for one endpoint."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None,
                 clock: Optional[TimeSource] = None, hooks=None):
        if hooks is None:
            from repro.core.instrumentation import GLOBAL_HOOKS
            hooks = GLOBAL_HOOKS
        self.hooks = hooks
        self.clock = clock if clock is not None else WallClock()
        self._policy = policy if policy is not None else AdmissionPolicy()
        self.queue = AdmissionQueue(self._policy.queue_capacity,
                                    lifo=self._policy.lifo)
        self.limiter = ConcurrencyLimiter(self._policy, hooks=hooks)
        self._cond = threading.Condition()
        self._stopping = False
        self.admitted = 0
        self.shed = 0
        self.max_depth = 0

    @property
    def policy(self) -> AdmissionPolicy:
        return self._policy

    @property
    def active(self) -> bool:
        """Should the endpoint route dispatches through admission?"""
        return self._policy.enabled

    def set_policy(self, policy: AdmissionPolicy) -> None:
        """Swap the policy at runtime (Open Implementation style).

        Queued work survives: the queue is rebuilt at the new capacity
        and existing items re-offered in priority order; anything the
        smaller queue cannot take is shed with pushback.
        """
        with self._cond:
            old_items = self.queue.drain()
            self._policy = policy
            self.queue = AdmissionQueue(policy.queue_capacity,
                                        lifo=policy.lifo)
            self.limiter = ConcurrencyLimiter(policy, hooks=self.hooks)
            overflow = []
            for item in old_items:
                if not self.queue.offer(item):
                    overflow.append(item)
            self._cond.notify_all()
        for item in overflow:
            self._shed(item.priority, item.cost,
                       self._policy.retry_after_hint(self.queue.units),
                       "queue_full", item.extra)

    # -- cost classification ------------------------------------------------

    def classify(self, handler: str, payload: bytes) -> int:
        """The cost in units of one request, by a cheap payload peek.

        A batch is N units (its member count is a fixed-offset header
        word); a glue batch hides its count inside capability-processed
        bytes and is charged a flat conservative estimate.
        """
        if handler == _BATCH_HANDLER:
            count = peek_batch_count(payload)
            return max(count, 1) if count is not None else 1
        if handler == _GLUE_BATCH_HANDLER:
            return self._policy.opaque_batch_cost
        return 1

    # -- offering ------------------------------------------------------------

    def _shed(self, priority: int, cost: int, retry_after: float,
              reason: str, reject: Optional[Reject]) -> None:
        self.shed += 1
        self.hooks.emit("shed", reason=reason, priority=priority,
                        cost=cost, retry_after=retry_after,
                        depth=self.queue.depth)
        if reject is not None:
            reject(retry_after, reason)

    def submit(self, work, *, priority: int = 0,
               deadline_remaining: Optional[float] = None, cost: int = 1,
               reject: Optional[Reject] = None) -> bool:
        """Offer one request; True = admitted, False = shed.

        ``reject`` is called (with the retry-after hint and the shed
        reason) for every shed, here or later — an admitted item that
        expires in the queue still answers its peer through it.
        """
        if self._stopping:
            self._shed(priority, cost, self._policy.retry_after, "stopping",
                       reject)
            return False
        expires_at = None
        if deadline_remaining is not None:
            if deadline_remaining <= 0:
                self._shed(priority, cost, 0.0, "deadline", reject)
                return False
            expires_at = self.clock.now() + deadline_remaining
        item = QueuedItem(work=work, priority=priority, cost=cost,
                          expires_at=expires_at, extra=reject)
        with self._cond:
            admitted = self.queue.offer(item)
            if admitted:
                self.admitted += 1
                self.max_depth = max(self.max_depth, self.queue.depth)
                self._cond.notify()
        if not admitted:
            self._shed(priority, cost,
                       self._policy.retry_after_hint(self.queue.units),
                       "queue_full", reject)
            return False
        self.hooks.emit("admit", priority=priority, cost=cost,
                        depth=self.queue.depth, units=self.queue.units)
        return True

    # -- drawing work --------------------------------------------------------

    def _take(self) -> Optional[QueuedItem]:
        """One admitted, unexpired item under an acquired slot, or None.

        Expired items found at the head are shed on the spot (their
        reject callback answers the peer) rather than dispatched dead.
        """
        while True:
            if not self.limiter.try_acquire():
                return None
            item = self.queue.pop()
            if item is None:
                self.limiter.release(-1.0)
                return None
            if item.expires_at is not None \
                    and self.clock.now() > item.expires_at:
                self.limiter.release(-1.0)
                self._shed(item.priority, item.cost, 0.0, "deadline",
                           item.extra)
                continue
            return item

    def pop(self, timeout: Optional[float] = None) -> Optional[QueuedItem]:
        """Blocking draw for threaded workers; None on timeout/stop."""
        with self._cond:
            item = self._take()
            if item is not None:
                return item
            if self._stopping:
                return None
            self._cond.wait(timeout)
            return self._take()

    def try_pop(self) -> Optional[QueuedItem]:
        """Non-blocking draw (the synchronous simulated world)."""
        with self._cond:
            return self._take()

    def finish(self, item: QueuedItem, latency: float) -> None:
        """Report one dispatch complete; feeds the adaptive limit."""
        queued = self.queue.depth > 0
        self.limiter.release(latency, queued=queued)
        with self._cond:
            self._cond.notify()

    # -- lifecycle -----------------------------------------------------------

    def stop(self, reason: str = "stopping") -> int:
        """Refuse new offers and shed everything queued; returns the
        shed count.  Every queued item's reject callback fires, so no
        admitted peer is left hanging until its own timeout."""
        with self._cond:
            self._stopping = True
            victims = self.queue.drain()
            self._cond.notify_all()
        for item in victims:
            self._shed(item.priority, item.cost, self._policy.retry_after,
                       reason, item.extra)
        return len(victims)

    def snapshot(self) -> dict:
        """Operational snapshot (``ctx.describe()`` embeds this)."""
        return {
            "enabled": self._policy.enabled,
            "queue_depth": self.queue.depth,
            "queue_units": self.queue.units,
            "queue_capacity": self._policy.queue_capacity,
            "by_class": self.queue.depth_by_class(),
            "admitted": self.admitted,
            "shed": self.shed,
            "max_depth": self.max_depth,
            **self.limiter.snapshot(),
        }
