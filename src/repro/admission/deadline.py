"""Ambient deadline propagation.

A server dispatching a request with a remaining time budget publishes
the (absolute, local-clock) expiry for the duration of the servant
call; any *nested* invoke the servant makes picks it up and stamps the
shrunken remainder onto its own outgoing request.  Thread-local because
dispatch and nested invokes share a thread by construction — both in
the threaded endpoint workers and in the synchronous simulated world.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

__all__ = ["ambient_deadline", "deadline_scope"]

_STATE = threading.local()


def ambient_deadline() -> Optional[float]:
    """The innermost active deadline (absolute, local clock), or None."""
    return getattr(_STATE, "deadline", None)


@contextmanager
def deadline_scope(expires_at: Optional[float]):
    """Publish ``expires_at`` as the ambient deadline for the scope.

    Scopes nest; an inner scope only ever *tightens* the deadline (the
    outer budget still applies to work done inside).  ``None`` is a
    no-op scope.
    """
    previous = ambient_deadline()
    if expires_at is None:
        effective = previous
    elif previous is None:
        effective = expires_at
    else:
        effective = min(previous, expires_at)
    _STATE.deadline = effective
    try:
        yield effective
    finally:
        _STATE.deadline = previous
