"""Adaptive concurrency limiter: AIMD over observed service latency.

Replaces the endpoint's fixed ``DISPATCH_WORKERS`` cap with a limit
that *tracks the service's actual capacity*: every completed dispatch
feeds its service latency in; once per ``window`` completions the
windowed p50 is compared against the best (lowest) p50 ever observed —
the congestion-free baseline.  Latency inflating past ``tolerance`` x
baseline means added concurrency is only buying queueing delay
(Little's law), so the limit is cut multiplicatively; a healthy window
with demand waiting grows it additively.  Classic AIMD, gradient-style
congestion signal.

Deterministic by construction: decisions are pure arithmetic over the
completion sequence — no clock reads, no randomness — so seeded simnet
runs converge bit-for-bit.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.admission.policy import AdmissionPolicy

__all__ = ["ConcurrencyLimiter"]


class ConcurrencyLimiter:
    """AIMD limit on concurrent dispatches, fed by service latency."""

    def __init__(self, policy: AdmissionPolicy, hooks=None):
        self.policy = policy
        self.hooks = hooks
        self._limit = policy.initial_limit if policy.initial_limit \
            is not None else policy.max_limit
        self._inflight = 0
        self._window: list = []
        self._demand_seen = False
        self._baseline: Optional[float] = None
        self.adjustments = 0
        self._lock = threading.Lock()

    @property
    def limit(self) -> int:
        with self._lock:
            return self._limit

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_acquire(self) -> bool:
        """Claim one dispatch slot; False when the limit is reached."""
        with self._lock:
            if self._inflight >= self._limit:
                return False
            self._inflight += 1
            return True

    def release(self, latency: float, queued: bool = False) -> None:
        """Return a slot and feed the adaptation loop.

        ``latency`` is the dispatch's service time (queueing excluded);
        ``queued`` says whether work was waiting when it completed —
        the demand signal that justifies additive increase.
        """
        with self._lock:
            self._inflight = max(self._inflight - 1, 0)
            if latency >= 0:
                self._window.append(latency)
            self._demand_seen = self._demand_seen or queued
            if len(self._window) < self.policy.window:
                return
            samples = sorted(self._window)
            self._window = []
            demand, self._demand_seen = self._demand_seen, False
            p50 = samples[len(samples) // 2]
            if self._baseline is None or p50 < self._baseline:
                self._baseline = p50
            previous = self._limit
            if p50 > self.policy.tolerance * self._baseline:
                self._limit = max(self.policy.min_limit,
                                  min(self._limit - 1,
                                      int(self._limit * self.policy.decrease)))
            elif demand:
                self._limit = min(self.policy.max_limit,
                                  self._limit + self.policy.increase)
            if self._limit == previous:
                return
            self.adjustments += 1
            hooks = self.hooks
        if hooks is not None:
            hooks.emit("limit_change", limit=self._limit,
                       previous=previous, p50=p50,
                       baseline=self._baseline)

    def snapshot(self) -> dict:
        with self._lock:
            return {"limit": self._limit, "inflight": self._inflight,
                    "baseline_p50": self._baseline,
                    "adjustments": self.adjustments}
