"""Admission policy: the swappable knobs of server-side overload control.

The paper's capability model meters *clients* (quotas, leases, §4.2);
this is the matching server-side resource policy, packaged Open
Implementation-style as one plain policy object a context can swap at
runtime (``ctx.set_admission_policy``) — "resource policies belong in
swappable middleware policy objects" (Dearle et al.).

Three admission classes, ordered by urgency::

    INTERACTIVE (0)  request/reply traffic a human or a caller's caller
                     is blocked on; served first.
    BATCH (1)        throughput work; absorbs queueing delay.
    BEST_EFFORT (2)  shed first, served last.

Costs are in *units*: an ordinary call is 1 unit, a ``BatchRequest`` of
N members is N units (so batching cannot be used to smuggle load past
admission), and a capability-processed (glue) batch — whose member
count is encrypted — is charged a flat conservative estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["INTERACTIVE", "BATCH", "BEST_EFFORT", "CLASS_NAMES",
           "class_ordinal", "AdmissionPolicy"]

INTERACTIVE = 0
BATCH = 1
BEST_EFFORT = 2

#: Ordinal -> human name, in priority order.
CLASS_NAMES = ("interactive", "batch", "best-effort")


def class_ordinal(name) -> int:
    """Map a class name (or an already-valid ordinal) to its ordinal."""
    if isinstance(name, int):
        if 0 <= name < len(CLASS_NAMES):
            return name
        raise ValueError(f"unknown admission class ordinal {name}")
    try:
        return CLASS_NAMES.index(str(name))
    except ValueError:
        raise ValueError(f"unknown admission class {name!r}") from None


@dataclass
class AdmissionPolicy:
    """Knobs for one endpoint's admission controller.

    ``retry_after`` scales with queue fill so pushback strength tracks
    pressure: an almost-empty queue hints a short pause, a full one a
    long pause — see :meth:`retry_after_hint`.
    """

    #: Master switch; off means the legacy unbounded-pool dispatch path.
    enabled: bool = False
    #: Bound on queued cost units across all classes; offers beyond it
    #: are shed with a pushback reply.
    queue_capacity: int = 64
    #: Serve the *newest* request within a class first.  Under sustained
    #: overload FIFO serves the oldest — most-likely-already-expired —
    #: work first; LIFO trades per-class fairness for useful goodput.
    lifo: bool = False
    #: Upper bound on dispatch worker threads (threaded transports).
    max_workers: int = 16
    #: Concurrency-limit bounds and adaptation step for the AIMD limiter.
    min_limit: int = 1
    max_limit: int = 16
    initial_limit: Optional[int] = None
    #: Completions per adaptation window.
    window: int = 32
    #: p50 may inflate to ``tolerance`` x the observed baseline before
    #: the limit is cut.
    tolerance: float = 2.0
    #: Multiplicative decrease factor / additive increase step.
    decrease: float = 0.8
    increase: int = 1
    #: Base pushback hint (seconds) when shedding with an empty queue.
    retry_after: float = 0.05
    #: Flat unit cost charged for a glue batch, whose member count is
    #: hidden inside capability-processed bytes.
    opaque_batch_cost: int = 4

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not 1 <= self.min_limit <= self.max_limit:
            raise ValueError("need 1 <= min_limit <= max_limit")
        if self.initial_limit is not None and not \
                self.min_limit <= self.initial_limit <= self.max_limit:
            raise ValueError("initial_limit outside [min_limit, max_limit]")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.tolerance <= 1.0:
            raise ValueError("tolerance must be > 1")
        if not 0.0 < self.decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if self.increase < 1:
            raise ValueError("increase must be >= 1")
        if self.retry_after < 0:
            raise ValueError("retry_after must be non-negative")
        if self.opaque_batch_cost < 1:
            raise ValueError("opaque_batch_cost must be >= 1")

    def retry_after_hint(self, queued_units: int) -> float:
        """The pushback hint for a shed at the given queue occupancy:
        ``retry_after * (1 + fill)``, so a saturated queue asks clients
        to stay away twice as long as an empty one."""
        fill = min(queued_units / self.queue_capacity, 1.0)
        return self.retry_after * (1.0 + fill)
