"""Bounded, priority-classed admission queue.

One deque per admission class; ``pop`` always serves the most urgent
non-empty class, FIFO or LIFO *within* the class per policy.  Occupancy
is counted in cost units, not entries, so a 100-member batch fills the
queue like 100 calls would — the server half of the batch-accounting
satellite.

Pure data structure: no clock, no threads of its own (the controller
owns the condition variable), so it is trivially deterministic and unit
testable.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.admission.policy import CLASS_NAMES

__all__ = ["QueuedItem", "AdmissionQueue"]


@dataclass
class QueuedItem:
    """One admitted-but-not-yet-dispatched request."""

    work: Any
    priority: int
    cost: int = 1
    #: Absolute expiry on the server clock, or None (no deadline).
    expires_at: Optional[float] = None
    #: Opaque per-item baggage (the endpoint keeps the reject callback
    #: here so an expired item can still answer its peer).
    extra: Any = None
    seq: int = field(default=0)


class AdmissionQueue:
    """Priority-classed bounded queue, occupancy counted in cost units."""

    def __init__(self, capacity: int, lifo: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.lifo = lifo
        self._classes: List[deque] = [deque() for _ in CLASS_NAMES]
        self._units = 0
        self._seq = 0
        self._lock = threading.Lock()

    @property
    def units(self) -> int:
        """Queued cost units (the capacity-bounded quantity)."""
        with self._lock:
            return self._units

    @property
    def depth(self) -> int:
        """Queued entry count (diagnostics; capacity bounds units)."""
        with self._lock:
            return sum(len(q) for q in self._classes)

    def depth_by_class(self) -> dict:
        with self._lock:
            return {CLASS_NAMES[i]: len(q)
                    for i, q in enumerate(self._classes)}

    def offer(self, item: QueuedItem) -> bool:
        """Enqueue unless it would exceed capacity; False = rejected.

        A single item costing more than the whole capacity is only
        admitted into an *empty* queue — a batch bigger than the queue
        must not be permanently unadmittable, but must not evict
        standing work either.
        """
        if not 0 <= item.priority < len(self._classes):
            raise ValueError(f"unknown priority class {item.priority}")
        if item.cost < 1:
            raise ValueError("cost must be >= 1")
        with self._lock:
            if self._units + item.cost > self.capacity \
                    and not (self._units == 0 and item.cost > self.capacity):
                return False
            self._seq += 1
            item.seq = self._seq
            self._classes[item.priority].append(item)
            self._units += item.cost
            return True

    def pop(self) -> Optional[QueuedItem]:
        """Dequeue from the most urgent non-empty class, or None."""
        with self._lock:
            for q in self._classes:
                if q:
                    item = q.pop() if self.lifo else q.popleft()
                    self._units -= item.cost
                    return item
            return None

    def drain(self) -> List[QueuedItem]:
        """Remove and return everything queued (stop/shutdown path)."""
        with self._lock:
            items: List[QueuedItem] = []
            for q in self._classes:
                items.extend(q)
                q.clear()
            self._units = 0
            return items

    def __len__(self) -> int:
        return self.depth
