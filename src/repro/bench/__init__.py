"""Experiment drivers for the paper's evaluation (§5).

Each function here regenerates one paper artifact as structured data;
the ``benchmarks/`` suite wraps them with pytest-benchmark and prints
the tables/series.  EXPERIMENTS.md records paper-vs-measured.

* :func:`repro.bench.figures.run_fig5` — Figure 5 (bandwidth vs array
  size, four protocol configurations, selectable fabric)
* :func:`repro.bench.scenario.run_fig4_scenario` — the Figure 4
  migration tour (per-stage protocol choice + bandwidth)
* :func:`repro.bench.scenario.run_fig3_scenario` — the Figure 3
  authentication-flip scenario
* :mod:`repro.bench.reporting` — ascii tables/series for the console
"""

from repro.bench.figures import Fig5Result, run_fig5
from repro.bench.scenario import (
    Fig3Result,
    Fig4Stage,
    run_fig3_scenario,
    run_fig4_scenario,
)
from repro.bench.reporting import format_series_table, format_table

__all__ = [
    "run_fig5",
    "Fig5Result",
    "run_fig4_scenario",
    "Fig4Stage",
    "run_fig3_scenario",
    "Fig3Result",
    "format_table",
    "format_series_table",
]
