"""Command-line experiment runner: ``python -m repro.bench <experiment>``.

Regenerates the paper's artifacts without pytest:

    python -m repro.bench fig5            # ATM sweep (default)
    python -m repro.bench fig5 --fabric ethernet
    python -m repro.bench fig4
    python -m repro.bench fig3
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import run_fig5
from repro.bench.reporting import format_series_table, format_table
from repro.bench.scenario import run_fig3_scenario, run_fig4_scenario
from repro.simnet.linktypes import ATM_155, ETHERNET_10

_FABRICS = {"atm": ATM_155, "ethernet": ETHERNET_10}


def print_fig5(fabric_name: str, repetitions: int) -> None:
    result = run_fig5(fabric=_FABRICS[fabric_name],
                      repetitions=repetitions)
    print(f"\nFigure 5 over {result.fabric} (bandwidth, Mbps)")
    print(format_series_table(
        "bytes", result.sizes,
        {label: [f"{v:.4g}" for v in series]
         for label, series in result.series().items()}))
    last = result.sizes[-1]
    print(f"\nshm speedup @{last}B        : "
          f"{result.shm_speedup_at(last):.1f}x")
    print(f"capability overhead @{last}B: "
          f"{100 * result.capability_overhead_at(last):.1f}%")


def print_fig4(repetitions: int) -> None:
    stages = run_fig4_scenario(repetitions=repetitions)
    print("\nFigure 4 migration experiment (64 KiB payload)")
    print(format_table(
        ["stage", "server machine", "protocol selected",
         "bandwidth (Mbps)"],
        [[s.stage, s.machine, s.selected, f"{s.bandwidth_mbps:.4g}"]
         for s in stages]))


def print_fig3() -> None:
    result = run_fig3_scenario()
    print("\nFigure 3 authentication adaptivity")
    print(format_table(
        ["client", "before migration", "after migration"],
        [["P1", result.before["P1"], result.after["P1"]],
         ["P2", result.before["P2"], result.after["P2"]]]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Open HPC++ paper's evaluation.")
    parser.add_argument("experiment",
                        choices=["fig5", "fig4", "fig3", "all"],
                        help="which artifact to regenerate")
    parser.add_argument("--fabric", choices=sorted(_FABRICS),
                        default="atm",
                        help="physical fabric for fig5 (default: atm)")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="readings averaged per point (default: 3)")
    args = parser.parse_args(argv)

    if args.experiment in ("fig5", "all"):
        print_fig5(args.fabric, args.repetitions)
        if args.experiment == "all" and args.fabric == "atm":
            print_fig5("ethernet", args.repetitions)
    if args.experiment in ("fig4", "all"):
        print_fig4(args.repetitions)
    if args.experiment in ("fig3", "all"):
        print_fig3()
    return 0


if __name__ == "__main__":
    sys.exit(main())
