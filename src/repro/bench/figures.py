"""Figure 5 driver: bandwidth vs array size for four protocols.

The paper's §5 experiment: "The requests exchange an array of integers
between the client and the server, and the average bandwidth over a
large number of readings is computed.  The requests are repeated for
array sizes ranging from 1 to 1 million [bytes]."

Four configurations, matching the figure's curves:

* ``glue with timeout & security`` — server on the remote machine M1;
  glue stack = call quota + encryption;
* ``glue with timeout``           — same placement, quota only;
* ``Nexus``                        — same placement, plain protocol;
* ``shared memory``                — server co-located with the client
  (shared memory is meaningless across machines), shm protocol.

Bandwidth is computed the classic ping-pong way: the array travels in
both directions, so ``bandwidth = 2 * nbytes / round_trip_time`` — all
in virtual time, which is what makes the curves deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.capabilities import CallQuotaCapability, EncryptionCapability
from repro.core.orb import ORB
from repro.simnet.linktypes import ATM_155, LinkModel
from repro.simnet.presets import paper_testbed
from repro.simnet.simulator import NetworkSimulator

from repro.cluster.node import WorkUnit

__all__ = ["Fig5Result", "run_fig5", "DEFAULT_SIZES", "PROTOCOL_LABELS"]

#: Array sizes in bytes: powers of 4 from 1 to ~1M, the paper's x range.
DEFAULT_SIZES = [4 ** k for k in range(11)]  # 1 .. 1,048,576

PROTOCOL_LABELS = [
    "glue with timeout & security",
    "glue with timeout",
    "Nexus",
    "shared memory",
]


@dataclass
class Fig5Result:
    """One full sweep: fabric name, sizes, and Mbps per protocol."""

    fabric: str
    sizes: List[int]
    bandwidth_mbps: Dict[str, List[float]] = field(default_factory=dict)

    def series(self) -> Dict[str, List[float]]:
        return dict(self.bandwidth_mbps)

    # -- shape checks used by tests and EXPERIMENTS.md ---------------------

    def shm_speedup_at(self, size: int) -> float:
        """Shared-memory bandwidth / best network bandwidth at a size."""
        i = self.sizes.index(size)
        shm = self.bandwidth_mbps["shared memory"][i]
        others = [self.bandwidth_mbps[l][i] for l in PROTOCOL_LABELS[:3]]
        return shm / max(others)

    def capability_overhead_at(self, size: int) -> float:
        """(Nexus - glue[timeout+security]) / Nexus bandwidth at a size:
        the relative cost the paper calls 'only a small amount'."""
        i = self.sizes.index(size)
        nexus = self.bandwidth_mbps["Nexus"][i]
        glue2 = self.bandwidth_mbps["glue with timeout & security"][i]
        return (nexus - glue2) / nexus


def _measure(gp, sizes: Sequence[int], repetitions: int, sim) -> List[float]:
    out = []
    stub = gp.narrow()
    for size in sizes:
        payload = np.arange(size, dtype=np.uint8)
        # Warm the connection so setup cost is not in the measurement.
        stub.process(payload[:1])
        t0 = sim.clock.now()
        for _ in range(repetitions):
            stub.process(payload)
        elapsed = sim.clock.now() - t0
        mbps = (2 * size * repetitions * 8.0) / elapsed / 1e6
        out.append(mbps)
    return out


def run_fig5(fabric: LinkModel = ATM_155,
             sizes: Sequence[int] = DEFAULT_SIZES,
             repetitions: int = 3) -> Fig5Result:
    """Run the full Figure 5 sweep over the given fabric."""
    tb = paper_testbed(fabric=fabric)
    sim = NetworkSimulator(tb.topology, keep_records=0)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    remote = orb.context("remote-server", machine=tb.m1)
    local = orb.context("local-server", machine=tb.m0)

    result = Fig5Result(fabric=fabric.name, sizes=list(sizes))

    quota = CallQuotaCapability.for_calls(10_000_000,
                                          applicability="always")
    security = EncryptionCapability.server_descriptor(
        key_seed=42, applicability="always")

    # glue with timeout & security
    oref = remote.export(WorkUnit("sec"), glue_stacks=[[quota, security]])
    gp = client.bind(oref)
    gp.pool.reorder(["glue", "shm", "nexus"])
    gp.drop_protocol("shm")
    gp.drop_protocol("nexus")
    assert gp.describe_selection() == "glue[quota+encryption]"
    result.bandwidth_mbps[PROTOCOL_LABELS[0]] = _measure(
        gp, sizes, repetitions, sim)

    # glue with timeout
    oref = remote.export(WorkUnit("to"), glue_stacks=[[quota]])
    gp = client.bind(oref)
    gp.drop_protocol("shm")
    gp.drop_protocol("nexus")
    assert gp.describe_selection() == "glue[quota]"
    result.bandwidth_mbps[PROTOCOL_LABELS[1]] = _measure(
        gp, sizes, repetitions, sim)

    # plain Nexus
    oref = remote.export(WorkUnit("nx"))
    gp = client.bind(oref)
    gp.drop_protocol("shm")
    assert gp.describe_selection() == "nexus"
    result.bandwidth_mbps[PROTOCOL_LABELS[2]] = _measure(
        gp, sizes, repetitions, sim)

    # shared memory (server co-located with the client)
    oref = local.export(WorkUnit("shm"))
    gp = client.bind(oref)
    assert gp.describe_selection() == "shm"
    result.bandwidth_mbps[PROTOCOL_LABELS[3]] = _measure(
        gp, sizes, repetitions, sim)

    orb.shutdown()
    return result
