"""ASCII reporting helpers for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and parseable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_series_table", "format_number"]


def format_number(x, sig: int = 4) -> str:
    """Compact human-friendly number formatting."""
    if isinstance(x, str):
        return x
    if x is None:
        return "-"
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    if x == 0:
        return "0"
    if abs(x) >= 10 ** sig or abs(x) < 10 ** -(sig - 1):
        return f"{x:.{sig - 1}e}"
    return f"{x:.{sig}g}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a header rule."""
    cells = [[format_number(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(parts):
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series_table(x_label: str, xs: Sequence,
                        series: Dict[str, Sequence]) -> str:
    """A figure-as-table: one x column, one column per named series.

    ``series`` maps label -> y values aligned with ``xs``.
    """
    headers = [x_label, *series.keys()]
    rows: List[list] = []
    for i, x in enumerate(xs):
        rows.append([x, *(ys[i] for ys in series.values())])
    return format_table(headers, rows)
