"""Figure 4 and Figure 3 scenario drivers.

:func:`run_fig4_scenario` executes the §5 migration tour on the paper
testbed and records, for each stage, the protocol actually selected and
the measured bandwidth — the data behind both Figure 4-A's narrative and
the per-stage protocol table of Figure 4-B.

:func:`run_fig3_scenario` executes the two-client authentication-flip
scenario of Figure 3 and reports which client authenticated before and
after the migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.cluster.node import WorkUnit
from repro.core.capabilities import (
    AuthenticationCapability,
    CallQuotaCapability,
    EncryptionCapability,
)
from repro.core.migration import migrate
from repro.core.orb import ORB
from repro.security.keys import Principal
from repro.simnet.linktypes import ATM_155, ETHERNET_10, LinkModel
from repro.simnet.presets import paper_testbed
from repro.simnet.simulator import NetworkSimulator
from repro.simnet.topology import Topology

__all__ = ["Fig4Stage", "run_fig4_scenario", "Fig3Result",
           "run_fig3_scenario"]


@dataclass
class Fig4Stage:
    """One stop of the migration tour."""

    stage: int
    machine: str
    locality: str
    selected: str
    bandwidth_mbps: float


def run_fig4_scenario(fabric: LinkModel = ATM_155,
                      payload_bytes: int = 65536,
                      repetitions: int = 5) -> List[Fig4Stage]:
    """Run the Figure 4 migration tour; returns the per-stage records."""
    tb = paper_testbed(fabric=fabric)
    sim = NetworkSimulator(tb.topology, keep_records=0)
    orb = ORB(simulator=sim)
    client = orb.context("client", machine=tb.m0)
    servers = [orb.context(f"srv-{m.name}", machine=m)
               for m in (tb.m1, tb.m2, tb.m3, tb.m0)]

    oref = servers[0].export(WorkUnit("s"), glue_stacks=[
        [CallQuotaCapability.for_calls(10_000_000),
         EncryptionCapability.server_descriptor(key_seed=42)],
        [CallQuotaCapability.for_calls(10_000_000)],
    ])
    gp = client.bind(oref)
    payload = np.arange(payload_bytes, dtype=np.uint8)

    stages: List[Fig4Stage] = []
    for stage, server in enumerate(servers, start=1):
        if stage > 1:
            migrate(servers[stage - 2], oref.object_id, server)
            gp.invoke("status")  # follow the MOVED notice
        gp.invoke("process", payload[:1])  # settle connections
        t0 = sim.clock.now()
        for _ in range(repetitions):
            gp.invoke("process", payload)
        elapsed = sim.clock.now() - t0
        loc = client.placement.locality_to(server.placement)
        loc_name = ("same-machine" if loc.same_machine else
                    "same-lan" if loc.same_lan else
                    "same-site" if loc.same_site else "remote")
        stages.append(Fig4Stage(
            stage=stage,
            machine=server.placement.machine,
            locality=loc_name,
            selected=gp.describe_selection(),
            bandwidth_mbps=(2 * payload_bytes * repetitions * 8.0)
            / elapsed / 1e6,
        ))
    orb.shutdown()
    return stages


@dataclass
class Fig3Result:
    """Selections seen by the two clients, before and after migration."""

    before: Dict[str, str] = field(default_factory=dict)
    after: Dict[str, str] = field(default_factory=dict)


def run_fig3_scenario(fabric: LinkModel = ETHERNET_10) -> Fig3Result:
    """Two clients, LAN-scoped authentication, migration flips roles."""
    topo = Topology()
    site = topo.add_site("campus")
    lan1 = topo.add_lan("lan-1", site, fabric)
    lan2 = topo.add_lan("lan-2", site, fabric)
    topo.connect(lan1, lan2, fabric)
    topo.add_machine("S-home", lan1)
    topo.add_machine("P1-box", lan1)
    topo.add_machine("P2-box", lan2)
    topo.add_machine("S-new", lan2)
    sim = NetworkSimulator(topo)
    orb = ORB(simulator=sim)
    server = orb.context("server", machine="S-home")
    server2 = orb.context("server2", machine="S-new")
    p1 = orb.context("P1", machine="P1-box")
    p2 = orb.context("P2", machine="P2-box")

    # Shared principal key so either client can authenticate.
    principal = Principal("client", "campus")
    key = server.keystore.generate(principal)
    for ctx in (p1, p2, server2):
        ctx.keystore.install(principal, key)

    oref = server.export(WorkUnit("s0"), glue_stacks=[
        [AuthenticationCapability.for_principal(principal)]])
    gp1 = p1.bind(oref)
    gp2 = p2.bind(oref)

    result = Fig3Result()
    result.before = {"P1": gp1.describe_selection(),
                     "P2": gp2.describe_selection()}
    gp1.invoke("status")
    gp2.invoke("status")

    migrate(server, oref.object_id, server2)
    gp1.invoke("status")
    gp2.invoke("status")
    result.after = {"P1": gp1.describe_selection(),
                    "P2": gp2.describe_selection()}
    orb.shutdown()
    return result
