"""Cluster harness: multi-context deployments, workloads, chaos runs.

Utilities for standing up a simulated cluster (one or more contexts per
machine, worker objects exported on each), driving deterministic
synthetic request streams against it — the machinery behind the
load-balancing experiments (ABL-LB in DESIGN.md) and the larger
examples — and, via :class:`ChaosRun`, driving those workloads through
seeded fault plans while recording per-bucket degradation curves.
"""

from repro.cluster.chaos import (
    ChaosReport,
    ChaosRun,
    OverloadPhase,
    OverloadReport,
    OverloadRun,
)
from repro.cluster.node import (
    ClusterNode,
    bind_workers,
    build_cluster,
)
from repro.cluster.scheduler import PlacementScheduler
from repro.cluster.workload import (
    BatchedSyntheticWorkload,
    RequestSpec,
    SyntheticWorkload,
    WorkloadResult,
)

__all__ = [
    "BatchedSyntheticWorkload",
    "ChaosReport",
    "ChaosRun",
    "ClusterNode",
    "bind_workers",
    "build_cluster",
    "OverloadPhase",
    "OverloadReport",
    "OverloadRun",
    "PlacementScheduler",
    "RequestSpec",
    "SyntheticWorkload",
    "WorkloadResult",
]
