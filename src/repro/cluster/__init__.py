"""Cluster harness: multi-context deployments, workloads, chaos runs.

Utilities for standing up a simulated cluster (one or more contexts per
machine, worker objects exported on each), driving deterministic
synthetic request streams against it — the machinery behind the
load-balancing experiments (ABL-LB in DESIGN.md) and the larger
examples — and, via :class:`ChaosRun`, driving those workloads through
seeded fault plans while recording per-bucket degradation curves.

The real-process half (:mod:`repro.cluster.procs` +
``python -m repro.cluster.node``) spawns genuine endpoint processes
over kernel TCP and drives the same chaos machinery — SIGKILL crashes,
SIGSTOP gray failures, SIGTERM rolling restarts — against them.
"""

from repro.cluster.chaos import (
    ChaosReport,
    ChaosRun,
    OverloadPhase,
    OverloadReport,
    OverloadRun,
)
from repro.cluster.control import (
    ConfigRecord,
    ControlChannel,
    GoodbyeRecord,
    ReadyRecord,
    ShutdownRecord,
    SnapshotRecord,
    SnapshotRequest,
)
from repro.cluster.node import (
    ClusterNode,
    bind_workers,
    build_cluster,
    strip_to_tcp,
)
from repro.cluster.procs import (
    NodeSpec,
    ProcCluster,
    ProcNode,
    ProcReport,
    ProcRun,
    merge_orefs,
)
from repro.cluster.scheduler import PlacementScheduler
from repro.cluster.workload import (
    BatchedSyntheticWorkload,
    RequestSpec,
    SyntheticWorkload,
    WorkloadResult,
)

__all__ = [
    "BatchedSyntheticWorkload",
    "ChaosReport",
    "ChaosRun",
    "ClusterNode",
    "ConfigRecord",
    "ControlChannel",
    "GoodbyeRecord",
    "NodeSpec",
    "ProcCluster",
    "ProcNode",
    "ProcReport",
    "ProcRun",
    "ReadyRecord",
    "ShutdownRecord",
    "SnapshotRecord",
    "SnapshotRequest",
    "bind_workers",
    "build_cluster",
    "merge_orefs",
    "strip_to_tcp",
    "OverloadPhase",
    "OverloadReport",
    "OverloadRun",
    "PlacementScheduler",
    "RequestSpec",
    "SyntheticWorkload",
    "WorkloadResult",
]
