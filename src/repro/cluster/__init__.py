"""Cluster harness: multi-context deployments and synthetic workloads.

Utilities for standing up a simulated cluster (one or more contexts per
machine, worker objects exported on each) and driving deterministic
synthetic request streams against it — the machinery behind the
load-balancing experiments (ABL-LB in DESIGN.md) and the larger
examples.
"""

from repro.cluster.node import ClusterNode, build_cluster
from repro.cluster.scheduler import PlacementScheduler
from repro.cluster.workload import RequestSpec, SyntheticWorkload, WorkloadResult

__all__ = [
    "ClusterNode",
    "build_cluster",
    "PlacementScheduler",
    "RequestSpec",
    "SyntheticWorkload",
    "WorkloadResult",
]
