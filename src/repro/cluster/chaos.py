"""ChaosRun: seeded fault-plan workloads with degradation curves.

The last mile of the resilience story: drive a deterministic
:class:`~repro.cluster.workload.SyntheticWorkload` through a phased
:class:`~repro.faults.plan.FaultPlan` on a simulated cluster, aggregate
every hook-bus event through a
:class:`~repro.metrics.recorder.MetricsRecorder`, and emit a
:class:`~repro.metrics.curves.DegradationCurve` — per-bucket goodput,
error rate, latency percentiles, and retry/hedge volume — that
:func:`~repro.metrics.curves.assert_degradation` can gate on.

Determinism contract: the workload script, the plan's draws, the
phase boundaries, and virtual time are all pure functions of their
seeds, so an identically-seeded run yields a bucket-for-bucket
identical curve, an identical metrics snapshot, and an equal
:class:`~repro.cluster.workload.WorkloadResult`.  That is asserted in
``tests/cluster/test_chaos.py`` and swept in
``benchmarks/bench_chaos_sweep.py``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.admission import AdmissionController, AdmissionPolicy, CLASS_NAMES
from repro.cluster.workload import SyntheticWorkload, WorkloadResult
from repro.core.instrumentation import GLOBAL_HOOKS, HookBus
from repro.faults.plan import FaultPlan
from repro.metrics.curves import DegradationCurve
from repro.metrics.recorder import MetricsRecorder
from repro.security.prng import Pcg32
from repro.simnet.clock import VirtualClock

__all__ = ["ChaosRun", "ChaosReport", "OverloadPhase", "OverloadRun",
           "OverloadReport"]


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    result: WorkloadResult
    curve: DegradationCurve
    metrics: dict
    recorder: MetricsRecorder = field(repr=False, compare=False,
                                      default=None)

    def to_dict(self) -> dict:
        """Plain-dict view (``==``-comparable across seeded runs)."""
        return {"result": self.result.to_dict(),
                "curve": self.curve.to_dicts(),
                "metrics": self.metrics}


class ChaosRun:
    """Drive a workload through a fault plan; measure the damage.

    ``bucket_seconds`` sets the curve resolution (virtual seconds under
    simulation).  The harness:

    * installs the plan on the simulator (``sim.fault_plan``) if it is
      not already there;
    * gives the plan a **private hook bus** when it would otherwise
      publish to ``GLOBAL_HOOKS`` (the GP publishes every event to the
      global bus *too*, so recording both would double-count);
    * attaches one :class:`MetricsRecorder` to every GP's bus (lazily,
      as the workload resolves them) plus the plan's bus, and detaches
      them all afterwards;
    * fires the plan's scheduled phases (:meth:`FaultPlan.apply_until`)
      as virtual time passes, before each request;
    * records invocation failures instead of raising
      (``on_error="record"``), so the error rate is data, not a crash.

    A :class:`ChaosRun` may be re-run, but only with a rewound plan:
    fault-plan rules and PRNG draws are consumed by traffic, so
    re-running a consumed plan would *not* reproduce the first run.
    :meth:`run` refuses (``ValueError``) until ``plan.reset()``.
    """

    def __init__(self, workload: SyntheticWorkload, plan: FaultPlan, *,
                 bucket_seconds: float = 1.0,
                 recorder: Optional[MetricsRecorder] = None):
        self.workload = workload
        self.plan = plan
        self.bucket_seconds = bucket_seconds
        self._recorder = recorder

    def run(self, clients: List[dict], sim, *,
            resolve: Optional[Callable] = None,
            rebalance_every: int = 0,
            rebalance: Optional[Callable[[], list]] = None
            ) -> ChaosReport:
        """Execute the workload under the plan; return the report."""
        if self.plan.consumed:
            raise ValueError(
                "FaultPlan already consumed by a previous run; call "
                "plan.reset() to rewind it before re-running")
        if getattr(sim, "fault_plan", None) is not self.plan:
            sim.fault_plan = self.plan
        if self.plan.hooks is GLOBAL_HOOKS:
            self.plan.hooks = HookBus()
        recorder = self._recorder
        if recorder is None:
            recorder = MetricsRecorder(clock=sim.clock,
                                       bucket_seconds=self.bucket_seconds)
        attached: Dict[int, HookBus] = {}

        def watch(bus: HookBus) -> None:
            if id(bus) not in attached:
                recorder.attach(bus)
                attached[id(bus)] = bus

        watch(self.plan.hooks)
        if resolve is None:
            for table in clients:
                for gp in table.values():
                    watch(gp.hooks)
            inner_resolve = None
        else:
            def inner_resolve(ci, name):
                gp = resolve(ci, name)
                watch(gp.hooks)
                return gp

        t_start = sim.clock.now()
        self.plan.apply_until(t_start)

        def tick(i: int, req) -> None:
            self.plan.apply_until(sim.clock.now())

        try:
            result = self.workload.run(
                clients, sim, resolve=inner_resolve,
                rebalance_every=rebalance_every, rebalance=rebalance,
                before_request=tick, on_error="record")
        finally:
            for bus in attached.values():
                recorder.detach(bus)
        t_end = sim.clock.now()
        curve = DegradationCurve.from_recorder(
            recorder, t_start=t_start, t_end=t_end)
        return ChaosReport(result=result, curve=curve,
                           metrics=recorder.snapshot(), recorder=recorder)


# ---------------------------------------------------------------------------
# Overload runs: seeded open-loop load against the admission layer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadPhase:
    """One span of offered load.

    ``rate`` is the open-loop arrival rate (requests per virtual
    second) sustained for ``duration`` seconds; ``mix`` is the
    admission-class probability vector (interactive, batch,
    best-effort).  Open-loop on purpose: clients that do not slow down
    when the server does are exactly the regime admission control
    exists for.
    """

    duration: float
    rate: float
    mix: tuple = (0.6, 0.3, 0.1)

    def __post_init__(self):
        if self.duration <= 0 or self.rate <= 0:
            raise ValueError("phase duration and rate must be positive")
        if len(self.mix) != 3 or abs(sum(self.mix) - 1.0) > 1e-9:
            raise ValueError("mix must be 3 class probabilities summing "
                             "to 1")


def _nearest_rank(sorted_values: List[float], q: float) -> Optional[float]:
    if not sorted_values:
        return None
    rank = max(int(q * len(sorted_values) + 0.999999) - 1, 0)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass
class OverloadReport:
    """Everything one overload run produced (seed-deterministic)."""

    offered: int
    completed: int
    timely: int                 #: completions within their deadline
    shed: int
    shed_by_reason: Dict[str, int]
    duration: float
    goodput: float              #: timely completions per virtual second
    latency_by_class: Dict[str, dict]
    buckets: List[dict]         #: per-bucket {offered, timely, shed}
    admission: Optional[dict]   #: controller snapshot (None = baseline)
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict view (``==``-comparable across seeded runs)."""
        return {"offered": self.offered, "completed": self.completed,
                "timely": self.timely, "shed": self.shed,
                "shed_by_reason": dict(self.shed_by_reason),
                "duration": self.duration, "goodput": self.goodput,
                "latency_by_class": {k: dict(v) for k, v
                                     in self.latency_by_class.items()},
                "buckets": [dict(b) for b in self.buckets],
                "admission": self.admission,
                "metrics": self.metrics}


class _Arrival:
    """One offered request in an overload run."""

    __slots__ = ("at", "priority", "expires_at")

    def __init__(self, at: float, priority: int, expires_at: float):
        self.at = at
        self.priority = priority
        self.expires_at = expires_at


class OverloadRun:
    """Seeded open-loop load against the *real* admission controller.

    A discrete-event simulation in virtual time: Poisson arrivals
    (seeded :class:`~repro.security.prng.Pcg32` draws) are offered to
    an :class:`~repro.admission.AdmissionController` exactly as an
    endpoint would offer them — ``classify``-costed, deadline-stamped,
    drawn through ``try_pop`` under the adaptive concurrency limiter,
    completions fed back through ``finish``.  Service takes
    ``service_time`` virtual seconds per request on one of the
    limiter-granted slots.

    ``policy=None`` runs the no-admission baseline instead: a fixed
    worker pool (``baseline_workers``) fed by an unbounded FIFO — the
    pre-admission endpoint, whose queue under sustained overload grows
    without bound until every completion is far past its deadline.
    ``goodput`` (timely completions per second) is therefore the
    honest comparison: the baseline still *completes* requests at
    capacity, but completes them too late to count.

    Determinism: arrivals, class draws, queue/limiter decisions, and
    virtual time are pure functions of ``seed`` and the phase list, so
    identically-seeded runs return ``==``-equal ``to_dict()``s.
    """

    def __init__(self, *, policy: Optional[AdmissionPolicy] = None,
                 seed: int = 0, service_time: float = 0.008,
                 deadline: Optional[float] = 0.25,
                 baseline_workers: int = 16,
                 bucket_seconds: float = 1.0):
        if service_time <= 0:
            raise ValueError("service_time must be positive")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive")
        if baseline_workers < 1:
            raise ValueError("baseline_workers must be >= 1")
        self.policy = policy
        self.seed = seed
        self.service_time = service_time
        self.deadline = deadline
        self.baseline_workers = baseline_workers
        self.bucket_seconds = bucket_seconds

    # -- arrival schedule ---------------------------------------------------

    def _arrivals(self, phases: List[OverloadPhase]) -> List[_Arrival]:
        gaps = Pcg32(self.seed, stream=0x0AD1)
        classes = Pcg32(self.seed, stream=0x0AD2)
        arrivals: List[_Arrival] = []
        t = 0.0
        phase_end = 0.0
        for phase in phases:
            phase_end += phase.duration
            while True:
                t += float(gaps.expovariate(phase.rate))
                if t >= phase_end:
                    t = phase_end  # next phase's gaps start here
                    break
                draw = float(classes.uniform())
                priority = 0 if draw < phase.mix[0] else \
                    1 if draw < phase.mix[0] + phase.mix[1] else 2
                expires = float("inf") if self.deadline is None \
                    else t + self.deadline
                arrivals.append(_Arrival(t, priority, expires))
        return arrivals

    # -- the event loop -----------------------------------------------------

    def run(self, phases: List[OverloadPhase]) -> OverloadReport:
        """Simulate the phases; returns the (deterministic) report."""
        if not phases:
            raise ValueError("need at least one OverloadPhase")
        arrivals = self._arrivals(phases)
        horizon = sum(p.duration for p in phases)
        clock = VirtualClock()
        bus = HookBus()
        recorder = MetricsRecorder(clock=clock,
                                   bucket_seconds=self.bucket_seconds)
        recorder.attach(bus)
        controller = None
        if self.policy is not None:
            controller = AdmissionController(self.policy, clock=clock,
                                             hooks=bus)
        fifo: List = []            # baseline's unbounded queue
        busy = 0                   # baseline's occupied workers
        shed_by_reason: Dict[str, int] = {}
        latencies: Dict[int, List[float]] = {0: [], 1: [], 2: []}
        completed = timely = shed = 0
        buckets: Dict[int, dict] = {}
        #: (completion time, sequence, started at, arrival-like)
        running: List[tuple] = []
        seq = 0

        def bucket(at: float) -> dict:
            key = int(at / self.bucket_seconds)
            b = buckets.get(key)
            if b is None:
                b = {"bucket": key, "offered": 0, "timely": 0, "shed": 0}
                buckets[key] = b
            return b

        def note_shed(arrival: _Arrival, reason: str) -> None:
            nonlocal shed
            shed += 1
            shed_by_reason[reason] = shed_by_reason.get(reason, 0) + 1
            bucket(clock.now())["shed"] += 1

        def start_admitted() -> None:
            nonlocal seq
            if controller is not None:
                while True:
                    item = controller.try_pop()
                    if item is None:
                        break
                    seq += 1
                    heapq.heappush(running, (
                        clock.now() + self.service_time, seq,
                        clock.now(), item))
            else:
                nonlocal busy
                while busy < self.baseline_workers and fifo:
                    arrival = fifo.pop(0)
                    busy += 1
                    seq += 1
                    heapq.heappush(running, (
                        clock.now() + self.service_time, seq,
                        clock.now(), arrival))

        def complete(done_at: float, started: float, work) -> None:
            nonlocal completed, timely, busy
            if controller is not None:
                item = work
                arrival = item.work
                controller.finish(item, done_at - started)
            else:
                arrival = work
                busy -= 1
            completed += 1
            latency = done_at - arrival.at
            latencies[arrival.priority].append(latency)
            if done_at <= arrival.expires_at:
                timely += 1
                bucket(done_at)["timely"] += 1

        i = 0
        while i < len(arrivals) or running:
            next_arrival = arrivals[i].at if i < len(arrivals) \
                else float("inf")
            next_done = running[0][0] if running else float("inf")
            if next_arrival <= next_done:
                arrival = arrivals[i]
                i += 1
                clock.advance_to(arrival.at)
                bucket(arrival.at)["offered"] += 1
                if controller is not None:
                    remaining = None if self.deadline is None \
                        else arrival.expires_at - clock.now()
                    controller.submit(
                        arrival, priority=arrival.priority,
                        deadline_remaining=remaining, cost=1,
                        reject=lambda _ra, reason, a=arrival:
                            note_shed(a, reason))
                else:
                    fifo.append(arrival)
            else:
                done_at, _seq, started, work = heapq.heappop(running)
                clock.advance_to(done_at)
                complete(done_at, started, work)
            start_admitted()
        clock.advance_to(horizon)
        recorder.detach(bus)

        by_class = {}
        for priority, values in latencies.items():
            values.sort()
            by_class[CLASS_NAMES[priority]] = {
                "count": len(values),
                "p50": _nearest_rank(values, 0.50),
                "p99": _nearest_rank(values, 0.99),
            }
        return OverloadReport(
            offered=len(arrivals), completed=completed, timely=timely,
            shed=shed, shed_by_reason=shed_by_reason, duration=horizon,
            goodput=timely / horizon if horizon else 0.0,
            latency_by_class=by_class,
            buckets=[buckets[k] for k in sorted(buckets)],
            admission=None if controller is None
            else controller.snapshot(),
            metrics=recorder.snapshot())
