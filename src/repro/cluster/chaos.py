"""ChaosRun: seeded fault-plan workloads with degradation curves.

The last mile of the resilience story: drive a deterministic
:class:`~repro.cluster.workload.SyntheticWorkload` through a phased
:class:`~repro.faults.plan.FaultPlan` on a simulated cluster, aggregate
every hook-bus event through a
:class:`~repro.metrics.recorder.MetricsRecorder`, and emit a
:class:`~repro.metrics.curves.DegradationCurve` — per-bucket goodput,
error rate, latency percentiles, and retry/hedge volume — that
:func:`~repro.metrics.curves.assert_degradation` can gate on.

Determinism contract: the workload script, the plan's draws, the
phase boundaries, and virtual time are all pure functions of their
seeds, so an identically-seeded run yields a bucket-for-bucket
identical curve, an identical metrics snapshot, and an equal
:class:`~repro.cluster.workload.WorkloadResult`.  That is asserted in
``tests/cluster/test_chaos.py`` and swept in
``benchmarks/bench_chaos_sweep.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.workload import SyntheticWorkload, WorkloadResult
from repro.core.instrumentation import GLOBAL_HOOKS, HookBus
from repro.faults.plan import FaultPlan
from repro.metrics.curves import DegradationCurve
from repro.metrics.recorder import MetricsRecorder

__all__ = ["ChaosRun", "ChaosReport"]


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    result: WorkloadResult
    curve: DegradationCurve
    metrics: dict
    recorder: MetricsRecorder = field(repr=False, compare=False,
                                      default=None)

    def to_dict(self) -> dict:
        """Plain-dict view (``==``-comparable across seeded runs)."""
        return {"result": self.result.to_dict(),
                "curve": self.curve.to_dicts(),
                "metrics": self.metrics}


class ChaosRun:
    """Drive a workload through a fault plan; measure the damage.

    ``bucket_seconds`` sets the curve resolution (virtual seconds under
    simulation).  The harness:

    * installs the plan on the simulator (``sim.fault_plan``) if it is
      not already there;
    * gives the plan a **private hook bus** when it would otherwise
      publish to ``GLOBAL_HOOKS`` (the GP publishes every event to the
      global bus *too*, so recording both would double-count);
    * attaches one :class:`MetricsRecorder` to every GP's bus (lazily,
      as the workload resolves them) plus the plan's bus, and detaches
      them all afterwards;
    * fires the plan's scheduled phases (:meth:`FaultPlan.apply_until`)
      as virtual time passes, before each request;
    * records invocation failures instead of raising
      (``on_error="record"``), so the error rate is data, not a crash.

    A :class:`ChaosRun` may be re-run, but only with a rewound plan:
    fault-plan rules and PRNG draws are consumed by traffic, so
    re-running a consumed plan would *not* reproduce the first run.
    :meth:`run` refuses (``ValueError``) until ``plan.reset()``.
    """

    def __init__(self, workload: SyntheticWorkload, plan: FaultPlan, *,
                 bucket_seconds: float = 1.0,
                 recorder: Optional[MetricsRecorder] = None):
        self.workload = workload
        self.plan = plan
        self.bucket_seconds = bucket_seconds
        self._recorder = recorder

    def run(self, clients: List[dict], sim, *,
            resolve: Optional[Callable] = None,
            rebalance_every: int = 0,
            rebalance: Optional[Callable[[], list]] = None
            ) -> ChaosReport:
        """Execute the workload under the plan; return the report."""
        if self.plan.consumed:
            raise ValueError(
                "FaultPlan already consumed by a previous run; call "
                "plan.reset() to rewind it before re-running")
        if getattr(sim, "fault_plan", None) is not self.plan:
            sim.fault_plan = self.plan
        if self.plan.hooks is GLOBAL_HOOKS:
            self.plan.hooks = HookBus()
        recorder = self._recorder
        if recorder is None:
            recorder = MetricsRecorder(clock=sim.clock,
                                       bucket_seconds=self.bucket_seconds)
        attached: Dict[int, HookBus] = {}

        def watch(bus: HookBus) -> None:
            if id(bus) not in attached:
                recorder.attach(bus)
                attached[id(bus)] = bus

        watch(self.plan.hooks)
        if resolve is None:
            for table in clients:
                for gp in table.values():
                    watch(gp.hooks)
            inner_resolve = None
        else:
            def inner_resolve(ci, name):
                gp = resolve(ci, name)
                watch(gp.hooks)
                return gp

        t_start = sim.clock.now()
        self.plan.apply_until(t_start)

        def tick(i: int, req) -> None:
            self.plan.apply_until(sim.clock.now())

        try:
            result = self.workload.run(
                clients, sim, resolve=inner_resolve,
                rebalance_every=rebalance_every, rebalance=rebalance,
                before_request=tick, on_error="record")
        finally:
            for bus in attached.values():
                recorder.detach(bus)
        t_end = sim.clock.now()
        curve = DegradationCurve.from_recorder(
            recorder, t_start=t_start, t_end=t_end)
        return ChaosReport(result=result, curve=curve,
                           metrics=recorder.snapshot(), recorder=recorder)
