"""Control-plane protocol between a :class:`ProcCluster` parent and its
node worker processes.

The data plane between cluster processes is the ORB itself (real TCP,
real ``ObjectReference``\\ s).  The *control* plane — "are you up", "send
me your metrics", "drain and exit" — must not ride the same machinery it
exists to observe and kill, so it runs over a pair of inherited pipes
using the transport layer's own length-prefixed frames.

Each message is one frame whose payload is a kind-tagged XDR record,
with the same strictness discipline as the batch records in
:mod:`repro.serialization.marshal`: foreign kind, truncation, or
trailing garbage raises :class:`MarshalError` rather than being
misread.  Six kinds cover the whole protocol::

    parent -> child   ConfigRecord      boot parameters, sent once
    child  -> parent  ReadyRecord       pid + exported object URIs
    parent -> child   SnapshotRequest   poll for metrics
    child  -> parent  SnapshotRecord    MetricsRegistry snapshot + calls
    parent -> child   ShutdownRecord    drain and exit cleanly
    child  -> parent  GoodbyeRecord     final snapshot-free sign-off
"""

from __future__ import annotations

import os
import select
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import ChannelClosedError, MarshalError, TransportError
from repro.metrics.codec import decode_snapshot, encode_snapshot
from repro.serialization.xdr import XdrDecoder, XdrEncoder
from repro.transport.framing import read_frame_ex, write_frame

__all__ = ["ConfigRecord", "ReadyRecord", "SnapshotRequest",
           "SnapshotRecord", "ShutdownRecord", "GoodbyeRecord",
           "ControlChannel", "decode_record", "CONTROL_KINDS"]

# Wire discriminators, one per record kind.  Disjoint from the batch
# records (0xB0A0/0xB0A1) and the snapshot record (0x5A90) so a frame
# routed to the wrong decoder fails loudly on the first word.
_CONFIG_KIND = 0xC7C0
_READY_KIND = 0xC7C1
_SNAP_REQ_KIND = 0xC7C2
_SNAPSHOT_KIND = 0xC7C3
_SHUTDOWN_KIND = 0xC7C4
_GOODBYE_KIND = 0xC7C5

#: Every control-record kind tag, for the disjointness property test.
CONTROL_KINDS = (_CONFIG_KIND, _READY_KIND, _SNAP_REQ_KIND,
                 _SNAPSHOT_KIND, _SHUTDOWN_KIND, _GOODBYE_KIND)

#: Caps on repeated fields so a corrupted count fails fast instead of
#: driving a giant allocation loop (cf. ``MAX_BATCH_ITEMS``).
MAX_WORKERS = 4096
MAX_OPTIONS = 4096


def _decode_strict(data, kind: int, what: str, body):
    """Shared strict-decode shell: kind check, truncation wrap, and the
    trailing-bytes check every record decoder must perform."""
    dec = XdrDecoder(data)
    try:
        seen = dec.unpack_uint()
        if seen != kind:
            raise MarshalError(
                f"not a {what} record (kind 0x{seen:x}, "
                f"expected 0x{kind:x})")
        out = body(dec)
    except MarshalError:
        raise
    except Exception as exc:  # noqa: BLE001 - underflow/struct errors
        raise MarshalError(f"truncated {what} record: {exc}") from exc
    if not dec.done():
        raise MarshalError(f"{what} record has trailing bytes")
    return out


def _pack_str_map(enc: XdrEncoder, mapping: Dict[str, str],
                  what: str) -> None:
    if len(mapping) > MAX_OPTIONS:
        raise MarshalError(f"{what} has {len(mapping)} entries "
                           f"(cap {MAX_OPTIONS})")
    enc.pack_uint(len(mapping))
    for key in sorted(mapping):
        enc.pack_string(key)
        enc.pack_string(mapping[key])


def _unpack_str_map(dec: XdrDecoder, what: str) -> Dict[str, str]:
    count = dec.unpack_uint()
    if count > MAX_OPTIONS:
        raise MarshalError(f"{what} claims {count} entries "
                           f"(cap {MAX_OPTIONS})")
    return {dec.unpack_string(): dec.unpack_string()
            for _ in range(count)}


@dataclass(frozen=True)
class ConfigRecord:
    """Parent → child boot parameters (sent exactly once).

    ``workers`` are the object ids the node must export; every node in a
    replica group exports the *same* ids so client-side failover can
    treat their protocol entries as interchangeable.  ``options`` is a
    flat string map for servant tuning (admission policy, delays, ...).
    """

    node: str
    context_id: str
    workers: Tuple[str, ...]
    options: Dict[str, str] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        if len(self.workers) > MAX_WORKERS:
            raise MarshalError(f"ConfigRecord has {len(self.workers)} "
                               f"workers (cap {MAX_WORKERS})")
        enc = XdrEncoder()
        enc.pack_uint(_CONFIG_KIND)
        enc.pack_string(self.node)
        enc.pack_string(self.context_id)
        enc.pack_uint(len(self.workers))
        for wid in self.workers:
            enc.pack_string(wid)
        _pack_str_map(enc, self.options, "ConfigRecord options")
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data) -> "ConfigRecord":
        def body(dec):
            node = dec.unpack_string()
            context_id = dec.unpack_string()
            count = dec.unpack_uint()
            if count > MAX_WORKERS:
                raise MarshalError(f"ConfigRecord claims {count} workers "
                                   f"(cap {MAX_WORKERS})")
            workers = tuple(dec.unpack_string() for _ in range(count))
            options = _unpack_str_map(dec, "ConfigRecord options")
            return cls(node=node, context_id=context_id, workers=workers,
                       options=options)
        return _decode_strict(data, _CONFIG_KIND, "ConfigRecord", body)


@dataclass(frozen=True)
class ReadyRecord:
    """Child → parent readiness: the endpoint is accepting connections.

    ``orefs`` maps each exported object id to its ``hpcor:`` URI with
    the protocol table already stripped to TCP-only addresses — in-proc
    addresses are meaningless across an ``exec`` boundary and must never
    leave the worker.
    """

    node: str
    pid: int
    orefs: Dict[str, str]

    def to_bytes(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(_READY_KIND)
        enc.pack_string(self.node)
        enc.pack_uhyper(self.pid)
        _pack_str_map(enc, self.orefs, "ReadyRecord orefs")
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data) -> "ReadyRecord":
        def body(dec):
            node = dec.unpack_string()
            pid = dec.unpack_uhyper()
            orefs = _unpack_str_map(dec, "ReadyRecord orefs")
            return cls(node=node, pid=pid, orefs=orefs)
        return _decode_strict(data, _READY_KIND, "ReadyRecord", body)


@dataclass(frozen=True)
class SnapshotRequest:
    """Parent → child: reply with a :class:`SnapshotRecord` now."""

    def to_bytes(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(_SNAP_REQ_KIND)
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data) -> "SnapshotRequest":
        return _decode_strict(data, _SNAP_REQ_KIND, "SnapshotRequest",
                              lambda dec: cls())


@dataclass(frozen=True)
class SnapshotRecord:
    """Child → parent observability payload.

    ``metrics`` is a full ``MetricsRegistry`` snapshot, carried as an
    opaque :func:`~repro.metrics.codec.encode_snapshot` record so the
    snapshot codec's own strictness applies unchanged.  ``servant_calls``
    maps object id → calls served, straight from the servants.
    """

    node: str
    captured_at: float
    metrics: dict
    servant_calls: Dict[str, int] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(_SNAPSHOT_KIND)
        enc.pack_string(self.node)
        enc.pack_double(self.captured_at)
        enc.pack_opaque(encode_snapshot(self.metrics))
        if len(self.servant_calls) > MAX_WORKERS:
            raise MarshalError(f"SnapshotRecord has "
                               f"{len(self.servant_calls)} servant entries "
                               f"(cap {MAX_WORKERS})")
        enc.pack_uint(len(self.servant_calls))
        for key in sorted(self.servant_calls):
            enc.pack_string(key)
            enc.pack_uhyper(self.servant_calls[key])
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data) -> "SnapshotRecord":
        def body(dec):
            node = dec.unpack_string()
            captured_at = dec.unpack_double()
            metrics = decode_snapshot(bytes(dec.unpack_opaque()))
            count = dec.unpack_uint()
            if count > MAX_WORKERS:
                raise MarshalError(f"SnapshotRecord claims {count} servant "
                                   f"entries (cap {MAX_WORKERS})")
            servant_calls = {dec.unpack_string(): dec.unpack_uhyper()
                             for _ in range(count)}
            return cls(node=node, captured_at=captured_at, metrics=metrics,
                       servant_calls=servant_calls)
        return _decode_strict(data, _SNAPSHOT_KIND, "SnapshotRecord", body)


@dataclass(frozen=True)
class ShutdownRecord:
    """Parent → child: drain in-flight work, stop serving, exit 0."""

    reason: str = "shutdown"

    def to_bytes(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(_SHUTDOWN_KIND)
        enc.pack_string(self.reason)
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data) -> "ShutdownRecord":
        return _decode_strict(
            data, _SHUTDOWN_KIND, "ShutdownRecord",
            lambda dec: cls(reason=dec.unpack_string()))


@dataclass(frozen=True)
class GoodbyeRecord:
    """Child → parent sign-off: the node drained and is about to exit."""

    node: str
    clean: bool = True

    def to_bytes(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(_GOODBYE_KIND)
        enc.pack_string(self.node)
        enc.pack_bool(self.clean)
        return enc.getvalue()

    @classmethod
    def from_bytes(cls, data) -> "GoodbyeRecord":
        def body(dec):
            return cls(node=dec.unpack_string(), clean=dec.unpack_bool())
        return _decode_strict(data, _GOODBYE_KIND, "GoodbyeRecord", body)


_DECODERS = {
    _CONFIG_KIND: ConfigRecord.from_bytes,
    _READY_KIND: ReadyRecord.from_bytes,
    _SNAP_REQ_KIND: SnapshotRequest.from_bytes,
    _SNAPSHOT_KIND: SnapshotRecord.from_bytes,
    _SHUTDOWN_KIND: ShutdownRecord.from_bytes,
    _GOODBYE_KIND: GoodbyeRecord.from_bytes,
}


def decode_record(data):
    """Decode any control record by its leading kind tag."""
    try:
        kind = XdrDecoder(data).unpack_uint()
    except Exception as exc:  # noqa: BLE001 - empty/short buffer
        raise MarshalError(f"truncated control record: {exc}") from exc
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise MarshalError(f"unknown control record kind 0x{kind:x}")
    return decoder(data)


class ControlChannel:
    """Framed control records over a pipe fd pair.

    Both ends hold one read fd and one write fd (two ``os.pipe()`` pairs,
    the child's ends inherited via ``pass_fds``).  Messages use the
    transport layer's checksummed frames, so a desynchronized or
    corrupted pipe fails loudly instead of silently misparsing.

    ``recv`` takes an optional timeout enforced with ``select`` on every
    chunk; because control messages are single small frames written
    atomically (well under ``PIPE_BUF``), a timeout always strikes at a
    frame boundary and the channel stays usable.
    """

    def __init__(self, read_fd: int, write_fd: int):
        self._read_fd = read_fd
        self._write_fd = write_fd
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    # -- sending -------------------------------------------------------

    def send(self, record) -> None:
        if self._closed:
            raise ChannelClosedError("send on closed control channel")
        payload = record.to_bytes()
        with self._send_lock:
            try:
                write_frame(self._write, payload)
            except OSError as exc:
                # EPIPE: the peer died.  Dead peers are this harness's
                # subject matter, not an internal error.
                raise ChannelClosedError(
                    f"control peer gone: {exc}") from exc

    def _write(self, data) -> None:
        view = memoryview(data)
        while view:
            n = os.write(self._write_fd, view)
            view = view[n:]

    # -- receiving -----------------------------------------------------

    def recv(self, timeout: Optional[float] = None):
        """Read and decode one control record.

        Raises :class:`TransportError` on timeout,
        :class:`ChannelClosedError` when the peer's write end is gone.
        """
        if self._closed:
            raise ChannelClosedError("recv on closed control channel")
        with self._recv_lock:
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            payload = read_frame_ex(self._make_read_exact(deadline))[1]
        return decode_record(payload)

    def _make_read_exact(self, deadline):
        def read_exact(n: int) -> bytes:
            parts = []
            remaining = n
            while remaining:
                if deadline is not None:
                    budget = deadline - time.monotonic()
                    if budget <= 0:
                        raise TransportError("control recv timed out")
                    ready, _, _ = select.select([self._read_fd], [], [],
                                                budget)
                    if not ready:
                        raise TransportError("control recv timed out")
                try:
                    chunk = os.read(self._read_fd, remaining)
                except OSError as exc:
                    raise ChannelClosedError(
                        f"control read failed: {exc}") from exc
                if not chunk:
                    raise ChannelClosedError("control peer closed")
                parts.append(chunk)
                remaining -= len(chunk)
            return b"".join(parts)
        return read_exact

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for fd in (self._read_fd, self._write_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass

    @property
    def closed(self) -> bool:
        return self._closed
