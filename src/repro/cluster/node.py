"""Cluster construction helpers, and the real-process node worker.

A :class:`ClusterNode` pairs a simulated machine with a serving context
and a bag of exported worker objects; :func:`build_cluster` stamps out a
node per machine.  The worker servant (:class:`WorkUnit`) does real
byte-level work — it echoes payloads through the full marshalling path —
so cluster experiments exercise the invocation machinery, not stubs.

Run as a module (``python -m repro.cluster.node --control-in FD
--control-out FD``) this file is the **worker entrypoint** of the
real-process harness (:mod:`repro.cluster.procs`): it reads a
:class:`~repro.cluster.control.ConfigRecord` off an inherited pipe,
stands up a wall-clock ORB serving :class:`WorkUnit` servants over
kernel TCP, reports readiness, and then serves control-plane requests
(metrics snapshots, drain-and-exit) until told — or signalled — to
stop.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.context import Context
from repro.core.objref import ObjectReference
from repro.core.orb import ORB
from repro.idl.interface import remote_interface, remote_method

__all__ = ["WorkUnit", "ClusterNode", "build_cluster", "bind_workers",
           "strip_to_tcp", "main"]


@remote_interface("WorkUnit")
class WorkUnit:
    """A migratable worker: echoes payloads and tracks call counts."""

    def __init__(self, name: str = "work"):
        self.name = name
        self.calls = 0

    @remote_method(retry_safe=True)
    def process(self, payload):
        """Echo ``payload`` back (the classic bandwidth servant).

        Marked ``retry_safe``: the echo is idempotent, so the resilience
        layer may retry and hedge it — which is what chaos runs measure.
        """
        self.calls += 1
        return payload

    @remote_method
    def status(self) -> dict:
        return {"name": self.name, "calls": self.calls}

    # migration state protocol
    def hpc_get_state(self):
        return {"name": self.name, "calls": self.calls}

    def hpc_set_state(self, state):
        self.name = state["name"]
        self.calls = state["calls"]


@dataclass
class ClusterNode:
    """One machine's worth of cluster: context + its exported objects."""

    machine_name: str
    context: Context
    objects: Dict[str, ObjectReference] = field(default_factory=dict)

    def export_worker(self, name: str, **export_kwargs) -> ObjectReference:
        oref = self.context.export(WorkUnit(name), **export_kwargs)
        self.objects[name] = oref
        return oref


def bind_workers(client_ctx: Context, nodes: List["ClusterNode"],
                 **bind_kwargs) -> Dict[str, object]:
    """One ``{object name: GlobalPointer}`` table over every worker in
    ``nodes`` — the client side a workload or chaos run drives.
    ``bind_kwargs`` (retry_policy, hedge_policy, ...) apply to every
    binding."""
    table = {}
    for node in nodes:
        for name, oref in node.objects.items():
            table[name] = client_ctx.bind(oref, **bind_kwargs)
    return table


def build_cluster(orb: ORB, machine_names: List[str],
                  workers_per_node: int = 0) -> List[ClusterNode]:
    """One context per machine; optionally pre-export workers.

    Worker object names are ``w<machine>-<i>``.
    """
    if orb.sim is None:
        raise ValueError("build_cluster needs a simulated ORB")
    nodes = []
    for mname in machine_names:
        ctx = orb.context(f"node-{mname}", machine=mname)
        node = ClusterNode(machine_name=mname, context=ctx)
        for i in range(workers_per_node):
            node.export_worker(f"w{mname}-{i}")
        nodes.append(node)
    return nodes


# ---------------------------------------------------------------------------
# Real-process worker entrypoint (python -m repro.cluster.node)
# ---------------------------------------------------------------------------


def strip_to_tcp(oref: ObjectReference) -> ObjectReference:
    """Clone ``oref`` keeping only TCP addresses (and only entries that
    still have one).

    In-proc and shared-memory addresses index registries of the
    *exporting* process; across an ``exec`` boundary they dangle — or
    worse, collide with the importing process's own registries and
    silently route to the wrong object.  A worker must never let them
    escape.
    """
    clone = oref.clone()
    entries = []
    for entry in clone.protocols:
        addrs = [a for a in entry.proto_data.get("addresses", [])
                 if a.get("transport") == "tcp"]
        if addrs:
            entry.proto_data["addresses"] = addrs
            entries.append(entry)
    if not entries:
        raise ValueError(f"object {oref.object_id!r} has no TCP address "
                         "to publish")
    clone.protocols = entries
    return clone


class _DrainRequested(Exception):
    """Raised out of a SIGTERM handler to unwind into the drain path.

    Python runs signal handlers on the main thread between bytecodes;
    raising here interrupts even a blocked ``os.read``/``select`` (the
    syscall returns EINTR and the exception propagates, PEP 475), which
    turns SIGTERM into an orderly drain-then-exit instead of an abrupt
    interpreter death mid-reply.
    """


def main(argv=None) -> int:
    """Worker process body; returns the exit status.

    Protocol (see :mod:`repro.cluster.control`): recv ``ConfigRecord``,
    serve, send ``ReadyRecord``, answer ``SnapshotRequest``s until a
    ``ShutdownRecord``, SIGTERM, or parent death, then drain in-flight
    requests, send ``GoodbyeRecord``, exit 0.
    """
    import argparse

    from repro.cluster.control import (ControlChannel, GoodbyeRecord,
                                       ReadyRecord, ShutdownRecord,
                                       SnapshotRecord, SnapshotRequest)
    from repro.core.context import Placement
    from repro.core.instrumentation import GLOBAL_HOOKS
    from repro.exceptions import HpcError
    from repro.metrics.recorder import MetricsRecorder

    parser = argparse.ArgumentParser(prog="repro.cluster.node")
    parser.add_argument("--control-in", type=int, required=True,
                        help="inherited fd: parent -> this process")
    parser.add_argument("--control-out", type=int, required=True,
                        help="inherited fd: this process -> parent")
    args = parser.parse_args(argv)
    channel = ControlChannel(args.control_in, args.control_out)

    config = channel.recv(timeout=30.0)
    bucket_seconds = float(config.options.get("bucket_seconds", "1.0"))

    orb = ORB()
    ctx = orb.context(
        config.context_id, enable_tcp=True,
        placement=Placement(config.node, "proc-lan", "proc-site"))
    recorder = MetricsRecorder(bucket_seconds=bucket_seconds)
    # Server side of the hook contract: admission and endpoint events
    # publish on the global bus (there are no GPs here to double-count).
    recorder.attach(GLOBAL_HOOKS)

    servants: Dict[str, WorkUnit] = {}
    orefs: Dict[str, str] = {}
    for object_id in config.workers:
        servant = WorkUnit(object_id)
        # Same object ids on every replica node: server dispatch is by
        # object id, so any node in the group can answer for the OR.
        oref = ctx.export(servant, object_id=object_id, include_shm=False)
        servants[object_id] = servant
        orefs[object_id] = strip_to_tcp(oref).to_uri()

    # Optional directory replica (options={"directory": "1"}): each node
    # hosts one replica of the replicated name directory.  Unlike the
    # workers above, the export is per-node, NOT a replica group — the
    # object id carries the node name so clients address each replica
    # individually.  Peers arrive later via the remote ``join`` call
    # (over the ordinary data plane, not the control pipe), which also
    # starts the tick thread.
    directory = None
    if config.options.get("directory"):
        from repro.directory import DIRECTORY_OBJECT_ID, DirectoryReplica

        directory = DirectoryReplica(
            ctx, config.node,
            seed=int(config.options.get("dir_seed", "0")),
            stream=int(config.options.get("dir_stream", "0")),
            lease_seconds=float(config.options.get("dir_lease", "1.2")),
            heartbeat_seconds=float(
                config.options.get("dir_heartbeat", "0.3")),
            election_timeout=(
                float(config.options.get("dir_election_lo", "0.6")),
                float(config.options.get("dir_election_hi", "1.2"))))
        dir_oref = ctx.export(
            directory, object_id=DIRECTORY_OBJECT_ID,
            include_shm=False, migratable=False)
        orefs[DIRECTORY_OBJECT_ID] = strip_to_tcp(dir_oref).to_uri()

    endpoint = ctx.server.endpoint
    if not endpoint.wait_ready(timeout=10.0):
        raise RuntimeError("endpoint accept loop failed to start")

    draining = False

    def on_sigterm(signum, frame):
        # Only flag-flipping (signal-safe) work here; the raise unwinds
        # the control loop into the drain path below.
        endpoint.request_stop()
        if not draining:
            raise _DrainRequested()

    signal.signal(signal.SIGTERM, on_sigterm)
    channel.send(ReadyRecord(node=config.node, pid=os.getpid(),
                             orefs=orefs))

    def snapshot_record() -> SnapshotRecord:
        return SnapshotRecord(
            node=config.node, captured_at=time.time(),
            metrics=recorder.snapshot(),
            servant_calls={oid: s.calls for oid, s in servants.items()})

    clean = True
    try:
        while True:
            try:
                record = channel.recv(timeout=None)
            except HpcError:
                # Parent's write end gone: the parent died or dropped
                # us.  Orphaned workers must exit, not linger.
                clean = False
                break
            if isinstance(record, SnapshotRequest):
                channel.send(snapshot_record())
            elif isinstance(record, ShutdownRecord):
                break
            # Foreign record kinds: ignore (forward-compatible).
    except _DrainRequested:
        pass
    draining = True
    signal.signal(signal.SIGTERM, signal.SIG_IGN)

    # Drain: Endpoint.stop (via context/orb shutdown) lets in-flight
    # requests reply before channels close — SIGTERM'd replicas finish
    # the requests they accepted.
    recorder.detach()
    if directory is not None:
        directory.stop()
    orb.shutdown()
    try:
        channel.send(GoodbyeRecord(node=config.node, clean=clean))
    except HpcError:
        pass  # parent already gone
    channel.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
