"""Cluster construction helpers.

A :class:`ClusterNode` pairs a simulated machine with a serving context
and a bag of exported worker objects; :func:`build_cluster` stamps out a
node per machine.  The worker servant (:class:`WorkUnit`) does real
byte-level work — it echoes payloads through the full marshalling path —
so cluster experiments exercise the invocation machinery, not stubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.context import Context
from repro.core.objref import ObjectReference
from repro.core.orb import ORB
from repro.idl.interface import remote_interface, remote_method

__all__ = ["WorkUnit", "ClusterNode", "build_cluster", "bind_workers"]


@remote_interface("WorkUnit")
class WorkUnit:
    """A migratable worker: echoes payloads and tracks call counts."""

    def __init__(self, name: str = "work"):
        self.name = name
        self.calls = 0

    @remote_method(retry_safe=True)
    def process(self, payload):
        """Echo ``payload`` back (the classic bandwidth servant).

        Marked ``retry_safe``: the echo is idempotent, so the resilience
        layer may retry and hedge it — which is what chaos runs measure.
        """
        self.calls += 1
        return payload

    @remote_method
    def status(self) -> dict:
        return {"name": self.name, "calls": self.calls}

    # migration state protocol
    def hpc_get_state(self):
        return {"name": self.name, "calls": self.calls}

    def hpc_set_state(self, state):
        self.name = state["name"]
        self.calls = state["calls"]


@dataclass
class ClusterNode:
    """One machine's worth of cluster: context + its exported objects."""

    machine_name: str
    context: Context
    objects: Dict[str, ObjectReference] = field(default_factory=dict)

    def export_worker(self, name: str, **export_kwargs) -> ObjectReference:
        oref = self.context.export(WorkUnit(name), **export_kwargs)
        self.objects[name] = oref
        return oref


def bind_workers(client_ctx: Context, nodes: List["ClusterNode"],
                 **bind_kwargs) -> Dict[str, object]:
    """One ``{object name: GlobalPointer}`` table over every worker in
    ``nodes`` — the client side a workload or chaos run drives.
    ``bind_kwargs`` (retry_policy, hedge_policy, ...) apply to every
    binding."""
    table = {}
    for node in nodes:
        for name, oref in node.objects.items():
            table[name] = client_ctx.bind(oref, **bind_kwargs)
    return table


def build_cluster(orb: ORB, machine_names: List[str],
                  workers_per_node: int = 0) -> List[ClusterNode]:
    """One context per machine; optionally pre-export workers.

    Worker object names are ``w<machine>-<i>``.
    """
    if orb.sim is None:
        raise ValueError("build_cluster needs a simulated ORB")
    nodes = []
    for mname in machine_names:
        ctx = orb.context(f"node-{mname}", machine=mname)
        node = ClusterNode(machine_name=mname, context=ctx)
        for i in range(workers_per_node):
            node.export_worker(f"w{mname}-{i}")
        nodes.append(node)
    return nodes
