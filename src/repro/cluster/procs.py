"""Real-process cluster harness: spawn, crash, and measure live nodes.

Everything else in the cluster package runs inside one Python process —
simnet time, in-proc transports, thread "nodes".  This module is the
other half of the validation story: each node is a **real OS process**
(:mod:`repro.cluster.node` run as a module) serving
:class:`~repro.cluster.node.WorkUnit` servants over kernel TCP, and the
fault actions are the real thing too — ``SIGKILL`` is a crash,
``SIGSTOP`` is a gray failure, ``SIGTERM`` is a rolling restart.

Layers:

* :class:`NodeSpec` / :class:`ProcNode` — one worker process: spawn it,
  handshake over the pipe control channel
  (:mod:`repro.cluster.control`), poll its metrics, signal it, reap it.
* :class:`ProcCluster` — a context manager booting N nodes, wiring a
  client context to them through *merged* ``ObjectReference``\\ s (one
  protocol entry per replica node, so the GP's demotion/hedging
  machinery fails over across processes exactly as it does across
  simulated links), and exposing ``kill``/``pause``/``resume``/
  ``restart`` by node name.  ``__exit__`` reaps every child — escalating
  clean shutdown → SIGTERM → SIGKILL — and never leaves orphans.
* :class:`ProcRun` / :class:`ProcReport` — a wall-clock closed-loop
  workload with scheduled fault phases (the :class:`ChaosRun` shape),
  producing a :class:`~repro.metrics.curves.DegradationCurve` that the
  same :func:`~repro.metrics.curves.assert_degradation` envelopes used
  by simnet chaos apply to, plus the per-node registry snapshots
  shipped back over the control channel.

Process-lifecycle observability rides the cluster's hook bus —
``proc_spawn`` / ``proc_exit`` / ``proc_pause`` events (docs/EVENTS.md)
— so the recorder's counters cover process churn alongside request
traffic.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.control import (
    ConfigRecord,
    ControlChannel,
    GoodbyeRecord,
    ReadyRecord,
    ShutdownRecord,
    SnapshotRecord,
    SnapshotRequest,
)
from repro.core.context import Placement
from repro.core.instrumentation import HookBus
from repro.core.objref import ObjectReference
from repro.core.orb import ORB
from repro.exceptions import HpcError
from repro.metrics.curves import DegradationCurve
from repro.metrics.recorder import MetricsRecorder

__all__ = ["NodeSpec", "ProcNode", "ProcCluster", "ProcRun", "ProcReport",
           "merge_orefs"]


@dataclass(frozen=True)
class NodeSpec:
    """Recipe for one worker process.

    ``workers`` are the object ids the node exports.  Nodes sharing an
    object id form a replica group for it: the cluster merges their
    protocol entries into one OR, in node order, so the first node
    listed is the primary and the rest are failover/hedge targets.
    """

    name: str
    workers: Tuple[str, ...] = ("w0",)
    options: Dict[str, str] = field(default_factory=dict)


def merge_orefs(orefs: List[ObjectReference]) -> ObjectReference:
    """One OR whose protocol table concatenates every replica's entries
    (first OR's identity wins).  The GP treats the table as a preference
    list, so per-call demotion and hedging walk the replicas naturally.
    """
    if not orefs:
        raise ValueError("merge_orefs needs at least one OR")
    merged = orefs[0].clone()
    for other in orefs[1:]:
        if other.object_id != merged.object_id:
            raise ValueError(
                f"cannot merge ORs for different objects "
                f"({other.object_id!r} vs {merged.object_id!r})")
        merged.protocols.extend(e.clone() for e in other.protocols)
    return merged


def _repro_env() -> dict:
    """Child environment with the repro package importable, regardless
    of how the parent found it (installed, PYTHONPATH, src layout)."""
    import repro

    pkg_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = pkg_root if not existing else \
        pkg_root + os.pathsep + existing
    return env


class ProcNode:
    """One spawned worker process plus its control channel."""

    def __init__(self, spec: NodeSpec, *, context_id: Optional[str] = None,
                 hooks: Optional[HookBus] = None):
        self.spec = spec
        self.name = spec.name
        self.context_id = context_id or f"node-{spec.name}"
        self.hooks = hooks or HookBus()
        self.proc: Optional[subprocess.Popen] = None
        self.channel: Optional[ControlChannel] = None
        self.pid: Optional[int] = None
        #: object id -> TCP-only ObjectReference (set by :meth:`spawn`).
        self.orefs: Dict[str, ObjectReference] = {}
        self.paused = False
        self.returncode: Optional[int] = None

    # -- lifecycle -----------------------------------------------------

    def spawn(self, ready_timeout: float = 20.0) -> "ProcNode":
        """Fork+exec the worker; block until its ``ReadyRecord``."""
        if self.proc is not None:
            raise RuntimeError(f"node {self.name!r} already spawned")
        # Two pipes: (parent -> child) and (child -> parent).  The child
        # ends ride pass_fds; stdout/stderr stay untouched for logs.
        child_r, parent_w = os.pipe()
        parent_r, child_w = os.pipe()
        os.set_inheritable(child_r, True)
        os.set_inheritable(child_w, True)
        try:
            # -c instead of -m: runpy would re-execute node.py on top of
            # the already-imported repro.cluster.node module (the parent
            # package imports it) and warn about the shadow.
            self.proc = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys; from repro.cluster.node import main; "
                 "sys.exit(main())",
                 "--control-in", str(child_r),
                 "--control-out", str(child_w)],
                pass_fds=(child_r, child_w), env=_repro_env())
        finally:
            os.close(child_r)
            os.close(child_w)
        self.channel = ControlChannel(parent_r, parent_w)
        self.channel.send(ConfigRecord(
            node=self.name, context_id=self.context_id,
            workers=tuple(self.spec.workers),
            options=dict(self.spec.options)))
        try:
            ready = self.channel.recv(timeout=ready_timeout)
        except HpcError as exc:
            self._abort()
            raise RuntimeError(
                f"node {self.name!r} failed to become ready: "
                f"{exc}") from exc
        if not isinstance(ready, ReadyRecord):
            self._abort()
            raise RuntimeError(
                f"node {self.name!r} sent {type(ready).__name__} "
                "instead of ReadyRecord")
        self.pid = ready.pid
        self.orefs = {oid: ObjectReference.from_uri(uri)
                      for oid, uri in ready.orefs.items()}
        self.hooks.emit("proc_spawn", node=self.name, pid=self.pid,
                        workers=sorted(self.orefs))
        return self

    def _abort(self) -> None:
        """Tear down a half-spawned node (failed handshake)."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10.0)
        self._note_exit(how="abort")

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def _note_exit(self, how: str) -> None:
        if self.returncode is not None:
            return  # already accounted
        if self.proc is not None:
            self.returncode = self.proc.returncode
        if self.channel is not None:
            self.channel.close()
        self.hooks.emit("proc_exit", node=self.name, pid=self.pid,
                        returncode=self.returncode, how=how)

    # -- control plane -------------------------------------------------

    def snapshot(self, timeout: float = 10.0) -> SnapshotRecord:
        """Fetch the node's current metrics snapshot."""
        if not self.alive or self.channel is None:
            raise RuntimeError(f"node {self.name!r} is not running")
        self.channel.send(SnapshotRequest())
        record = self.channel.recv(timeout=timeout)
        if not isinstance(record, SnapshotRecord):
            raise RuntimeError(
                f"node {self.name!r} answered snapshot request with "
                f"{type(record).__name__}")
        return record

    # -- fault actions -------------------------------------------------

    def kill(self) -> None:
        """``kill -9``: the crash nothing in the worker gets to handle."""
        if not self.alive:
            return
        self.proc.kill()
        self.proc.wait(timeout=10.0)
        self._note_exit(how="sigkill")

    def pause(self) -> None:
        """SIGSTOP: the process freezes but its listener's kernel
        backlog still accepts connections — the classic gray failure."""
        if not self.alive or self.paused:
            return
        os.kill(self.proc.pid, signal.SIGSTOP)
        self.paused = True
        self.hooks.emit("proc_pause", node=self.name, pid=self.pid,
                        action="pause")

    def resume(self) -> None:
        """SIGCONT a paused node."""
        if not self.paused or self.proc is None:
            return
        if self.proc.poll() is None:
            os.kill(self.proc.pid, signal.SIGCONT)
        self.paused = False
        self.hooks.emit("proc_pause", node=self.name, pid=self.pid,
                        action="resume")

    def terminate(self, grace: float = 10.0) -> None:
        """SIGTERM: the worker drains in-flight requests and exits 0."""
        if not self.alive:
            return
        self.resume()  # a stopped process cannot run its signal handler
        self.proc.terminate()
        try:
            self.proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10.0)
        self._note_exit(how="sigterm")

    def shutdown(self, grace: float = 10.0) -> None:
        """Clean control-plane shutdown, escalating to signals.

        ``ShutdownRecord`` → wait for ``GoodbyeRecord``+exit → SIGTERM →
        SIGKILL.  Always leaves the child reaped.
        """
        if not self.alive:
            self._note_exit(how="shutdown")
            return
        self.resume()
        try:
            self.channel.send(ShutdownRecord("cluster exit"))
            deadline = time.monotonic() + grace
            while time.monotonic() < deadline:
                record = self.channel.recv(
                    timeout=max(deadline - time.monotonic(), 0.01))
                if isinstance(record, GoodbyeRecord):
                    break
        except HpcError:
            pass  # channel died — fall through to signal escalation
        try:
            self.proc.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            self.terminate(grace)
            return
        self._note_exit(how="shutdown")


class ProcCluster:
    """Boot N worker processes; wire clients; inject process faults.

    >>> with ProcCluster(nodes=3) as cluster:      # doctest: +SKIP
    ...     gp = cluster.bind("w0")
    ...     gp.invoke("process", b"payload")
    ...     cluster.kill("n1")                     # crash a replica
    ...     gp.invoke("process", b"payload")       # fails over

    Every node exports the same worker object ids (``workers``), so each
    id's merged OR has one ``nexus`` entry per node and the GP machinery
    — per-call demotion, circuit breakers, hedging — handles node death
    transparently.  ``restart`` respawns a node and pushes the fresh OR
    into every bound GP via ``update_reference`` (the reschedule).
    """

    def __init__(self, specs: Optional[List[NodeSpec]] = None, *,
                 nodes: int = 3, workers: Tuple[str, ...] = ("w0",),
                 options: Optional[Dict[str, str]] = None,
                 ready_timeout: float = 20.0,
                 call_timeout: Optional[float] = 2.0,
                 hooks: Optional[HookBus] = None):
        if specs is None:
            specs = [NodeSpec(f"n{i}", tuple(workers),
                              dict(options or {})) for i in range(nodes)]
        if not specs:
            raise ValueError("ProcCluster needs at least one NodeSpec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        self.specs = list(specs)
        self.ready_timeout = ready_timeout
        self.call_timeout = call_timeout
        #: Cluster-lifecycle event bus (proc_spawn/proc_exit/proc_pause).
        #: Private by default so recorders can attach without
        #: double-counting the GPs' GLOBAL_HOOKS traffic.
        self.hooks = hooks or HookBus()
        self.nodes: Dict[str, ProcNode] = {}
        self._order: List[str] = names
        self.orb: Optional[ORB] = None
        self.client_ctx = None
        self._bound: Dict[str, List] = {}
        self._entered = False

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ProcCluster":
        self._entered = True
        try:
            for spec in self.specs:
                node = ProcNode(spec, hooks=self.hooks)
                node.spawn(ready_timeout=self.ready_timeout)
                self.nodes[spec.name] = node
            self.orb = ORB()
            self.client_ctx = self.orb.context(
                "proc-client", enable_tcp=True,
                placement=Placement("client-host", "client-lan",
                                    "client-site"))
            if self.call_timeout is not None:
                self.client_ctx.call_timeout = self.call_timeout
        except BaseException:
            self.__exit__(*sys.exc_info())
            raise
        return self

    def __exit__(self, *exc) -> None:
        try:
            for gps in self._bound.values():
                for gp in gps:
                    try:
                        gp.close(wait=False)
                    except Exception:  # noqa: BLE001 - best-effort
                        pass
            if self.orb is not None:
                self.orb.shutdown()
        finally:
            for name in self._order:
                node = self.nodes.get(name)
                if node is not None:
                    node.shutdown()
            self._entered = False

    @property
    def orphans(self) -> List[str]:
        """Names of child processes not yet reaped (must be empty after
        ``__exit__`` — the no-orphans acceptance criterion)."""
        return [name for name, node in self.nodes.items()
                if node.proc is not None and node.proc.poll() is None]

    def exit_codes(self) -> Dict[str, Optional[int]]:
        return {name: node.returncode
                for name, node in self.nodes.items()}

    # -- client wiring -------------------------------------------------

    def object_ids(self) -> List[str]:
        seen: List[str] = []
        for name in self._order:
            for oid in self.nodes[name].orefs:
                if oid not in seen:
                    seen.append(oid)
        return seen

    def merged_oref(self, object_id: str,
                    prefer: Optional[str] = None) -> ObjectReference:
        """The replica-merged OR for ``object_id`` over live nodes.

        ``prefer`` puts that node's entries first (its traffic primary).
        """
        order = list(self._order)
        if prefer is not None:
            if prefer not in self.nodes:
                raise KeyError(f"unknown node {prefer!r}")
            order.remove(prefer)
            order.insert(0, prefer)
        orefs = [self.nodes[name].orefs[object_id]
                 for name in order
                 if self.nodes[name].alive
                 and object_id in self.nodes[name].orefs]
        if not orefs:
            raise RuntimeError(
                f"no live node exports {object_id!r}")
        return merge_orefs(orefs)

    def bind(self, object_id: str, *, prefer: Optional[str] = None,
             **bind_kwargs):
        """A client GP for ``object_id`` spanning every replica node.

        ``bind_kwargs`` (retry_policy, hedge_policy, ...) pass through
        to :meth:`Context.bind`.  The GP is tracked: a later
        :meth:`restart` refreshes its OR automatically.
        """
        if self.client_ctx is None:
            raise RuntimeError("ProcCluster is not entered")
        gp = self.client_ctx.bind(self.merged_oref(object_id,
                                                   prefer=prefer),
                                  **bind_kwargs)
        self._bound.setdefault(object_id, []).append(gp)
        return gp

    def _rewire(self, object_ids) -> None:
        for object_id in object_ids:
            for gp in self._bound.get(object_id, []):
                try:
                    gp.update_reference(self.merged_oref(object_id))
                except RuntimeError:
                    pass  # no live exporter right now; GP keeps old OR

    # -- fault actions by node name ------------------------------------

    def node(self, name: str) -> ProcNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r} "
                           f"(have {self._order})") from None

    def kill(self, name: str) -> None:
        self.node(name).kill()

    def pause(self, name: str) -> None:
        self.node(name).pause()

    def resume(self, name: str) -> None:
        self.node(name).resume()

    def restart(self, name: str, *, grace: float = 10.0) -> ProcNode:
        """Rolling restart: SIGTERM-drain ``name``, respawn it, and
        reschedule every bound GP onto the fresh endpoints."""
        old = self.node(name)
        old.terminate(grace=grace)
        fresh = ProcNode(old.spec, context_id=old.context_id,
                         hooks=self.hooks)
        fresh.spawn(ready_timeout=self.ready_timeout)
        self.nodes[name] = fresh
        self._rewire(fresh.orefs.keys())
        return fresh

    # -- observability -------------------------------------------------

    def snapshots(self, timeout: float = 10.0) -> Dict[str, SnapshotRecord]:
        """Metrics snapshots from every live, unpaused node."""
        out = {}
        for name in self._order:
            node = self.nodes[name]
            if node.alive and not node.paused:
                try:
                    out[name] = node.snapshot(timeout=timeout)
                except (HpcError, RuntimeError):
                    continue  # died under us: its loss is the data
        return out


# ---------------------------------------------------------------------------
# Workloads with scheduled process faults
# ---------------------------------------------------------------------------


@dataclass
class ProcReport:
    """Everything one :class:`ProcRun` produced."""

    ok: int
    errors: int
    duration: float
    curve: DegradationCurve
    metrics: dict
    node_snapshots: Dict[str, SnapshotRecord] = field(default_factory=dict)
    phase_log: List[Tuple[float, str]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.ok + self.errors

    def to_dict(self) -> dict:
        return {"ok": self.ok, "errors": self.errors,
                "duration": self.duration,
                "curve": self.curve.to_dicts(),
                "phases": [list(p) for p in self.phase_log]}


@dataclass
class _Phase:
    at: float
    action: Callable[[], None]
    label: str


class ProcRun:
    """Closed-loop wall-clock workload with scheduled fault phases.

    ``threads`` client threads call ``method`` on GPs round-robin for
    ``duration`` seconds; a phase thread fires each scheduled action at
    its offset, publishing a ``fault_phase`` event on the cluster's
    hook bus (the same event simnet plans publish, so one recorder
    vocabulary covers both worlds).  Invocation failures are recorded,
    not raised — error rate is data here.
    """

    def __init__(self, *, duration: float = 6.0, threads: int = 4,
                 payload_bytes: int = 256, method: str = "process",
                 bucket_seconds: float = 0.5, op: Optional[Callable] = None):
        if duration <= 0:
            raise ValueError("duration must be positive")
        if threads < 1:
            raise ValueError("need at least one client thread")
        self.duration = duration
        self.threads = threads
        self.payload = os.urandom(max(payload_bytes, 1))
        self.method = method
        self.bucket_seconds = bucket_seconds
        #: Custom per-iteration operation: called as ``op(target)`` with
        #: the thread's round-robin element of ``gps`` (which then need
        #: not be GlobalPointers at all — e.g. a
        #: :class:`~repro.directory.resolver.DirectoryClient`).  When
        #: unset, the classic ``gp.invoke(method, payload)`` echo load.
        self.op = op
        self._phases: List[_Phase] = []

    def schedule(self, at: float, action: Callable[[], None],
                 label: str = "") -> "ProcRun":
        """Run ``action`` ``at`` seconds after the workload starts."""
        if at < 0:
            raise ValueError("phase offset must be >= 0")
        self._phases.append(_Phase(at, action, label or f"phase@{at}"))
        return self

    def run(self, cluster: ProcCluster, gps: List,
            *, recorder: Optional[MetricsRecorder] = None) -> ProcReport:
        """Drive the workload; returns the merged report."""
        if not gps:
            raise ValueError("need at least one GlobalPointer")
        if recorder is None:
            recorder = MetricsRecorder(bucket_seconds=self.bucket_seconds)
        attached = []
        for gp in gps:
            # Composite targets (DirectoryClient) expose every internal
            # GP's bus via ``hook_buses``; plain GPs expose ``hooks``.
            buses = getattr(gp, "hook_buses", None) or [gp.hooks]
            for bus in buses:
                recorder.attach(bus)
                attached.append(bus)
        recorder.attach(cluster.hooks)
        attached.append(cluster.hooks)

        clock = recorder.registry.clock
        counts_lock = threading.Lock()
        counts = {"ok": 0, "errors": 0}
        phase_log: List[Tuple[float, str]] = []
        stop_at = time.monotonic() + self.duration

        def client_loop(index: int) -> None:
            gp = gps[index % len(gps)]
            ok = errors = 0
            while time.monotonic() < stop_at:
                try:
                    if self.op is not None:
                        self.op(gp)
                    else:
                        gp.invoke(self.method, self.payload)
                    ok += 1
                except HpcError:
                    errors += 1
                except Exception:  # noqa: BLE001 - count, keep loading
                    errors += 1
            with counts_lock:
                counts["ok"] += ok
                counts["errors"] += errors

        def phase_loop(started: float) -> None:
            for phase in sorted(self._phases, key=lambda p: p.at):
                delay = started + phase.at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                if time.monotonic() >= stop_at:
                    return
                cluster.hooks.emit("fault_phase", at=phase.at,
                                   now=clock.now(), label=phase.label)
                phase_log.append((phase.at, phase.label))
                try:
                    phase.action()
                except Exception as exc:  # noqa: BLE001 - phase is data
                    phase_log.append((phase.at,
                                      f"{phase.label}!error:{exc}"))

        t_start = clock.now()
        started = time.monotonic()
        workers = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"proc-load-{i}", daemon=True)
                   for i in range(self.threads)]
        phaser = threading.Thread(target=phase_loop, args=(started,),
                                  name="proc-phases", daemon=True)
        for worker in workers:
            worker.start()
        phaser.start()
        for worker in workers:
            worker.join()
        phaser.join(timeout=5.0)
        t_end = clock.now()

        node_snapshots = cluster.snapshots()
        for bus in attached:
            recorder.detach(bus)
        curve = DegradationCurve.from_recorder(recorder, t_start=t_start,
                                               t_end=t_end)
        # Edge buckets covering a small slice of wall-clock are pure
        # noise at process timescales (a 30ms tail bucket extrapolates a
        # handful of calls into a fake trough); drop them.
        while len(curve.buckets) > 2 and \
                curve.buckets[-1].duration < 0.5 * curve.bucket_seconds:
            curve.buckets.pop()
        if len(curve.buckets) > 2 and \
                curve.buckets[0].duration < 0.5 * curve.bucket_seconds:
            curve.buckets.pop(0)
        return ProcReport(ok=counts["ok"], errors=counts["errors"],
                          duration=t_end - t_start, curve=curve,
                          metrics=recorder.snapshot(),
                          node_snapshots=node_snapshots,
                          phase_log=phase_log)
