"""Admission-time placement: where should a new object live?

The load balancer (§4.3) is *reactive* — it moves objects after a
context overheats.  The :class:`PlacementScheduler` is its proactive
complement: it places newly exported objects according to a policy,
so hotspots are less likely to form in the first place.

Policies:

``round-robin``
    cycle through the contexts (the classic default);
``least-loaded``
    pick the context with the lowest busy-fraction EWMA;
``locality``
    pick the context closest (same machine > LAN > site) to a given
    client placement — the right choice when the dominant consumer is
    known up front, mirroring what migration discovers after the fact.

A :class:`~repro.core.health.HealthMonitor` may veto dead contexts
under any policy.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.core.context import Context, Placement
from repro.core.objref import ObjectReference
from repro.exceptions import HpcError

__all__ = ["PlacementScheduler"]

_POLICIES = ("round-robin", "least-loaded", "locality")


class PlacementScheduler:
    """Pick a context for each new export."""

    def __init__(self, contexts: List[Context],
                 policy: str = "least-loaded", health=None):
        if not contexts:
            raise HpcError("scheduler needs at least one context")
        if policy not in _POLICIES:
            raise HpcError(f"unknown placement policy {policy!r}; "
                           f"choose from {_POLICIES}")
        self.contexts = list(contexts)
        self.policy = policy
        self.health = health
        self._rr = itertools.cycle(range(len(self.contexts)))
        self.placements: List[Tuple[str, str]] = []  # (object id, ctx id)

    # -- candidate filtering -------------------------------------------------

    def _alive(self) -> List[Context]:
        if self.health is None:
            return list(self.contexts)
        out = [c for c in self.contexts if self.health.is_alive(c.id)]
        if not out:
            raise HpcError("no live context available for placement")
        return out

    # -- policies ----------------------------------------------------------------

    def choose(self, near: Optional[Placement] = None) -> Context:
        """The context the current policy would pick."""
        candidates = self._alive()
        if self.policy == "round-robin":
            for _ in range(len(self.contexts)):
                ctx = self.contexts[next(self._rr)]
                if ctx in candidates:
                    return ctx
            raise HpcError("no live context available for placement")
        if self.policy == "least-loaded":
            return min(candidates, key=lambda c: c.monitor.load)
        # locality
        if near is None:
            raise HpcError("locality policy needs a client placement")

        def distance(ctx: Context) -> int:
            loc = near.locality_to(ctx.placement)
            if loc.same_machine:
                return 0
            if loc.same_lan:
                return 1
            if loc.same_site:
                return 2
            return 3

        return min(candidates, key=lambda c: (distance(c),
                                              c.monitor.load))

    def place(self, servant, near: Optional[Placement] = None,
              **export_kwargs) -> Tuple[Context, ObjectReference]:
        """Choose a context and export ``servant`` there."""
        ctx = self.choose(near=near)
        oref = ctx.export(servant, **export_kwargs)
        self.placements.append((oref.object_id, ctx.id))
        return ctx, oref
