"""Deterministic synthetic workloads over a simulated cluster.

A :class:`SyntheticWorkload` generates a reproducible request program —
which client hits which object with what payload, with exponential think
times — and executes it in virtual time, recording per-request latency.
Periodic hooks (every ``rebalance_every`` requests) let an experiment
interleave load-balancing passes with traffic, which is how the ABL-LB
benchmark compares balanced vs static placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.gp import GlobalPointer
from repro.exceptions import HpcError
from repro.security.prng import Pcg32
from repro.util.stats import OnlineStats, percentile

__all__ = ["RequestSpec", "WorkloadResult", "SyntheticWorkload",
           "BatchedSyntheticWorkload"]


@dataclass(frozen=True)
class RequestSpec:
    """One scripted request."""

    client_index: int
    object_name: str
    payload_bytes: int
    think_seconds: float


@dataclass
class WorkloadResult:
    """Aggregate outcome of a workload run (virtual time).

    A fresh result is built by every :meth:`SyntheticWorkload.run` call
    (reusing one workload instance is safe — nothing accumulates across
    runs), and two results from identically-seeded runs compare equal
    with ``==``.  ``latencies`` covers *successful* requests only;
    failed ones (``on_error="record"``) are counted in :attr:`errors`.
    """

    latencies: OnlineStats = field(default_factory=OnlineStats)
    per_object_requests: Dict[str, int] = field(default_factory=dict)
    makespan: float = 0.0
    migrations: int = 0
    errors: int = 0
    _raw: List[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return self.latencies.mean

    @property
    def ok(self) -> int:
        """Successful request count."""
        return self.latencies.count

    def latency_percentile(self, q: float) -> float:
        return percentile(sorted(self._raw), q)

    def to_dict(self) -> dict:
        """Plain-dict summary (serializable, ``==``-comparable)."""
        has_lat = bool(self._raw)
        ordered = sorted(self._raw)
        return {
            "ok": self.ok,
            "errors": self.errors,
            "makespan": self.makespan,
            "migrations": self.migrations,
            "mean_latency": self.mean_latency if has_lat else None,
            "p50": percentile(ordered, 50) if has_lat else None,
            "p99": percentile(ordered, 99) if has_lat else None,
            "per_object_requests": dict(self.per_object_requests),
        }


class SyntheticWorkload:
    """Scripted request stream with optional hotspot skew.

    ``hotspot_fraction`` of requests go to ``hot_objects`` (the rest are
    spread uniformly), reproducing the skewed access patterns that make
    load balancing matter.
    """

    def __init__(self, *, seed: int = 1, n_requests: int = 200,
                 object_names: List[str],
                 hot_objects: Optional[List[str]] = None,
                 hotspot_fraction: float = 0.8,
                 payload_bytes: int = 8192,
                 mean_think_seconds: float = 0.002):
        if not object_names:
            raise ValueError("workload needs at least one object")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        self.object_names = list(object_names)
        self.hot_objects = list(hot_objects or object_names[:1])
        self.hotspot_fraction = hotspot_fraction
        self.payload_bytes = payload_bytes
        self.mean_think = mean_think_seconds
        self.n_requests = n_requests
        self.seed = seed

    def script(self, n_clients: int) -> List[RequestSpec]:
        """The deterministic request program for ``n_clients`` clients."""
        rng = Pcg32(self.seed)
        out = []
        for _ in range(self.n_requests):
            if rng.uniform() < self.hotspot_fraction:
                obj = rng.choice(self.hot_objects)
            else:
                obj = rng.choice(self.object_names)
            out.append(RequestSpec(
                client_index=rng.randint(0, n_clients - 1),
                object_name=obj,
                payload_bytes=self.payload_bytes,
                think_seconds=rng.expovariate(1.0 / self.mean_think)
                if self.mean_think > 0 else 0.0,
            ))
        return out

    def run(self, clients: List[GlobalPointer | dict], sim,
            *, resolve: Optional[Callable[[int, str], GlobalPointer]]
            = None,
            rebalance_every: int = 0,
            rebalance: Optional[Callable[[], list]] = None,
            before_request: Optional[Callable[[int, RequestSpec], None]]
            = None,
            on_error: str = "raise") -> WorkloadResult:
        """Execute the program in virtual time.

        ``clients`` is either a list of ``{object name: GP}`` dicts (one
        per client) or ``resolve(client_index, object_name)`` is given.

        ``before_request(i, spec)`` (1-based ``i``) runs after the
        request's think time has elapsed but before it is issued — the
        chaos harness uses it to fire scheduled fault-plan phases at
        the right virtual instant.  ``on_error`` is ``"raise"``
        (default: the first invocation failure propagates) or
        ``"record"`` (failures are counted in ``result.errors`` and the
        run carries on — how a chaos run measures error rate instead of
        dying at the first injected fault).

        Every call builds and returns a **fresh** :class:`WorkloadResult`;
        a workload instance may be reused and re-run freely.
        """
        if on_error not in ("raise", "record"):
            raise ValueError('on_error must be "raise" or "record"')
        if resolve is None:
            tables = clients

            def resolve(ci, name):  # noqa: F811 - intentional closure
                return tables[ci][name]

        result = WorkloadResult()
        start = sim.clock.now()
        payload = np.arange(self.payload_bytes, dtype=np.uint8)
        for i, req in enumerate(self.script(len(clients) or 1), start=1):
            sim.clock.advance(req.think_seconds)
            if before_request is not None:
                before_request(i, req)
            gp = resolve(req.client_index, req.object_name)
            t0 = sim.clock.now()
            try:
                gp.invoke("process", payload[: req.payload_bytes])
            except HpcError:
                if on_error == "raise":
                    raise
                result.errors += 1
            else:
                latency = sim.clock.now() - t0
                result.latencies.add(latency)
                result._raw.append(latency)
            result.per_object_requests[req.object_name] = \
                result.per_object_requests.get(req.object_name, 0) + 1
            if rebalance_every and rebalance is not None \
                    and i % rebalance_every == 0:
                result.migrations += len(rebalance())
        result.makespan = sim.clock.now() - start
        return result


class BatchedSyntheticWorkload(SyntheticWorkload):
    """The same scripted program, issued through explicit
    :meth:`~repro.core.gp.GlobalPointer.batch` scopes.

    Consecutive requests are grouped into windows of ``batch_size``; all
    requests in a window aimed at the same GP share one scope and hence
    (up to the policy's caps) one wire batch.  Transparent coalescing is
    wall-clock-only, so explicit scopes are how simulated-world runs —
    seeded benchmarks and chaos regressions — exercise batching while
    staying deterministic.  Think times, ``before_request`` hooks, and
    per-object accounting match the unbatched driver request for
    request; only the wire traffic is aggregated.
    """

    def __init__(self, *, batch_size: int = 4, **kwargs):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        super().__init__(**kwargs)
        self.batch_size = batch_size

    def run(self, clients: List[GlobalPointer | dict], sim,
            *, resolve: Optional[Callable[[int, str], GlobalPointer]]
            = None,
            rebalance_every: int = 0,
            rebalance: Optional[Callable[[], list]] = None,
            before_request: Optional[Callable[[int, RequestSpec], None]]
            = None,
            on_error: str = "raise") -> WorkloadResult:
        """Execute the program in windows of ``batch_size`` batched
        calls (same contract as :meth:`SyntheticWorkload.run`)."""
        if on_error not in ("raise", "record"):
            raise ValueError('on_error must be "raise" or "record"')
        if resolve is None:
            tables = clients

            def resolve(ci, name):  # noqa: F811 - intentional closure
                return tables[ci][name]

        result = WorkloadResult()
        start = sim.clock.now()
        payload = np.arange(self.payload_bytes, dtype=np.uint8)
        script = self.script(len(clients) or 1)
        for base in range(0, len(script), self.batch_size):
            window = script[base:base + self.batch_size]
            scopes: Dict[int, object] = {}
            members = []
            for i, req in enumerate(window, start=base + 1):
                sim.clock.advance(req.think_seconds)
                if before_request is not None:
                    before_request(i, req)
                gp = resolve(req.client_index, req.object_name)
                scope = scopes.get(id(gp))
                if scope is None:
                    scope = scopes[id(gp)] = gp.batch()
                future = scope.invoke("process",
                                      payload[: req.payload_bytes])
                members.append((i, req, future, sim.clock.now()))
            for scope in scopes.values():
                scope.flush()
            for i, req, future, t0 in members:
                try:
                    future.result()
                except HpcError:
                    if on_error == "raise":
                        raise
                    result.errors += 1
                else:
                    latency = sim.clock.now() - t0
                    result.latencies.add(latency)
                    result._raw.append(latency)
                result.per_object_requests[req.object_name] = \
                    result.per_object_requests.get(req.object_name, 0) + 1
                if rebalance_every and rebalance is not None \
                        and i % rebalance_every == 0:
                    result.migrations += len(rebalance())
        result.makespan = sim.clock.now() - start
        return result
