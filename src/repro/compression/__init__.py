"""Compression substrate backing the compression capability.

Three codecs behind one registry:

* :mod:`repro.compression.rle` — byte run-length encoding, vectorized;
  near-zero cost, wins on sparse numerical arrays (the common HPC case of
  mostly-zero blocks).
* :mod:`repro.compression.lz` — LZSS with a hash-chain matcher; a real
  dictionary compressor implemented from scratch.
* :mod:`repro.compression.zlib_codec` — stdlib zlib wrapper, the
  "production" option.

Each codec maps ``bytes -> bytes`` with a self-identifying header so the
decompressor can reject foreign input, and registers itself in
:data:`repro.compression.codec.CODECS`.
"""

from repro.compression.codec import CODECS, Codec, get_codec, register_codec
from repro.compression.rle import RleCodec
from repro.compression.lz import LzssCodec
from repro.compression.zlib_codec import ZlibCodec

__all__ = [
    "CODECS",
    "Codec",
    "get_codec",
    "register_codec",
    "RleCodec",
    "LzssCodec",
    "ZlibCodec",
]
