"""Codec interface and registry.

A :class:`Codec` is a reversible ``bytes -> bytes`` transform.  The
compression capability looks codecs up by name at both ends of the wire,
so codec names are part of the capability descriptor that travels inside
object references.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.exceptions import CompressionError

__all__ = ["Codec", "CODECS", "register_codec", "get_codec"]


class Codec(abc.ABC):
    """Reversible byte transform with a registry name."""

    #: Registry key; subclasses must override.
    name: str = ""

    @abc.abstractmethod
    def compress(self, data) -> bytes:
        """Compress ``data`` (bytes-like) into an owned ``bytes``."""

    @abc.abstractmethod
    def decompress(self, data) -> bytes:
        """Invert :meth:`compress`; raises ``CompressionError`` on bad
        input."""

    def ratio(self, data) -> float:
        """Convenience: compressed size / original size (1.0 for empty)."""
        n = len(data)
        if n == 0:
            return 1.0
        return len(self.compress(data)) / n


CODECS: Dict[str, Codec] = {}


def register_codec(codec: Codec, replace: bool = False) -> Codec:
    """Add ``codec`` to the global registry; returns it for chaining."""
    if not codec.name:
        raise ValueError("codec must define a non-empty name")
    if codec.name in CODECS and not replace:
        raise ValueError(f"codec {codec.name!r} already registered")
    CODECS[codec.name] = codec
    return codec


def get_codec(name: str) -> Codec:
    try:
        return CODECS[name]
    except KeyError:
        raise CompressionError(f"unknown codec {name!r}") from None
