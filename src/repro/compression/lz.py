"""LZSS dictionary compression with a hash-chain matcher.

Wire format: magic ``b"LZ1"`` + uint32 original length + token stream.
Tokens are grouped eight-per-flag-byte (bit ``i`` set = token ``i`` is a
match).  A literal token is one raw byte; a match token is two bytes:
``dddddddd dddd llll`` — 12-bit distance (1..4096), 4-bit length encoding
lengths 3..18.

This is the classic storer-szymanski scheme every 90s wire compressor
(including the modem-era V.42bis cousins) used.  The matcher keeps, for
each 3-byte prefix hash, a bounded chain of previous positions; bounding
the chain gives O(n) worst-case behaviour at a small ratio cost.
"""

from __future__ import annotations

import struct

from repro.compression.codec import Codec, register_codec
from repro.exceptions import CompressionError

__all__ = ["LzssCodec"]

_MAGIC = b"LZ1"
_HEADER = struct.Struct(">I")

_MIN_MATCH = 3
_MAX_MATCH = 18
_WINDOW = 4096
_MAX_CHAIN = 16
_HASH_BITS = 13
_HASH_SIZE = 1 << _HASH_BITS


def _hash3(data: bytes, i: int) -> int:
    return ((data[i] << 6) ^ (data[i + 1] << 3) ^ data[i + 2]) \
        & (_HASH_SIZE - 1)


class LzssCodec(Codec):
    """LZSS codec (see module docstring for the wire format)."""

    name = "lzss"

    def compress(self, data) -> bytes:
        data = bytes(data)
        n = len(data)
        out = bytearray(_MAGIC + _HEADER.pack(n))
        if n == 0:
            return bytes(out)

        head = [-1] * _HASH_SIZE          # hash -> most recent position
        prev = [-1] * n                   # position -> previous same-hash
        tokens: list[tuple] = []          # ('lit', byte) | ('match', d, l)

        i = 0
        while i < n:
            best_len = 0
            best_dist = 0
            if i + _MIN_MATCH <= n:
                h = _hash3(data, i)
                candidate = head[h]
                chain = 0
                limit = min(_MAX_MATCH, n - i)
                while candidate >= 0 and chain < _MAX_CHAIN:
                    dist = i - candidate
                    if dist > _WINDOW:
                        break
                    # Compare forward from the candidate.
                    length = 0
                    while (length < limit
                           and data[candidate + length] == data[i + length]):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = dist
                        if length == limit:
                            break
                    candidate = prev[candidate]
                    chain += 1
            if best_len >= _MIN_MATCH:
                tokens.append(("match", best_dist, best_len))
                # Insert every covered position into the chains so later
                # matches can reference inside this one.
                end = i + best_len
                while i < end:
                    if i + _MIN_MATCH <= n:
                        h = _hash3(data, i)
                        prev[i] = head[h]
                        head[h] = i
                    i += 1
            else:
                tokens.append(("lit", data[i]))
                if i + _MIN_MATCH <= n:
                    h = _hash3(data, i)
                    prev[i] = head[h]
                    head[h] = i
                i += 1

        # Serialize tokens in groups of eight under a flag byte.
        for group_start in range(0, len(tokens), 8):
            group = tokens[group_start:group_start + 8]
            flags = 0
            body = bytearray()
            for bit, tok in enumerate(group):
                if tok[0] == "match":
                    flags |= 1 << bit
                    _, dist, length = tok
                    word = ((dist - 1) << 4) | (length - _MIN_MATCH)
                    body += word.to_bytes(2, "big")
                else:
                    body.append(tok[1])
            out.append(flags)
            out += body
        return bytes(out)

    def decompress(self, data) -> bytes:
        view = memoryview(data)
        if len(view) < 7 or bytes(view[:3]) != _MAGIC:
            raise CompressionError("not an LZ1 stream")
        (orig_len,) = _HEADER.unpack(view[3:7])
        src = bytes(view[7:])
        out = bytearray()
        pos = 0
        while len(out) < orig_len:
            if pos >= len(src):
                raise CompressionError("truncated LZ1 stream")
            flags = src[pos]
            pos += 1
            for bit in range(8):
                if len(out) >= orig_len:
                    break
                if flags & (1 << bit):
                    if pos + 2 > len(src):
                        raise CompressionError("truncated LZ1 match token")
                    word = int.from_bytes(src[pos:pos + 2], "big")
                    pos += 2
                    dist = (word >> 4) + 1
                    length = (word & 0xF) + _MIN_MATCH
                    start = len(out) - dist
                    if start < 0:
                        raise CompressionError("LZ1 match before start")
                    for k in range(length):
                        out.append(out[start + k])
                else:
                    if pos >= len(src):
                        raise CompressionError("truncated LZ1 literal")
                    out.append(src[pos])
                    pos += 1
        if len(out) != orig_len:
            raise CompressionError("LZ1 output length mismatch")
        return bytes(out)


register_codec(LzssCodec())
