"""Run-length encoding, vectorized with numpy.

Wire format: magic ``b"RL1"`` + uint32 original length, then a sequence of
``(count: uint8 >= 1, byte)`` pairs.  Runs longer than 255 split into
multiple pairs.  Encoding finds run boundaries with one ``np.diff`` pass;
decoding expands with ``np.repeat`` — both are single vectorized
operations, so RLE is the cheapest codec in the registry and the default
for the compression capability on numeric payloads (dense zero runs are
ubiquitous in scientific arrays).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.compression.codec import Codec, register_codec
from repro.exceptions import CompressionError

__all__ = ["RleCodec"]

_MAGIC = b"RL1"
_HEADER = struct.Struct(">I")


class RleCodec(Codec):
    """Byte-level run-length codec (see module docstring for the format)."""

    name = "rle"

    def compress(self, data) -> bytes:
        buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
        n = len(buf)
        header = _MAGIC + _HEADER.pack(n)
        if n == 0:
            return header
        # Boundaries where the byte value changes.
        change = np.flatnonzero(np.diff(buf)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [n]))
        lengths = ends - starts
        values = buf[starts]
        # Split runs longer than 255 into ceil(len/255) pairs.
        reps = (lengths + 254) // 255
        out_values = np.repeat(values, reps)
        out_counts = np.full(len(out_values), 255, dtype=np.uint8)
        # Last chunk of each run holds the remainder.
        last_idx = np.cumsum(reps) - 1
        remainders = lengths - (reps - 1) * 255
        out_counts[last_idx] = remainders.astype(np.uint8)
        pairs = np.empty(len(out_values) * 2, dtype=np.uint8)
        pairs[0::2] = out_counts
        pairs[1::2] = out_values
        return header + pairs.tobytes()

    def decompress(self, data) -> bytes:
        view = memoryview(data)
        if len(view) < 7 or bytes(view[:3]) != _MAGIC:
            raise CompressionError("not an RL1 stream")
        (orig_len,) = _HEADER.unpack(view[3:7])
        body = np.frombuffer(view[7:], dtype=np.uint8)
        if len(body) % 2 != 0:
            raise CompressionError("truncated RL1 pair stream")
        counts = body[0::2].astype(np.int64)
        values = body[1::2]
        if (counts == 0).any():
            raise CompressionError("zero-length run in RL1 stream")
        out = np.repeat(values, counts)
        if len(out) != orig_len:
            raise CompressionError(
                f"RL1 expands to {len(out)} bytes, header says {orig_len}")
        return out.tobytes()


register_codec(RleCodec())
