"""zlib-backed codec: the production-grade option in the registry.

Same magic-header discipline as the from-scratch codecs so the
decompressor can tell codec streams apart and fail loudly on mismatches.
"""

from __future__ import annotations

import struct
import zlib

from repro.compression.codec import Codec, register_codec
from repro.exceptions import CompressionError

__all__ = ["ZlibCodec"]

_MAGIC = b"ZL1"
_HEADER = struct.Struct(">I")


class ZlibCodec(Codec):
    """Deflate via zlib at a configurable level (default 6)."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be 0..9")
        self.level = level

    def compress(self, data) -> bytes:
        raw = bytes(data)
        return _MAGIC + _HEADER.pack(len(raw)) + zlib.compress(raw,
                                                               self.level)

    def decompress(self, data) -> bytes:
        view = memoryview(data)
        if len(view) < 7 or bytes(view[:3]) != _MAGIC:
            raise CompressionError("not a ZL1 stream")
        (orig_len,) = _HEADER.unpack(view[3:7])
        try:
            out = zlib.decompress(bytes(view[7:]))
        except zlib.error as exc:
            raise CompressionError(f"zlib inflate failed: {exc}") from exc
        if len(out) != orig_len:
            raise CompressionError("ZL1 length mismatch")
        return out


register_codec(ZlibCodec())
