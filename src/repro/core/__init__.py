"""The paper's contribution: an open ORB with protocol adaptivity and
remote access capabilities.

Module map (paper concept -> module):

================================  =======================================
Object Reference (OR), §3.1       :mod:`repro.core.objref`
Global Pointer (GP), §3.1         :mod:`repro.core.gp`
Proto-object / proto-class, §3.1  :mod:`repro.core.protocol`
Proto-pool, §3.1                  :mod:`repro.core.proto_pool`
Protocol selection, §3.2          :mod:`repro.core.selection`
Capability object, §4.1           :mod:`repro.core.capabilities`
Glue protocol object, §4.1        :mod:`repro.core.glue`
Context / ORB, §2                 :mod:`repro.core.context`,
                                  :mod:`repro.core.orb`
Object migration, §4.3            :mod:`repro.core.migration`
Load balancing, §4.3              :mod:`repro.core.loadbalance`,
                                  :mod:`repro.core.monitor`
Name service                      :mod:`repro.core.naming`
================================  =======================================
"""

from repro.core.objref import ObjectReference, ProtocolEntry
from repro.core.request import Invocation, ReplyStatus
from repro.core.protocol import (
    PROTO_CLASSES,
    ProtocolClient,
    ProtocolClass,
    register_proto_class,
)
from repro.core.proto_pool import ProtocolPool
from repro.core.selection import (
    APPLICABILITY_RULES,
    FirstMatchPolicy,
    Locality,
    SelectionPolicy,
    register_applicability_rule,
)
from repro.core.capabilities import (
    CAPABILITY_TYPES,
    Capability,
    make_capability,
)
from repro.core.gp import GlobalPointer
from repro.core.context import Context
from repro.core.orb import ORB
from repro.core.naming import NameService
from repro.core.migration import migrate
from repro.core.monitor import LoadMonitor
from repro.core.loadbalance import LoadBalancer
from repro.core.health import HealthMonitor
from repro.core.cost_policy import CostAwarePolicy
from repro.core.instrumentation import (
    GLOBAL_HOOKS,
    HookBus,
    LatencyRegistry,
    LatencyTracker,
)
from repro.core.resilience import (
    AttemptRecord,
    BreakerRegistry,
    BreakerState,
    CircuitBreaker,
    HedgePolicy,
    RetryBudget,
    RetryBudgetRegistry,
    RetryPolicy,
)

__all__ = [
    "ObjectReference",
    "ProtocolEntry",
    "Invocation",
    "ReplyStatus",
    "PROTO_CLASSES",
    "ProtocolClient",
    "ProtocolClass",
    "register_proto_class",
    "ProtocolPool",
    "APPLICABILITY_RULES",
    "register_applicability_rule",
    "Locality",
    "SelectionPolicy",
    "FirstMatchPolicy",
    "CAPABILITY_TYPES",
    "Capability",
    "make_capability",
    "GlobalPointer",
    "Context",
    "ORB",
    "NameService",
    "migrate",
    "LoadMonitor",
    "LoadBalancer",
    "HealthMonitor",
    "CostAwarePolicy",
    "HookBus",
    "GLOBAL_HOOKS",
    "LatencyTracker",
    "LatencyRegistry",
    "AttemptRecord",
    "RetryPolicy",
    "RetryBudget",
    "RetryBudgetRegistry",
    "HedgePolicy",
    "BreakerState",
    "CircuitBreaker",
    "BreakerRegistry",
]
