"""Adaptive request batching on the invoke hot path.

Small-call workloads are dominated by per-message overhead: framing,
capability processing, kernel crossings, and (for request/reply
channels) a full round trip each.  This module aggregates concurrent
small invocations bound for the same ``(peer context, protocol)`` into
one multi-request wire record (:class:`~repro.serialization.marshal.
BatchRequest` / ``BatchReply``), so N calls pay one frame, one
capability pass, and one round trip — the message-aggregation half of
the pipelined-channel story (the demux half lives in
:class:`~repro.nexus.endpoint.PipelinedStartpoint`).

Two entry points:

* **transparent coalescing** — when the owning context's
  :class:`BatchPolicy` is enabled, every eligible ``invoke`` /
  ``invoke_async`` enqueues on the peer's :class:`CallCoalescer`
  instead of dialing out alone.  The first caller in becomes the
  *leader* and waits an adaptive window (a fraction of the peer's
  observed p50 latency, clamped); followers ride along, and a follower
  that fills the size or byte cap flushes immediately on its own
  thread.  Wall-clock contexts only — the simulated world is
  synchronous, so there is never a second concurrent call to coalesce
  with.
* **explicit scopes** — ``with gp.batch() as b: b.invoke(...)`` queues
  calls and flushes them as one batch on exit.  Works identically in
  real and simulated worlds (and is therefore what the deterministic
  simnet benchmarks and chaos tests use).

Failure semantics: a batch member is an ordinary call.  A member whose
reply envelope carries a remote exception gets exactly that exception;
a whole-batch transport failure falls back to per-member individual
invocation through the GP's normal retry machinery, so the idempotence
guard, circuit breakers, and shared retry budgets all keep their word.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.admission.deadline import ambient_deadline
from repro.core.request import (
    Invocation,
    decode_reply,
    encode_invocation,
)
from repro.core.resilience import sleep_on
from repro.exceptions import (
    HpcError,
    ObjectMovedError,
    OverloadError,
    TransportError,
)

__all__ = ["BatchPolicy", "CallCoalescer", "CoalescerRegistry",
           "BatchScope", "flush_batch"]


@dataclass
class BatchPolicy:
    """Knobs for transparent call coalescing.

    ``window_for`` derives the leader's wait from the peer's observed
    latency: waiting a fraction of a round trip costs little (the batch
    would have queued behind the wire anyway) and is exactly the time
    in which concurrent callers arrive.
    """

    #: Master switch for *transparent* coalescing (explicit
    #: ``gp.batch()`` scopes work regardless).
    enabled: bool = False
    #: Flush when this many calls are pending.
    max_batch: int = 16
    #: Flush when pending encoded payloads reach this many bytes.
    max_bytes: int = 64 * 1024
    #: Calls with encoded payloads above this ride alone — a large
    #: argument blob gains nothing from sharing a frame.
    max_item_bytes: int = 8192
    #: Bounds on the adaptive window (seconds).
    min_window: float = 0.0002
    max_window: float = 0.020
    #: Fraction of the peer's p50 latency the leader waits.
    window_fraction: float = 0.5

    def window_for(self, tracker) -> float:
        """The leader's wait for one flush, from the peer's latency
        history (``min_window`` until enough history exists)."""
        p50 = tracker.quantile(0.5) if tracker is not None else None
        if p50 is None:
            return self.min_window
        return min(max(self.window_fraction * p50, self.min_window),
                   self.max_window)


class _PendingCall:
    """One enqueued member: everything needed to send, settle, and —
    if the batch dies — fall back through the member's own GP."""

    __slots__ = ("gp", "oref", "entry", "client", "invocation", "payload",
                 "future")

    def __init__(self, gp, oref, entry, client, invocation: Invocation,
                 payload: bytes):
        self.gp = gp
        self.oref = oref
        self.entry = entry
        self.client = client
        self.invocation = invocation
        self.payload = payload
        self.future: Future = Future()


def _settle_member(context, context_id: str, proto_id: str,
                   item: _PendingCall, envelope: bytes,
                   duration: float) -> None:
    """Deliver one member's outcome exactly as the direct path would."""
    gp = item.gp
    method = item.invocation.method
    if item.invocation.oneway:
        # Fire-and-forget members discard their reply outcome entirely,
        # matching the direct path (which never reads a reply).
        gp.breakers.record_success(context_id, proto_id)
        gp._emit("request", method=method, proto_id=proto_id,
                 outcome="ok", duration=duration)
        item.future.set_result(None)
        return
    try:
        value = decode_reply(item.client.marshaller, envelope)
    except ObjectMovedError:
        # This member's target moved: re-run it individually; the GP's
        # normal MOVED handling chases the forward.
        try:
            value = gp._invoke(method, item.invocation.args,
                               oneway=False, _no_batch=True)
        except Exception as exc:  # noqa: BLE001 - delivered via future
            item.future.set_exception(exc)
        else:
            item.future.set_result(value)
        return
    except Exception as exc:  # noqa: BLE001 - incl. RemoteException
        gp._emit("request", method=method, proto_id=proto_id,
                 outcome="error", error=exc, duration=duration)
        item.future.set_exception(exc)
        return
    gp.breakers.record_success(context_id, proto_id)
    context.latencies.observe(context_id, proto_id, duration)
    gp._emit("request", method=method, proto_id=proto_id,
             outcome="ok", duration=duration)
    item.future.set_result(value)


def _settle_failed(context, context_id: str, proto_id: str,
                   batch: List[_PendingCall], exc: Exception) -> None:
    """Whole-batch transport failure: one breaker strike for the shared
    wire, then each member retries *individually* through its GP's
    normal recovery loop — a batch member is an ordinary call, so
    partial recovery, failover, and the idempotence guard all apply
    per member."""
    lead = batch[0]
    if isinstance(exc, OverloadError):
        # The server shed the whole batch atomically with one pushback
        # reply: the peer is alive and the channel healthy, so no
        # breaker strike and no eviction.  Note the hint and wait it
        # out *once* for the whole batch, then let members fall back
        # individually (each member's own recovery loop honours any
        # further pushback).
        context.pushback.note(context_id, exc.retry_after)
        sleep_on(context.clock, exc.retry_after)
    else:
        lead.gp.breakers.record_failure(context_id, proto_id)
        lead.gp._evict_client(lead.entry)
    # Only a transport error without the sent flag proves the batch
    # never left this host; anything else (a reply we could not decode,
    # a remote refusal) may have reached dispatch.
    dispatched = bool(getattr(exc, "request_sent", False)
                      or getattr(exc, "request_dispatched", False)
                      or not isinstance(exc, TransportError))
    for item in batch:
        gp = item.gp
        method = item.invocation.method
        gp._emit("batch_fallback", method=method, context_id=context_id,
                 proto_id=proto_id, error=exc, dispatched=dispatched)
        try:
            if not gp._may_retry(item.oref, method, dispatched):
                raise exc
            value = gp._invoke(method, item.invocation.args,
                               oneway=item.invocation.oneway,
                               _no_batch=True)
        except Exception as fallback_exc:  # noqa: BLE001
            gp._emit("request", method=method, proto_id=proto_id,
                     outcome="error", error=fallback_exc, duration=0.0)
            if not item.future.done():
                item.future.set_exception(fallback_exc)
        else:
            if not item.future.done():
                item.future.set_result(value)


def flush_batch(context, context_id: str, proto_id: str,
                batch: List[_PendingCall], reason: str) -> None:
    """Send one prepared batch over the lead member's client and settle
    every member's future (used by both the coalescer and explicit
    scopes).  Never raises: every outcome lands in a future."""
    if not batch:
        return
    lead = batch[0]
    clock = context.clock
    payloads = [item.payload for item in batch]
    nbytes = sum(len(p) for p in payloads)
    # The batch travels under its most urgent member's class and its
    # tightest member's remaining budget — the server accounts and
    # sheds the record as one unit, so the unit must honour every
    # member's contract.
    priority = min(item.invocation.priority for item in batch)
    member_deadlines = [item.invocation.deadline for item in batch
                        if item.invocation.deadline is not None]
    started = clock.now()
    remaining = None if not member_deadlines \
        else min(member_deadlines) - started
    try:
        envelopes = lead.client.invoke_batch(payloads, priority=priority,
                                             deadline=remaining)
        duration = clock.now() - started
    except Exception as exc:  # noqa: BLE001 - settled per member
        _settle_failed(context, context_id, proto_id, batch, exc)
        return
    lead.gp._emit("batch_flush", context_id=context_id, proto_id=proto_id,
                  size=len(batch), nbytes=nbytes, reason=reason,
                  duration=duration)
    for item, envelope in zip(batch, envelopes):
        try:
            _settle_member(context, context_id, proto_id, item, envelope,
                           duration)
        except Exception as exc:  # noqa: BLE001 - backstop
            if not item.future.done():
                item.future.set_exception(exc)


class CallCoalescer:
    """Per-``(peer context, proto)`` aggregation point.

    Leader/follower protocol: the thread whose enqueue takes the queue
    from empty to one becomes the *leader*; it waits the adaptive
    window on the condition, then flushes whatever accumulated.  A
    follower that fills either cap takes the whole batch and flushes
    immediately on its own thread (notifying the leader, whose item is
    then gone when it wakes).  Every pending item therefore always has
    exactly one thread responsible for flushing it — there is no
    background timer to leak or to miss shutdown.
    """

    def __init__(self, context, context_id: str, proto_id: str):
        self.context = context
        self.context_id = context_id
        self.proto_id = proto_id
        self._cond = threading.Condition()
        self._pending: List[_PendingCall] = []
        self._bytes = 0

    @property
    def pending(self) -> int:
        """Currently enqueued member count (observability/tests)."""
        with self._cond:
            return len(self._pending)

    def _take_locked(self) -> List[_PendingCall]:
        batch, self._pending = self._pending, []
        self._bytes = 0
        self._cond.notify_all()
        return batch

    def submit(self, gp, oref, entry, client, invocation: Invocation,
               payload: bytes, eager: bool = False) -> Future:
        """Enqueue one call; returns its future.

        ``eager`` flushes immediately after enqueueing (oneway calls
        must not linger in a window the caller never waits out — a
        process exiting right after ``invoke_oneway`` would silently
        drop the batch).
        """
        policy = self.context.batch_policy
        item = _PendingCall(gp, oref, entry, client, invocation, payload)
        batch: Optional[List[_PendingCall]] = None
        reason = ""
        with self._cond:
            self._pending.append(item)
            self._bytes += len(payload)
            if eager:
                batch, reason = self._take_locked(), "eager"
            elif (len(self._pending) >= policy.max_batch
                    or self._bytes >= policy.max_bytes):
                batch, reason = self._take_locked(), "full"
            elif len(self._pending) == 1:
                # Leader: wait the adaptive window for company.
                window = policy.window_for(
                    self.context.latencies.tracker(self.context_id,
                                                   self.proto_id))
                self._cond.wait(timeout=window)
                if any(p is item for p in self._pending):
                    batch, reason = self._take_locked(), "window"
                # else: a cap-filling follower already took this batch
                # (item included) and is flushing it right now.
        if batch:
            flush_batch(self.context, self.context_id, self.proto_id,
                        batch, reason)
        return item.future

    def flush(self) -> int:
        """Flush whatever is pending right now; returns the member
        count.  Shutdown paths call this so no enqueued call is ever
        abandoned in an un-expired window."""
        with self._cond:
            batch = self._take_locked()
        if batch:
            flush_batch(self.context, self.context_id, self.proto_id,
                        batch, "flush")
        return len(batch)


class CoalescerRegistry:
    """The context's table of coalescers, keyed by (peer, proto)."""

    def __init__(self, context):
        self.context = context
        self._lock = threading.Lock()
        self._coalescers: Dict[Tuple[str, str], CallCoalescer] = {}

    def coalescer(self, context_id: str, proto_id: str) -> CallCoalescer:
        key = (context_id, proto_id)
        with self._lock:
            co = self._coalescers.get(key)
            if co is None:
                co = CallCoalescer(self.context, context_id, proto_id)
                self._coalescers[key] = co
            return co

    def flush_peer(self, context_id: str) -> int:
        """Flush every coalescer aimed at one peer (GP close path)."""
        with self._lock:
            matches = [co for (cid, _pid), co in self._coalescers.items()
                       if cid == context_id]
        return sum(co.flush() for co in matches)

    def flush_all(self) -> int:
        with self._lock:
            matches = list(self._coalescers.values())
        return sum(co.flush() for co in matches)

    def pending(self) -> int:
        with self._lock:
            matches = list(self._coalescers.values())
        return sum(co.pending for co in matches)


class BatchScope:
    """Explicit batching: queue invocations, flush as one wire batch.

    ::

        with gp.batch() as b:
            futures = [b.invoke("process", i) for i in range(100)]
        results = [f.result() for f in futures]

    Unlike transparent coalescing this works in the simulated world too
    (the queue is built by one caller, so no concurrency is needed),
    which is what makes seeded batching benchmarks and chaos runs
    deterministic.
    """

    def __init__(self, gp, policy: Optional[BatchPolicy] = None):
        self.gp = gp
        self.policy = policy
        self._queued: List[Tuple[str, tuple, bool, Future]] = []
        self._closed = False

    # -- queueing ------------------------------------------------------

    def _enqueue(self, method: str, args: tuple, oneway: bool) -> Future:
        if self._closed:
            raise HpcError("batch scope already flushed")
        future: Future = Future()
        self._queued.append((method, tuple(args), oneway, future))
        return future

    def invoke(self, method: str, *args) -> Future:
        """Queue one two-way invocation; resolves at flush."""
        return self._enqueue(method, args, oneway=False)

    def invoke_oneway(self, method: str, *args) -> Future:
        """Queue one fire-and-forget invocation (future resolves to
        None at flush; remote errors are dropped, as ever)."""
        return self._enqueue(method, args, oneway=True)

    @property
    def pending(self) -> int:
        return len(self._queued)

    # -- flushing ------------------------------------------------------

    def flush(self) -> int:
        """Send everything queued so far; returns the call count."""
        queued, self._queued = self._queued, []
        if not queued:
            return 0
        gp = self.gp
        context = gp.context
        policy = self.policy or context.batch_policy
        try:
            oref = gp._snapshot()
            entry = gp._select(oref.context_id, oref.protocols)
            client = gp._client_for(entry)
        except Exception as exc:  # noqa: BLE001 - delivered via futures
            for _method, _args, _oneway, future in queued:
                future.set_exception(exc)
            return len(queued)
        # Scope members carry the same admission stamps a direct call
        # through this GP would: its class, and the tighter of the
        # retry policy's budget and any ambient (nested-call) deadline.
        clock = context.clock
        deadline = None if gp.retry_policy.deadline is None \
            else clock.now() + gp.retry_policy.deadline
        inherited = ambient_deadline()
        if inherited is not None:
            deadline = inherited if deadline is None \
                else min(deadline, inherited)
        items: List[_PendingCall] = []
        for method, args, oneway, future in queued:
            if method not in oref.interface.methods:
                from repro.exceptions import InterfaceError

                future.set_exception(InterfaceError(
                    f"interface {oref.interface.name!r} does not expose "
                    f"{method!r}"))
                continue
            invocation = Invocation(object_id=oref.object_id,
                                    method=method, args=args,
                                    oneway=oneway, priority=gp.priority,
                                    deadline=deadline)
            item = _PendingCall(gp, oref, entry, client, invocation,
                                encode_invocation(client.marshaller,
                                                  invocation))
            item.future = future
            items.append(item)
        # Respect the policy's caps so one scope cannot build a frame
        # the peer would refuse.
        chunk: List[_PendingCall] = []
        chunk_bytes = 0
        for item in items:
            if chunk and (len(chunk) >= policy.max_batch
                          or chunk_bytes + len(item.payload)
                          > policy.max_bytes):
                flush_batch(context, oref.context_id, entry.proto_id,
                            chunk, "scope")
                chunk, chunk_bytes = [], 0
            chunk.append(item)
            chunk_bytes += len(item.payload)
        if chunk:
            flush_batch(context, oref.context_id, entry.proto_id,
                        chunk, "scope")
        return len(queued)

    def abort(self, cause: Optional[Exception] = None) -> None:
        """Fail everything still queued without sending it."""
        queued, self._queued = self._queued, []
        error = cause or HpcError("batch scope aborted")
        for _method, _args, _oneway, future in queued:
            future.set_exception(error)

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "BatchScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self.abort(HpcError(
                f"batch scope aborted by {exc_type.__name__}: {exc}"))
        self._closed = True
