"""Remote access capabilities (§4).

"The requirements or attributes of remote access, such as data
compression (and encryption) or client authentication, can be
encapsulated under the concept of remote access capabilities."

A capability is a pair of processing halves around the wire: the client
half ``process``-es each outgoing request payload, the server half
``unprocess``-es it before dispatch (Figure 2); replies take the same
path back.  Capabilities are *described* by marshallable descriptors that
ride inside OR glue entries — that is how capabilities pass between
processes — and *instantiated* per side from the registry here.

Built-in capability types:

=============  ==========================================================
``encryption``  DH-agreed symmetric encryption of the whole request
``auth``        per-request HMAC client authentication (+ reply MAC)
``quota``       the paper's "timeout" capability: max number of requests
``lease``       paid-time capability: requests allowed until an expiry
``compression`` payload compression via a registered codec
``integrity``   checksum/MAC integrity protection without secrecy
``tracing``     pass-through audit trail of requests and sizes
``padding``     size-class padding against traffic analysis
``priority``    pins the connection's server-side admission class
=============  ==========================================================
"""

from repro.core.capabilities.base import (
    CAPABILITY_TYPES,
    Capability,
    make_capability,
    register_capability_type,
)
from repro.core.capabilities.encryption import EncryptionCapability
from repro.core.capabilities.authentication import AuthenticationCapability
from repro.core.capabilities.quota import CallQuotaCapability, TimeLeaseCapability
from repro.core.capabilities.compression import CompressionCapability
from repro.core.capabilities.integrity import IntegrityCapability
from repro.core.capabilities.padding import PaddingCapability
from repro.core.capabilities.priority import PriorityCapability
from repro.core.capabilities.tracing import TracingCapability

__all__ = [
    "CAPABILITY_TYPES",
    "Capability",
    "make_capability",
    "register_capability_type",
    "EncryptionCapability",
    "AuthenticationCapability",
    "CallQuotaCapability",
    "TimeLeaseCapability",
    "CompressionCapability",
    "IntegrityCapability",
    "PaddingCapability",
    "PriorityCapability",
    "TracingCapability",
]
