"""Authentication capability: per-request HMAC client authentication.

The Figure 3 scenario: "the server object requires all clients accessing
it from outside its LAN to authenticate themselves for each remote
request; while it lets local clients access its resources without any
authentication."  Hence the default applicability rule is
``different-lan`` — which is exactly what makes migration flip the
behaviour in the paper's experiment.

Mechanics (shared-secret, Kerberos-flavoured):

* The descriptor names the client's *principal*.  Both sides look the
  shared key up in their local :class:`~repro.security.keys.KeyStore`
  (``context.keystore``); no key material travels in the OR.
* Each request is prefixed with ``principal, counter`` and an
  HMAC-SHA256 over ``counter || payload``.  The server half verifies the
  tag, enforces a strictly increasing counter per principal (replay
  protection), and records the authenticated principal in the request
  meta — which the dispatch layer feeds to the servant's ACL.
* Replies are MAC'd with the same key (mutual authentication); the
  client half verifies.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import AuthenticationError, CapabilityError
from repro.security.hmac_md import DIGEST_SIZE, hmac_sign, hmac_verify
from repro.security.keys import Principal
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["AuthenticationCapability"]

_COUNTER = struct.Struct(">Q")


@register_capability_type
class AuthenticationCapability(Capability):
    """HMAC-based per-request authentication."""

    type_name = "auth"
    default_applicability = "different-lan"
    cost_kind = "digest"

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        principal_text = self.descriptor.get("principal")
        if not principal_text:
            raise CapabilityError("auth descriptor needs a principal")
        self.principal = Principal.parse(principal_text)
        self._counter = 0
        # Client halves mint a session token so several clients may
        # authenticate as one principal without colliding counters; the
        # server replay window is per (principal, session).
        from repro.util.ids import fresh_uid

        self._session = fresh_uid()
        # server side: (principal, session) -> highest counter seen
        self._seen: Dict[tuple, int] = {}

    @classmethod
    def for_principal(cls, principal,
                      applicability: str | None = None) -> dict:
        descriptor = cls.describe(principal=str(principal))
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    def absorb_state(self, other: "Capability") -> None:
        """Replay windows migrate with the object: a counter accepted by
        the old context must stay unacceptable at the new one."""
        if isinstance(other, AuthenticationCapability):
            for principal, counter in other._seen.items():
                if counter > self._seen.get(principal, 0):
                    self._seen[principal] = counter

    def _key(self, principal: Principal) -> bytes:
        keystore = getattr(self.context, "keystore", None)
        if keystore is None:
            raise AuthenticationError(
                "context has no keystore for authentication")
        return keystore.lookup(principal)

    # -- request direction -----------------------------------------------------

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        self._counter += 1
        # The MAC covers session || counter || payload, so neither the
        # session token nor the ordinal can be spliced.
        mac_input = (self._session.encode() + _COUNTER.pack(self._counter)
                     + data)
        tag = hmac_sign(self._key(self.principal), mac_input)
        enc = XdrEncoder()
        enc.pack_string(str(self.principal))
        enc.pack_string(self._session)
        enc.pack_uhyper(self._counter)
        enc.pack_fixed_opaque(tag)
        enc.pack_opaque(data)
        return enc.getvalue()

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        try:
            dec = XdrDecoder(data)
            principal_text = dec.unpack_string()
            session = dec.unpack_string()
            counter = dec.unpack_uhyper()
            tag = bytes(dec.unpack_fixed_opaque(DIGEST_SIZE))
            payload = bytes(dec.unpack_opaque())
        except AuthenticationError:
            raise
        except Exception as exc:
            raise AuthenticationError(
                f"malformed authenticated payload: {exc}") from exc
        principal = Principal.parse(principal_text)
        key = self._key(principal)
        mac_input = session.encode() + _COUNTER.pack(counter) + payload
        if not hmac_verify(key, mac_input, tag):
            raise AuthenticationError(
                f"MAC verification failed for principal {principal}")
        window = (principal_text, session)
        last = self._seen.get(window, 0)
        if counter <= last:
            raise AuthenticationError(
                f"replayed or reordered request (counter {counter} <= "
                f"{last}) for principal {principal}")
        self._seen[window] = counter
        meta.principal = principal
        # Keyed by instance so stacked auth capabilities (distinct
        # principals) keep separate reply keys.
        meta.properties[f"auth.key.{id(self)}"] = key
        return payload

    # -- reply direction ----------------------------------------------------------

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        key = meta.properties.get(f"auth.key.{id(self)}")
        if key is None:
            raise AuthenticationError(
                "cannot MAC a reply to an unauthenticated request")
        tag = hmac_sign(key, data)
        enc = XdrEncoder()
        enc.pack_fixed_opaque(tag)
        enc.pack_opaque(data)
        return enc.getvalue()

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        try:
            dec = XdrDecoder(data)
            tag = bytes(dec.unpack_fixed_opaque(DIGEST_SIZE))
            payload = bytes(dec.unpack_opaque())
        except Exception as exc:
            raise AuthenticationError(
                f"malformed authenticated reply: {exc}") from exc
        if not hmac_verify(self._key(self.principal), payload, tag):
            raise AuthenticationError("reply MAC verification failed")
        return payload
