"""Capability base class, descriptors, and type registry.

Descriptor convention
---------------------
A capability descriptor is a marshallable dict::

    {"type": "<registry name>", "applicability": "<rule name>", ...params}

Descriptors are data, never secrets: key material is looked up locally
(key stores) or agreed on the fly (DH); this is what makes it safe for
capabilities to travel inside object references between processes (§4).

Processing protocol
-------------------
``process(data, meta)`` transforms an outgoing payload;
``unprocess(data, meta)`` inverts it on the receiving side.  Replies use
``process_reply``/``unprocess_reply``, which default to the same
transforms — capabilities that only act on requests (quota, lease)
override the reply hooks to pass through.

Cost accounting
---------------
``cost_kind`` names which :class:`~repro.simnet.linktypes.CpuModel`
bucket a transform bills ("cipher", "digest", "compress", "memcpy" or
``None``), letting the glue protocol charge virtual CPU time under
simulation.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Type

from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError

__all__ = [
    "Capability",
    "CAPABILITY_TYPES",
    "register_capability_type",
    "make_capability",
]


class Capability(abc.ABC):
    """One half (client or server) of a remote access capability."""

    #: Registry name; subclasses must override.
    type_name: str = ""
    #: Default applicability rule when the descriptor does not set one.
    default_applicability: str = "always"
    #: CPU cost bucket for the simulator ("cipher", "digest", "compress",
    #: "memcpy") or None for free transforms.
    cost_kind: Optional[str] = None

    def __init__(self, descriptor: dict, context, role: str):
        if role not in ("client", "server"):
            raise CapabilityError(f"invalid capability role {role!r}")
        self.descriptor = dict(descriptor)
        self.context = context
        self.role = role

    # -- identity ------------------------------------------------------------

    @property
    def applicability(self) -> str:
        return self.descriptor.get("applicability",
                                   self.default_applicability)

    # -- wire transforms -----------------------------------------------------

    @abc.abstractmethod
    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        """Transform an outgoing request payload."""

    @abc.abstractmethod
    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        """Invert :meth:`process` on an incoming request payload."""

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        """Transform an outgoing reply (server side).  Defaults to the
        request transform."""
        return self.process(data, meta)

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        """Invert :meth:`process_reply` (client side)."""
        return self.unprocess(data, meta)

    # -- migration support -----------------------------------------------------

    def absorb_state(self, other: "Capability") -> None:
        """Adopt run-time state from a predecessor half.

        Called during object migration on the freshly created server-side
        capability, with the retiring context's half as ``other`` — so
        metering counters, replay windows, etc. survive the move.  The
        default is stateless (no-op)."""

    # -- descriptor helpers ----------------------------------------------------

    @classmethod
    def describe(cls, **params) -> dict:
        """Build a descriptor for this capability type."""
        descriptor = {"type": cls.type_name}
        descriptor.update(params)
        return descriptor

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<{type(self).__name__} role={self.role} "
                f"applicability={self.applicability!r}>")


CAPABILITY_TYPES: Dict[str, Type[Capability]] = {}


def register_capability_type(cls: Type[Capability],
                             replace: bool = False) -> Type[Capability]:
    """Add a capability class to the registry (usable as a decorator)."""
    if not cls.type_name:
        raise CapabilityError(f"{cls.__name__} has no type_name")
    if cls.type_name in CAPABILITY_TYPES and not replace:
        raise CapabilityError(
            f"capability type {cls.type_name!r} already registered")
    CAPABILITY_TYPES[cls.type_name] = cls
    return cls


def make_capability(descriptor: dict, context, role: str) -> Capability:
    """Instantiate one capability half from a descriptor."""
    type_name = descriptor.get("type")
    cls = CAPABILITY_TYPES.get(type_name)
    if cls is None:
        raise CapabilityError(f"unknown capability type {type_name!r}")
    return cls(descriptor, context, role)
