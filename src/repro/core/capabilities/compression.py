"""Compression capability: shrink payloads through a registered codec.

"The requirements or attributes of remote access, such as data
compression..." (§1) — this is the capability form of the
:mod:`repro.compression` substrate.  The descriptor names the codec
(``rle``, ``lzss`` or ``zlib``) and an optional ``min_size`` below which
payloads pass through unchanged (tiny messages expand under any codec; a
one-byte flag records which branch was taken).

Default applicability: ``different-lan`` — compression pays for itself
when bandwidth is scarce, i.e. off the local segment.
"""

from __future__ import annotations

from repro.compression.codec import get_codec
from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError, CompressionError

__all__ = ["CompressionCapability"]

_RAW = b"\x00"
_PACKED = b"\x01"


@register_capability_type
class CompressionCapability(Capability):
    """Codec-backed payload compression."""

    type_name = "compression"
    default_applicability = "different-lan"
    cost_kind = "compress"

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        codec_name = self.descriptor.get("codec", "zlib")
        self.codec = get_codec(codec_name)   # raises on unknown codec
        min_size = self.descriptor.get("min_size", 64)
        if not isinstance(min_size, int) or min_size < 0:
            raise CapabilityError("min_size must be a non-negative int")
        self.min_size = min_size
        self.bytes_in = 0
        self.bytes_out = 0

    @classmethod
    def with_codec(cls, codec: str = "zlib", min_size: int = 64,
                   applicability: str | None = None) -> dict:
        descriptor = cls.describe(codec=codec, min_size=min_size)
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        self.bytes_in += len(data)
        if len(data) < self.min_size:
            out = _RAW + data
        else:
            packed = self.codec.compress(data)
            # Keep whichever is smaller; incompressible data rides raw.
            out = (_PACKED + packed) if len(packed) < len(data) \
                else (_RAW + data)
        self.bytes_out += len(out)
        return out

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        if not data:
            raise CompressionError("empty compressed payload")
        flag, body = data[:1], data[1:]
        if flag == _RAW:
            return body
        if flag == _PACKED:
            return self.codec.decompress(body)
        raise CompressionError(f"unknown compression flag {flag!r}")

    @property
    def overall_ratio(self) -> float:
        """Bytes out / bytes in across the capability's lifetime."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in
