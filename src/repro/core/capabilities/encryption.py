"""Encryption capability: DH-agreed symmetric encryption of requests.

The motivating scenario wants the server to "encrypt the data exchanged"
with clients connecting from outside its trust boundary (§1); the Figure
4 experiment stacks exactly this ("security") on top of the timeout
capability.

Key management: the descriptor carries the *server's* long-term DH public
value — public data, safe inside a travelling OR.  The client half
generates an ephemeral DH key, derives the shared symmetric key, and
prefixes every message with its ephemeral public value plus a fresh
nonce.  The server half derives (and caches) the same key per client
public value.  Nothing secret ever rides in the descriptor.

Wire layout of a processed payload (XDR)::

    opaque client_dh_public
    uhyper nonce
    opaque ciphertext

Default applicability: ``different-site`` — encrypt exactly when client
and server are on different campuses, the policy of the paper's Figure 3
and Figure 4 scenarios.
"""

from __future__ import annotations

from typing import Dict

from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError, DecryptionError
from repro.security.block_cipher import XteaCtr
from repro.security.dh import DEFAULT_DH_PARAMS, DhParams, DhPrivateKey
from repro.security.prng import Pcg32
from repro.security.stream_cipher import StreamCipher
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["EncryptionCapability"]

_CIPHERS = {"stream", "xtea"}


@register_capability_type
class EncryptionCapability(Capability):
    """Symmetric encryption with per-OR DH key agreement."""

    type_name = "encryption"
    default_applicability = "different-site"
    cost_kind = "cipher"

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        cipher = self.descriptor.get("cipher", "stream")
        if cipher not in _CIPHERS:
            raise CapabilityError(f"unknown cipher {cipher!r}")
        self.cipher_name = cipher
        if cipher == "xtea":
            self.cost_kind = "block_cipher"
        params = self.descriptor.get("dh_params")
        self.dh_params = (DhParams(p=params[0], g=params[1]) if params
                          else DEFAULT_DH_PARAMS)
        # Nonce stream seeded per instance with a process-unique token:
        # id() alone can recur after GC (e.g. stacks re-created by
        # migration), and nonce reuse under one session key would leak
        # keystream.
        from repro.util.ids import fresh_uid

        self._nonce_rng = Pcg32(
            seed=hash((fresh_uid(), role)) & 0xFFFFFFFF, stream=7)
        self._key_cache: Dict[int, bytes] = {}
        if role == "server":
            seed = self.descriptor.get("server_key_seed")
            if seed is None:
                raise CapabilityError(
                    "server half needs server_key_seed in the descriptor "
                    "(use EncryptionCapability.server_descriptor)")
            self._dh = DhPrivateKey(self.dh_params, seed=seed)
            if self._dh.public != self.descriptor.get("server_public"):
                raise CapabilityError(
                    "descriptor server_public does not match the seed")
        else:
            if "server_public" not in self.descriptor:
                raise CapabilityError(
                    "client half needs server_public in the descriptor")
            self._dh = DhPrivateKey(self.dh_params)
            self._shared_key = self._dh.derive_key(
                self.descriptor["server_public"], nbytes=16)

    # -- descriptor construction ----------------------------------------------

    @classmethod
    def server_descriptor(cls, key_seed: int, cipher: str = "stream",
                          applicability: str | None = None) -> dict:
        """Build the travelling descriptor for a server whose long-term
        DH private key derives from ``key_seed``.

        Note: the seed is included so the *exporting server* can
        reconstruct its half; a production system would keep the private
        key in a local store and strip ``server_key_seed`` before handing
        the OR out.  ``ObjectReference.public_descriptor`` sanitization is
        left to applications; the tests cover both shapes.
        """
        dh = DhPrivateKey(DEFAULT_DH_PARAMS, seed=key_seed)
        descriptor = cls.describe(cipher=cipher,
                                  server_public=dh.public,
                                  server_key_seed=key_seed)
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    # -- key handling -----------------------------------------------------------

    def _make_cipher(self, key: bytes):
        if self.cipher_name == "xtea":
            return XteaCtr(key)
        return StreamCipher(key)

    def _server_key_for(self, client_public: int) -> bytes:
        key = self._key_cache.get(client_public)
        if key is None:
            key = self._dh.derive_key(client_public, nbytes=16)
            # Bound the cache: one entry per client ephemeral key; evict
            # wholesale if an adversarial peer churns keys.
            if len(self._key_cache) > 1024:
                self._key_cache.clear()
            self._key_cache[client_public] = key
        return key

    # -- transforms ---------------------------------------------------------------

    def _encrypt(self, data: bytes, key: bytes) -> bytes:
        public = self._dh.public
        nonce = (self._nonce_rng.next_u32() << 32) | \
            self._nonce_rng.next_u32()
        ciphertext = self._make_cipher(key).encrypt(data, nonce)
        enc = XdrEncoder()
        enc.pack_opaque(public.to_bytes(
            (self.dh_params.p.bit_length() + 7) // 8, "big"))
        enc.pack_uhyper(nonce)
        enc.pack_opaque(ciphertext)
        return enc.getvalue()

    def _decrypt(self, data: bytes, key: bytes) -> bytes:
        try:
            dec = XdrDecoder(data)
            nonce = dec.unpack_uhyper()
            ciphertext = bytes(dec.unpack_opaque())
        except Exception as exc:
            raise DecryptionError(f"malformed encrypted payload: {exc}") \
                from exc
        return self._make_cipher(key).decrypt(ciphertext, nonce)

    @staticmethod
    def _split_public(data: bytes) -> tuple[int, memoryview]:
        try:
            dec = XdrDecoder(data)
            public = int.from_bytes(bytes(dec.unpack_opaque()), "big")
            return public, dec.reader.rest()
        except DecryptionError:
            raise
        except Exception as exc:
            raise DecryptionError(f"malformed encrypted payload: {exc}") \
                from exc

    # Request direction: client encrypts with its session key; server
    # derives the matching key from the client's ephemeral public and
    # stashes it in the per-request meta for the reply.

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        if self.role != "client":
            raise CapabilityError("server half cannot process requests")
        return self._encrypt(bytes(data), self._shared_key)

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        peer_public, rest = self._split_public(bytes(data))
        key = self._server_key_for(peer_public)
        # Keyed by instance so two encryption capabilities in one stack
        # keep separate session keys.
        meta.properties[f"encryption.session_key.{id(self)}"] = key
        return self._decrypt(bytes(rest), key)

    # Reply direction: server encrypts with the session key recorded
    # during unprocess; client decrypts with its own session key.

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        key = meta.properties.get(f"encryption.session_key.{id(self)}")
        if key is None:
            raise CapabilityError(
                "reply encryption without a session key (request was not "
                "unprocessed by this capability)")
        return self._encrypt(bytes(data), key)

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        _public, rest = self._split_public(bytes(data))
        return self._decrypt(bytes(rest), self._shared_key)
