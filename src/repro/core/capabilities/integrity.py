"""Integrity capability: tamper detection without secrecy.

Two modes, chosen by the descriptor:

* ``checksum`` (default) — Adler-32 over the payload; detects accidental
  corruption (the classic use on long-haul links of the era).
* ``mac`` — HMAC-SHA256 under a shared key looked up by key id in the
  context keystore; detects deliberate tampering.

Applied to both requests and replies; the receiving half raises
:class:`~repro.exceptions.IntegrityError` on mismatch.
"""

from __future__ import annotations

import struct

from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError, IntegrityError
from repro.security.hmac_md import DIGEST_SIZE, hmac_sign, hmac_verify
from repro.security.keys import Principal
from repro.util.checksums import adler32

__all__ = ["IntegrityCapability"]

_ADLER = struct.Struct(">I")


@register_capability_type
class IntegrityCapability(Capability):
    """Checksum or MAC protection of message payloads."""

    type_name = "integrity"
    default_applicability = "always"
    cost_kind = "digest"

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        mode = self.descriptor.get("mode", "checksum")
        if mode not in ("checksum", "mac"):
            raise CapabilityError(f"unknown integrity mode {mode!r}")
        self.mode = mode
        if mode == "mac":
            key_id = self.descriptor.get("key_id")
            if not key_id:
                raise CapabilityError("mac mode needs a key_id")
            self.key_principal = Principal.parse(key_id)
        self.verified = 0
        self.failures = 0

    @classmethod
    def checksum(cls, applicability: str | None = None) -> dict:
        descriptor = cls.describe(mode="checksum")
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    @classmethod
    def mac(cls, key_id: str, applicability: str | None = None) -> dict:
        descriptor = cls.describe(mode="mac", key_id=key_id)
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    def _mac_key(self) -> bytes:
        keystore = getattr(self.context, "keystore", None)
        if keystore is None:
            raise IntegrityError("context has no keystore for MAC mode")
        return keystore.lookup(self.key_principal)

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        if self.mode == "checksum":
            return _ADLER.pack(adler32(data)) + data
        return hmac_sign(self._mac_key(), data) + data

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        if self.mode == "checksum":
            if len(data) < _ADLER.size:
                raise IntegrityError("payload shorter than its checksum")
            (expected,) = _ADLER.unpack(data[:_ADLER.size])
            body = data[_ADLER.size:]
            if adler32(body) != expected:
                self.failures += 1
                raise IntegrityError("payload checksum mismatch")
        else:
            if len(data) < DIGEST_SIZE:
                raise IntegrityError("payload shorter than its MAC")
            tag, body = data[:DIGEST_SIZE], data[DIGEST_SIZE:]
            if not hmac_verify(self._mac_key(), body, tag):
                self.failures += 1
                raise IntegrityError("payload MAC mismatch")
        self.verified += 1
        return body
