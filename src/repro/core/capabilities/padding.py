"""Padding capability: hide message sizes from the wire.

Encryption hides content but leaks length — and in an RPC system, length
alone often identifies the method being called.  This capability rounds
every payload up to the next multiple of ``quantum`` (or to a fixed
``bucket`` scheme of powers of two), so an observer sees only coarse
size classes.  Stack it *after* compression and *before* encryption for
the textbook ordering: compress -> pad -> encrypt.

Wire layout: ``uhyper original_length`` + payload + zero padding.
"""

from __future__ import annotations

import struct

from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError

__all__ = ["PaddingCapability"]

_LEN = struct.Struct(">Q")


@register_capability_type
class PaddingCapability(Capability):
    """Round payload sizes up to hide their true length."""

    type_name = "padding"
    default_applicability = "different-site"
    cost_kind = "memcpy"

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        self.mode = self.descriptor.get("mode", "quantum")
        if self.mode not in ("quantum", "power2"):
            raise CapabilityError(f"unknown padding mode {self.mode!r}")
        quantum = self.descriptor.get("quantum", 256)
        if not isinstance(quantum, int) or quantum <= 0:
            raise CapabilityError("padding quantum must be positive")
        self.quantum = quantum

    @classmethod
    def quantized(cls, quantum: int = 256,
                  applicability: str | None = None) -> dict:
        descriptor = cls.describe(mode="quantum", quantum=quantum)
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    @classmethod
    def power_of_two(cls, applicability: str | None = None) -> dict:
        descriptor = cls.describe(mode="power2")
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    def _padded_size(self, n: int) -> int:
        if self.mode == "quantum":
            return ((n + self.quantum - 1) // self.quantum) * self.quantum \
                if n else self.quantum
        size = 1
        while size < max(n, 1):
            size <<= 1
        return size

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        target = self._padded_size(len(data))
        return _LEN.pack(len(data)) + data + b"\x00" * (target - len(data))

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        if len(data) < _LEN.size:
            raise CapabilityError("padded payload shorter than its header")
        (length,) = _LEN.unpack(data[:_LEN.size])
        body = data[_LEN.size:]
        if length > len(body):
            raise CapabilityError(
                f"padding header claims {length} bytes, only "
                f"{len(body)} present")
        return body[:length]
