"""Admission-class capability: a connection's priority, negotiated.

The motivating scenario's tiered clients (§1) do not only differ in
*what* they may do (quotas, leases) but in *how urgently* the server
treats them under load.  :class:`PriorityCapability` pins a glue
connection to one admission class of the server's
:mod:`repro.admission` layer:

* the client half stamps the class into a small accounting header (and
  the :class:`~repro.core.glue.GlueClient` lifts it onto the RSR META
  trailer via the ``admission_class`` attribute, where the endpoint's
  admission queue orders by it);
* the server half is authoritative: it validates the stamped class
  against the negotiated descriptor — a client cannot craft its way
  into the interactive lane — and publishes it as
  ``meta.properties["admission.class"]`` for servants and audits.

Like the metering capabilities, this one gates/annotates rather than
transforms: no byte-touching cost is charged.
"""

from __future__ import annotations

from repro.admission.policy import CLASS_NAMES, class_ordinal
from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["PriorityCapability"]


@register_capability_type
class PriorityCapability(Capability):
    """Pin a glue connection to one admission class.

    Descriptor: ``{"type": "priority", "class": "interactive" | "batch"
    | "best-effort"}`` (an integer ordinal is also accepted).
    """

    type_name = "priority"
    default_applicability = "always"
    cost_kind = None

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        declared = self.descriptor.get("class")
        if declared is None:
            raise CapabilityError("priority capability needs a class")
        try:
            #: The pinned admission class; GlueClient duck-types this
            #: attribute to stamp the RSR META trailer.
            self.admission_class = class_ordinal(declared)
        except ValueError as exc:
            raise CapabilityError(str(exc)) from None

    @classmethod
    def of(cls, admission_class,
           applicability: str | None = None) -> dict:
        """Descriptor for a pinned class (name or ordinal)."""
        ordinal = class_ordinal(admission_class)
        descriptor = cls.describe(**{"class": CLASS_NAMES[ordinal]})
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    @property
    def class_name(self) -> str:
        return CLASS_NAMES[self.admission_class]

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(self.admission_class)
        enc.pack_opaque(data)
        return enc.getvalue()

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        dec = XdrDecoder(data)
        stamped = dec.unpack_uint()
        payload = bytes(dec.unpack_opaque())
        if stamped != self.admission_class:
            raise CapabilityError(
                f"request stamped admission class {stamped}, but this "
                f"connection negotiated {self.class_name!r} — class "
                "escalation refused")
        meta.properties["admission.class"] = self.admission_class
        meta.properties["admission.class_name"] = self.class_name
        return payload

    # Priority annotates requests only; replies pass through untouched.

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        return bytes(data)

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        return bytes(data)
