"""Metered-access capabilities: call quotas and time leases.

Two of the motivating scenario's billing policies (§1):

* "Some clients may even be given access on a total number of accesses
  basis" — :class:`CallQuotaCapability`, which the paper's experiments
  call the **timeout capability** ("a timeout capability that lets the
  client make only a certain maximum number of requests", §4.2).
* "Some clients ... may be given access to the weather data only for the
  time they have paid for" — :class:`TimeLeaseCapability`.

Both are *enforcement* capabilities: they do not transform bytes (beyond
a small accounting header), they gate them.  Enforcement happens on both
halves — the client half fails fast without a round trip; the server half
is authoritative (a client could always hand-craft requests).
"""

from __future__ import annotations

from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import CapabilityError, LeaseExpiredError, QuotaExceededError
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["CallQuotaCapability", "TimeLeaseCapability"]


@register_capability_type
class CallQuotaCapability(Capability):
    """Allow at most ``max_calls`` requests (the paper's "timeout").

    Default applicability is ``different-lan``: metering applies to
    outside clients, matching the Figure 4 scenario where no capability
    applies once the server reaches the client's own LAN.
    """

    type_name = "quota"
    default_applicability = "different-lan"
    cost_kind = None

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        max_calls = self.descriptor.get("max_calls")
        if not isinstance(max_calls, int) or max_calls <= 0:
            raise CapabilityError("quota needs a positive integer max_calls")
        self.max_calls = max_calls
        self.used = 0
        # Server halves are shared across concurrently dispatched
        # requests; the spend check must be atomic.
        import threading

        self._lock = threading.Lock()

    @classmethod
    def for_calls(cls, max_calls: int,
                  applicability: str | None = None) -> dict:
        descriptor = cls.describe(max_calls=max_calls)
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    @property
    def remaining(self) -> int:
        return max(self.max_calls - self.used, 0)

    def absorb_state(self, other: "Capability") -> None:
        """Metering continues across migration: the call count moves."""
        if isinstance(other, CallQuotaCapability):
            self.used = max(self.used, other.used)

    def _spend(self) -> None:
        with self._lock:
            if self.used >= self.max_calls:
                raise QuotaExceededError(
                    f"call quota of {self.max_calls} exhausted "
                    f"({self.role} side)")
            self.used += 1

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        self._spend()
        # Prepend the client-side call ordinal, so the server can audit.
        enc = XdrEncoder()
        enc.pack_uhyper(self.used)
        enc.pack_opaque(data)
        return enc.getvalue()

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        dec = XdrDecoder(data)
        ordinal = dec.unpack_uhyper()
        payload = bytes(dec.unpack_opaque())
        self._spend()
        meta.properties["quota.ordinal"] = ordinal
        meta.properties["quota.remaining"] = self.remaining
        return payload

    # Quotas only meter requests; replies pass through untouched.

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        return bytes(data)

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        return bytes(data)


@register_capability_type
class TimeLeaseCapability(Capability):
    """Allow requests only while the lease is live.

    The descriptor carries an absolute expiry (``expires_at``, in the
    deployment's clock) or a relative ``duration`` resolved against the
    context clock when the capability is instantiated.  Both halves
    enforce against their own context clock — under simulation that is
    the shared virtual clock, which makes lease expiry exactly testable.
    """

    type_name = "lease"
    default_applicability = "always"
    cost_kind = None

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        expires_at = self.descriptor.get("expires_at")
        duration = self.descriptor.get("duration")
        if expires_at is None and duration is None:
            raise CapabilityError("lease needs expires_at or duration")
        if expires_at is None:
            if duration <= 0:
                raise CapabilityError("lease duration must be positive")
            expires_at = self._now() + float(duration)
        self.expires_at = float(expires_at)

    @classmethod
    def until(cls, expires_at: float,
              applicability: str | None = None) -> dict:
        descriptor = cls.describe(expires_at=float(expires_at))
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    @classmethod
    def lasting(cls, duration: float,
                applicability: str | None = None) -> dict:
        descriptor = cls.describe(duration=float(duration))
        if applicability:
            descriptor["applicability"] = applicability
        return descriptor

    def _now(self) -> float:
        # The owning context's TimeSource — under simulation that is the
        # shared VirtualClock, so lease expiry is deterministic; there
        # is deliberately no time.time() fallback.
        from repro.util.timing import time_source

        return time_source(self.context).now()

    @property
    def remaining_seconds(self) -> float:
        return max(self.expires_at - self._now(), 0.0)

    def _check(self) -> None:
        now = self._now()
        if now > self.expires_at:
            raise LeaseExpiredError(
                f"lease expired {now - self.expires_at:.3f}s ago "
                f"({self.role} side)")

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        self._check()
        return bytes(data)

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        self._check()
        return bytes(data)

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        # A reply to a request admitted under the lease is always allowed
        # out — billing is per request.
        return bytes(data)

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        return bytes(data)
