"""Tracing capability: a pass-through audit trail.

Records ``(direction, role, nbytes, timestamp)`` for every message that
flows through the glue stack, without touching the bytes.  Useful for
examples (watching the Figure 2 path happen) and for tests asserting the
exact processing order of stacked capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta

__all__ = ["TracingCapability", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed message."""

    direction: str     # "request" | "reply"
    stage: str         # "process" | "unprocess"
    role: str          # "client" | "server"
    nbytes: int
    timestamp: float


@register_capability_type
class TracingCapability(Capability):
    """Observe the glue pipeline without altering it."""

    type_name = "tracing"
    default_applicability = "always"
    cost_kind = None

    def __init__(self, descriptor: dict, context, role: str):
        super().__init__(descriptor, context, role)
        self.events: List[TraceEvent] = []
        self.max_events = self.descriptor.get("max_events", 10_000)

    def _now(self) -> float:
        # The owning context's TimeSource (the VirtualClock under
        # simulation, so trace timestamps are deterministic); never the
        # wall-clock epoch.
        from repro.util.timing import time_source

        return time_source(self.context).now()

    def _record(self, direction: str, stage: str, nbytes: int) -> None:
        if len(self.events) < self.max_events:
            self.events.append(TraceEvent(
                direction=direction, stage=stage, role=self.role,
                nbytes=nbytes, timestamp=self._now()))

    def process(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        self._record("request", "process", len(data))
        return data

    def unprocess(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        self._record("request", "unprocess", len(data))
        return data

    def process_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        self._record("reply", "process", len(data))
        return data

    def unprocess_reply(self, data: bytes, meta: RequestMeta) -> bytes:
        data = bytes(data)
        self._record("reply", "unprocess", len(data))
        return data

    def clear(self) -> None:
        self.events.clear()
