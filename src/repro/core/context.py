"""Contexts: the HPC++ virtual address space, hosting servants.

"A context refers to a virtual address space" (§2).  A
:class:`Context` is the server *and* client home of objects:

* it serves exported objects through a multi-method endpoint (one
  listener per transport);
* it owns the client-side machinery a GP needs: transports, a protocol
  pool, a key store, a clock, and the CPU-cost charging hook for the
  simulator;
* it carries a *placement* (machine / LAN / site), either derived from a
  simulated machine or declared as plain tags, which applicability
  predicates compare.

The request path implements Figures 1 and 2: ``hpc.invoke`` is the plain
proto-object entrance, ``hpc.glue`` the capability-processing entrance,
``hpc.control`` the small control surface (dynamic capability
negotiation, migration assistance).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.admission import (
    AdmissionController,
    AdmissionPolicy,
    ambient_deadline,
)
from repro.core.batching import BatchPolicy, CoalescerRegistry
from repro.core.glue import (
    GLUE_REPLY_BARE,
    GLUE_REPLY_PROCESSED,
    ServerGlueStack,
    decode_glue_envelope,
    encode_glue_reply,
)
from repro.core.instrumentation import LatencyRegistry
from repro.core.monitor import LoadMonitor
from repro.core.objref import ObjectReference, ProtocolEntry
from repro.core.proto_pool import ProtocolPool
from repro.core.protocol import (
    BATCH_HANDLER,
    GLUE_BATCH_HANDLER,
    GLUE_HANDLER,
    INVOKE_HANDLER,
    marshaller_for,
)
from repro.core.resilience import (
    BreakerRegistry,
    HedgePolicy,
    PushbackRegistry,
    RetryBudgetRegistry,
)
from repro.core.request import (
    RequestMeta,
    decode_invocation,
    encode_reply_exception,
    encode_reply_moved,
    encode_reply_ok,
    encode_reply_overload,
)
from repro.core.selection import Locality
from repro.exceptions import (
    AuthenticationError,
    CapabilityError,
    HpcError,
    InterfaceError,
    MethodNotExposedError,
    ObjectNotFoundError,
)
from repro.idl.interface import InterfaceView, interface_of
from repro.idl.types import InterfaceSpec
from repro.nexus.multimethod import MultiMethodServer
from repro.security.acl import AccessControlList
from repro.security.keys import KeyStore
from repro.serialization.marshal import BatchReply, BatchRequest
from repro.simnet.linktypes import TCP_LOOPBACK
from repro.transport.simtransport import SimShmTransport, SimTransport
from repro.util.ids import IdGenerator
from repro.util.timing import WallClock

__all__ = ["Placement", "Context", "ServantRecord", "CONTROL_HANDLER"]

CONTROL_HANDLER = "hpc.control"


@dataclass(frozen=True)
class Placement:
    """Where a context lives, at applicability granularity."""

    machine: str = "local"
    lan: str = "local-lan"
    site: str = "local-site"

    def locality_to(self, other: "Placement") -> Locality:
        if self.machine == other.machine:
            return Locality(True, True, True)
        if self.lan == other.lan:
            return Locality(False, True, True)
        if self.site == other.site:
            return Locality(False, False, True)
        return Locality(False, False, False)

    def to_wire(self) -> dict:
        return {"machine": self.machine, "lan": self.lan, "site": self.site}

    @classmethod
    def from_wire(cls, data: dict) -> "Placement":
        return cls(machine=data.get("machine", "local"),
                   lan=data.get("lan", "local-lan"),
                   site=data.get("site", "local-site"))


@dataclass
class ServantRecord:
    """One exported object."""

    object_id: str
    instance: object
    spec: InterfaceSpec
    acl: Optional[AccessControlList]
    glue: List[tuple]  # [(glue_id, descriptors), ...]
    migratable: bool = True
    #: Incarnation number of this export: 0 for a fresh export, bumped
    #: by each migration hop so OR versions increase strictly along a
    #: migration chain (A -> B -> C), wherever each hop started from.
    version: int = 0


class Context:
    """One virtual address space: servant host + client runtime."""

    _ids = IdGenerator("ctx")

    def __init__(self, orb, name: Optional[str] = None, machine=None,
                 placement: Optional[Placement] = None,
                 encoding: str = "xdr", enable_tcp: bool = False,
                 pool: Optional[ProtocolPool] = None):
        self.orb = orb
        self.id = name or self._ids.next_id()
        self.sim = orb.sim
        self.encoding = encoding
        self.marshaller = marshaller_for(encoding)
        self.call_timeout: Optional[float] = 30.0
        self.keystore = KeyStore(seed=hash(self.id) & 0xFFFF)
        self._object_ids = IdGenerator(f"{self.id}.obj")
        self._glue_ids = IdGenerator(f"{self.id}.glue")
        self._lock = threading.RLock()

        # --- placement & transports ---
        if machine is not None:
            if self.sim is None:
                raise HpcError("a simulated machine needs a simulated ORB")
            self.machine = machine
            self.placement = Placement(machine=machine.name,
                                       lan=machine.lan.name,
                                       site=machine.site.name)
            net = SimTransport(self.sim, machine)
            net.loopback_model = TCP_LOOPBACK
            shm = SimShmTransport(self.sim, machine)
            self.transports = {net.name: net, shm.name: shm}
            self.clock = self.sim.clock
        else:
            self.machine = None
            self.placement = placement or Placement()
            self.transports = {"inproc": orb.inproc, "shm": orb.shm}
            if enable_tcp:
                self.transports["tcp"] = orb.tcp
            self.clock = WallClock()

        # --- serving ---
        self.server = MultiMethodServer(self.id)
        self._bound: Dict[str, dict] = {}
        for tname, transport in self.transports.items():
            self._bound[tname] = self.server.bind(transport)
        self.server.register(INVOKE_HANDLER, self._handle_invoke)
        self.server.register(GLUE_HANDLER, self._handle_glue)
        self.server.register(BATCH_HANDLER, self._handle_invoke_batch)
        self.server.register(GLUE_BATCH_HANDLER, self._handle_glue_batch)
        self.server.register(CONTROL_HANDLER, self._handle_control)

        self.servants: Dict[str, ServantRecord] = {}
        self.glue_stacks: Dict[str, ServerGlueStack] = {}
        self.forwards: Dict[str, ObjectReference] = {}
        self.proto_pool = pool or ProtocolPool(["glue", "shm", "nexus"])
        self.monitor = LoadMonitor(self.clock)
        #: Per-(remote context, proto) circuit breakers shared by every
        #: GP bound in this context; selection sheds open entries.
        self.breakers = BreakerRegistry(self.clock)
        #: Per-remote-context token-bucket retry budgets shared by every
        #: GP bound here: N concurrent calls to one flapping peer draw
        #: from one bounded pool instead of each retrying independently.
        self.retry_budgets = RetryBudgetRegistry()
        #: Per-peer overload pushback noted by GPs when a server sheds a
        #: request; stretches backoff and suppresses hedging toward
        #: that peer until its retry-after hint elapses.
        self.pushback = PushbackRegistry(self.clock)
        #: Server-side admission control for this context's endpoint
        #: (disabled by default; :meth:`set_admission_policy` turns it
        #: on and re-tunes it at runtime, Open Implementation style).
        self.admission = AdmissionController(AdmissionPolicy(),
                                             clock=self.clock)
        self.server.endpoint.admission = self.admission
        self.server.endpoint.clock = self.clock
        #: Per-(remote context, proto) streaming latency trackers; fed
        #: by every successful request, read by the hedging policy.
        self.latencies = LatencyRegistry()
        #: Context-wide hedging default for GPs bound here (off until an
        #: application or test opts in; GPs may override per binding).
        self.hedge_policy = HedgePolicy(enabled=False)
        #: Transparent-coalescing policy for GPs bound here (off until an
        #: application opts in; explicit ``gp.batch()`` scopes work
        #: regardless) and the per-(peer, proto) coalescer table.
        self.batch_policy = BatchPolicy(enabled=False)
        self.batching = CoalescerRegistry(self)
        #: Real-transport channels multiplex concurrent requests by
        #: correlation id unless an application opts out.
        self.pipelined_channels = True
        # Per-context name→OR resolver cache (TTL + version-checked;
        # see docs/DIRECTORY.md).  GPs bound here feed MOVED forwarding
        # notices into it so every cached alias of a migrated object is
        # patched the moment *any* call observes the move.  Imported
        # lazily: repro.directory sits above core in the layering.
        from repro.directory.resolver import ResolverCache

        self.resolver = ResolverCache(self.clock)
        # Shared invocation executor (lazily created): one pool per
        # context instead of 4 threads per GP, so a process with
        # thousands of GPs does not leak thousands of idle threads.
        self._executor = None
        self._hedge_executor = None

    # ------------------------------------------------------------------
    # shared executors
    # ------------------------------------------------------------------

    @property
    def executor(self):
        """The context-wide pool ``invoke_async`` submissions run on."""
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=8,
                    thread_name_prefix=f"{self.id}-invoke")
            return self._executor

    @property
    def hedge_executor(self):
        """A separate pool for hedged attempt legs.

        Kept apart from :attr:`executor` on purpose: hedged calls wait
        on their attempt futures, and waiting on the same pool that runs
        you deadlocks once the pool saturates.  Attempt legs are leaves
        (they never submit further work), so this pool cannot deadlock.
        """
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            if self._hedge_executor is None:
                self._hedge_executor = ThreadPoolExecutor(
                    max_workers=8,
                    thread_name_prefix=f"{self.id}-hedge")
            return self._hedge_executor

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------

    def charge_cost(self, kind: Optional[str], nbytes: int) -> None:
        """Charge virtual CPU seconds for byte-touching work (no-op
        outside simulation or for free transforms)."""
        if kind is None or self.sim is None or self.machine is None:
            return
        cost_fn = getattr(self.machine.cpu, f"{kind}_cost", None)
        if cost_fn is None:
            raise HpcError(f"unknown cost kind {kind!r}")
        self.sim.charge_cpu(self.machine, cost_fn(nbytes))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def _address_entries(self) -> tuple[list, list]:
        """(shm addresses, network addresses) from the bound listeners."""
        shm_addrs, net_addrs = [], []
        for tname, address in self._bound.items():
            if tname in ("shm", "sim-shm"):
                shm_addrs.append(dict(address))
            else:
                net_addrs.append(dict(address))
        return shm_addrs, net_addrs

    def _base_proto_data(self, addresses: list) -> dict:
        data = self.placement.to_wire()
        data["addresses"] = addresses
        data["encoding"] = self.encoding
        return data

    def make_glue_entry(self, descriptors: List[dict],
                        applicability: Optional[str] = None
                        ) -> ProtocolEntry:
        """Register a server glue stack and return its OR entry.

        The entry's inner protocol is this context's ``nexus`` entry (the
        glue object "depends on a real protocol object to do the actual
        communication", §4.1)."""
        if not descriptors:
            raise CapabilityError("glue stack needs at least one capability")
        glue_id = self._glue_ids.next_id()
        stack = ServerGlueStack(glue_id, descriptors, self)
        with self._lock:
            self.glue_stacks[glue_id] = stack
        _shm, net = self._address_entries()
        inner = ProtocolEntry("nexus", self._base_proto_data(net))
        proto_data = self._base_proto_data(net)
        proto_data.update({
            "glue_id": glue_id,
            "capabilities": [dict(d) for d in descriptors],
            "inner": inner.to_wire(),
        })
        if applicability:
            proto_data["applicability"] = applicability
        return ProtocolEntry("glue", proto_data)

    def export(self, obj, *, view=None, object_id: Optional[str] = None,
               glue_stacks: Optional[List[List[dict]]] = None,
               acl: Optional[AccessControlList] = None,
               interface: Optional[InterfaceSpec] = None,
               include_shm: bool = True,
               include_plain: bool = True,
               migratable: bool = True) -> ObjectReference:
        """Export ``obj`` and build its object reference.

        Parameters
        ----------
        view:
            An :class:`InterfaceView` (or iterable of method names)
            restricting what this OR's holders may call.
        glue_stacks:
            Capability stacks; each becomes one glue entry, in order, at
            the front of the protocol table (the Figure 4-B layout).
        acl:
            Optional per-export ACL consulted for authenticated
            principals.
        include_shm / include_plain:
            Whether to append the shared-memory and plain ``nexus``
            entries after the glue entries.
        """
        spec = interface or interface_of(obj)
        if view is not None:
            if isinstance(view, InterfaceView):
                spec = view.apply(spec)
            else:
                spec = spec.subset(view)
        # Fail at export, not at first dispatch, if the servant does not
        # actually implement the exposed interface.
        from repro.idl.skeletons import validate_servant

        validate_servant(obj, spec)
        object_id = object_id or self._object_ids.next_id()
        glue_records = []
        entries: List[ProtocolEntry] = []
        for descriptors in (glue_stacks or []):
            entry = self.make_glue_entry(descriptors)
            glue_records.append((entry.proto_data["glue_id"], descriptors))
            entries.append(entry)
        shm_addrs, net_addrs = self._address_entries()
        if include_shm and shm_addrs:
            entries.append(ProtocolEntry("shm",
                                         self._base_proto_data(shm_addrs)))
        if include_plain:
            entries.append(ProtocolEntry("nexus",
                                         self._base_proto_data(net_addrs)))
        if not entries:
            raise HpcError("export would produce an empty protocol table")
        record = ServantRecord(object_id=object_id, instance=obj,
                               spec=spec, acl=acl, glue=glue_records,
                               migratable=migratable)
        with self._lock:
            if object_id in self.servants:
                raise HpcError(f"object id {object_id!r} already exported")
            self.servants[object_id] = record
            self.forwards.pop(object_id, None)
        return ObjectReference(object_id=object_id, context_id=self.id,
                               interface=spec, protocols=entries)

    def unexport(self, object_id: str) -> None:
        with self._lock:
            record = self.servants.pop(object_id, None)
            if record:
                for glue_id, _descriptors in record.glue:
                    self.glue_stacks.pop(glue_id, None)
            self.monitor.forget_object(object_id)

    def set_admission_policy(self, policy: AdmissionPolicy) -> None:
        """Swap the endpoint's admission policy at runtime.

        Queued work survives the swap (re-offered at the new capacity;
        overflow is shed with pushback).  ``AdmissionPolicy()`` has
        ``enabled=False``, so passing a default policy switches
        admission control off again.
        """
        self.admission.set_policy(policy)

    def bind(self, oref: ObjectReference, **kwargs):
        """Create a :class:`~repro.core.gp.GlobalPointer` for ``oref``
        rooted in this context."""
        from repro.core.gp import GlobalPointer

        return GlobalPointer(oref, self, **kwargs)

    # ------------------------------------------------------------------
    # dispatch (server side of Figures 1 and 2)
    # ------------------------------------------------------------------

    def dispatch(self, payload: bytes, meta: RequestMeta) -> bytes:
        """Run one marshalled invocation; returns the reply envelope."""
        m = self.marshaller
        self.charge_cost("memcpy", len(payload))
        expires_at = ambient_deadline()
        if expires_at is not None and self.clock.now() > expires_at:
            # The caller's budget ran out before this member reached the
            # servant (e.g. earlier batch-mates consumed it): shed with
            # pushback instead of doing work nobody will wait for.
            return encode_reply_overload(m, 0.0, "deadline")
        try:
            inv = decode_invocation(m, payload)
        except HpcError as exc:
            return encode_reply_exception(m, exc)
        with self._lock:
            record = self.servants.get(inv.object_id)
            forward = self.forwards.get(inv.object_id)
        if record is None:
            if forward is not None:
                return encode_reply_moved(m, forward.to_bytes())
            return encode_reply_exception(m, ObjectNotFoundError(
                f"context {self.id!r} exports no object {inv.object_id!r}"))
        started = self.clock.now()
        try:
            if inv.method not in record.spec.methods:
                raise MethodNotExposedError(
                    f"method {inv.method!r} is outside the exported "
                    f"interface {record.spec.name!r}")
            # Enforce the declared wire contract before touching the
            # servant (arity and parameter types).
            from repro.idl.typecheck import check_args

            check_args(record.spec.methods[inv.method], inv.args)
            if record.acl is not None and not record.acl.allows(
                    meta.principal, inv.method):
                raise AuthenticationError(
                    f"principal {meta.principal} is not authorized for "
                    f"{inv.method!r}")
            method = getattr(record.instance, inv.method, None)
            if method is None:
                raise InterfaceError(
                    f"servant {type(record.instance).__name__} lacks "
                    f"declared method {inv.method!r}")
            result = method(*inv.args)
            reply = encode_reply_ok(m, result)
        except Exception as exc:  # noqa: BLE001 - marshalled to the peer
            reply = encode_reply_exception(m, exc)
        finally:
            self.monitor.record_request(inv.object_id,
                                        self.clock.now() - started)
        self.charge_cost("memcpy", len(reply))
        return reply

    # -- RSR handlers -----------------------------------------------------------

    def _handle_invoke(self, payload: bytes) -> bytes:
        return self.dispatch(bytes(payload), RequestMeta())

    def _handle_invoke_batch(self, payload: bytes) -> bytes:
        """Serve one BatchRequest: dispatch every sub-invocation and
        reply out of the batch with the matching sub ids.  A failing
        member produces an exception envelope in its slot; its
        batch-mates are unaffected."""
        request = BatchRequest.from_bytes(bytes(payload))
        meta = RequestMeta()
        items = tuple((sub_id, self.dispatch(bytes(sub), meta))
                      for sub_id, sub in request.items)
        return BatchReply(items).to_bytes()

    def _handle_glue_batch(self, payload: bytes) -> bytes:
        """Serve one capability-processed BatchRequest.

        The stack un-processes the whole record once, every
        sub-invocation dispatches, and the stack processes the combined
        BatchReply once — the server half of the per-call capability
        cost amortisation."""
        glue_id, cap_types, processed = decode_glue_envelope(payload)
        with self._lock:
            stack = self.glue_stacks.get(glue_id)
        meta = RequestMeta()
        if stack is None:
            bare = encode_reply_exception(
                self.marshaller,
                CapabilityError(f"unknown glue stack {glue_id!r}"))
            return encode_glue_reply(GLUE_REPLY_BARE, bare)
        try:
            stack.check_types(cap_types)
            inner = stack.unprocess_request(processed, meta)
            request = BatchRequest.from_bytes(inner)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            bare = encode_reply_exception(self.marshaller, exc)
            return encode_glue_reply(GLUE_REPLY_BARE, bare)
        items = tuple((sub_id, self.dispatch(bytes(sub), meta))
                      for sub_id, sub in request.items)
        reply = BatchReply(items).to_bytes()
        try:
            out = stack.process_reply(reply, meta)
        except Exception as exc:  # noqa: BLE001
            bare = encode_reply_exception(self.marshaller, exc)
            return encode_glue_reply(GLUE_REPLY_BARE, bare)
        return encode_glue_reply(GLUE_REPLY_PROCESSED, out)

    def _handle_glue(self, payload: bytes) -> bytes:
        glue_id, cap_types, processed = decode_glue_envelope(payload)
        with self._lock:
            stack = self.glue_stacks.get(glue_id)
        meta = RequestMeta()
        if stack is None:
            bare = encode_reply_exception(
                self.marshaller,
                CapabilityError(f"unknown glue stack {glue_id!r}"))
            return encode_glue_reply(GLUE_REPLY_BARE, bare)
        try:
            stack.check_types(cap_types)
            inner = stack.unprocess_request(processed, meta)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            bare = encode_reply_exception(self.marshaller, exc)
            return encode_glue_reply(GLUE_REPLY_BARE, bare)
        reply = self.dispatch(inner, meta)
        try:
            out = stack.process_reply(reply, meta)
        except Exception as exc:  # noqa: BLE001
            bare = encode_reply_exception(self.marshaller, exc)
            return encode_glue_reply(GLUE_REPLY_BARE, bare)
        return encode_glue_reply(GLUE_REPLY_PROCESSED, out)

    # -- control surface -----------------------------------------------------------

    def _handle_control(self, payload: bytes) -> bytes:
        """Small marshalled-dict control protocol.

        Ops:

        ``make_glue`` — register a capability stack proposed by a client
        (dynamic capability attachment, §4: capabilities "can also be
        changed dynamically"); returns the glue entry wire dict.
        ``ping`` — liveness/identity probe.
        """
        m = self.marshaller
        try:
            request = m.loads(payload)
            op = request.get("op")
            if op == "ping":
                reply = {"ok": True, "context_id": self.id,
                         "placement": self.placement.to_wire()}
            elif op == "make_glue":
                entry = self.make_glue_entry(
                    request["capabilities"],
                    applicability=request.get("applicability"))
                reply = {"ok": True, "entry": entry.to_wire()}
            else:
                reply = {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return m.dumps(reply)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Operational snapshot: placement, transports, exports, glue
        stacks, forwards, and load — the ops-facing face of Open
        Implementation."""
        with self._lock:
            servants = {
                oid: {
                    "interface": rec.spec.name,
                    "methods": list(rec.spec.method_names()),
                    "migratable": rec.migratable,
                    "glue_stacks": [gid for gid, _d in rec.glue],
                    "acl": rec.acl is not None,
                }
                for oid, rec in self.servants.items()
            }
            forwards = {oid: oref.context_id
                        for oid, oref in self.forwards.items()}
            stacks = {gid: [c.type_name for c in stack.capabilities]
                      for gid, stack in self.glue_stacks.items()}
        return {
            "context_id": self.id,
            "placement": self.placement.to_wire(),
            "simulated": self.sim is not None,
            "encoding": self.encoding,
            "transports": sorted(self.transports),
            "pool": self.proto_pool.ids(),
            "servants": servants,
            "forwards": forwards,
            "glue_stacks": stacks,
            "breakers_open": self.breakers.open_keys(),
            "retry_budgets": self.retry_budgets.snapshot(),
            "pushback": self.pushback.snapshot(),
            "admission": self.admission.snapshot(),
            "load": {
                "total_requests": self.monitor.total_requests,
                "busy_fraction": self.monitor.load,
            },
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def stop(self) -> None:
        self.server.stop()
        with self._lock:
            executors = [self._executor, self._hedge_executor]
            self._executor = None
            self._hedge_executor = None
        for executor in executors:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Context {self.id} machine={self.placement.machine!r} "
                f"objects={len(self.servants)}>")
