"""Cost-aware protocol selection: an extension beyond first-match.

The paper's selection rule is ordinal (first applicable match, §3.2) and
leaves "which order is best" to whoever built the OR.  Its companion
EMOP work points toward *adaptive utilization of communication
resources* — so this module implements the natural next step: a
:class:`CostAwarePolicy` that, when a network simulator is available,
*predicts* each applicable entry's cost for a reference payload — wire
time along the actual route plus modelled capability CPU — and picks the
cheapest.  Without a simulator it degrades to first-match, so it is safe
as a drop-in default.

This is the ABL-POLICY ablation's subject: against a well-ordered OR it
matches first-match exactly; against an adversarially ordered OR it
recovers the good choice that first-match misses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.objref import ProtocolEntry
from repro.core.selection import (
    FirstMatchPolicy,
    Locality,
    SelectionPolicy,
)
__all__ = ["CostAwarePolicy"]

#: Capability cost-kind per bucket, mirroring Capability.cost_kind.
_CAP_COST_KINDS = {
    "encryption": "cipher",
    "auth": "digest",
    "integrity": "digest",
    "compression": "compress",
    "quota": None,
    "lease": None,
    "tracing": None,
    "padding": "memcpy",
}


class CostAwarePolicy(SelectionPolicy):
    """Pick the applicable entry with the lowest predicted request cost.

    Parameters
    ----------
    context:
        The client context; supplies the simulator, the local machine,
        and the CPU model.  May be a wall-clock context, in which case
        the policy behaves exactly like :class:`FirstMatchPolicy`.
    reference_bytes:
        Payload size the prediction is evaluated at (pick the workload's
        typical message size).  Ties break toward OR order.
    """

    def __init__(self, context, reference_bytes: int = 65536):
        if reference_bytes <= 0:
            raise ValueError("reference_bytes must be positive")
        self.context = context
        self.reference_bytes = reference_bytes
        self._fallback = FirstMatchPolicy()

    # -- cost model ----------------------------------------------------------

    def predict_cost(self, entry: ProtocolEntry) -> Optional[float]:
        """Predicted one-way request cost in virtual seconds, or ``None``
        when no prediction is possible (no simulator / unknown machine)."""
        sim = getattr(self.context, "sim", None)
        machine = getattr(self.context, "machine", None)
        if sim is None or machine is None:
            return None
        target_name = entry.proto_data.get("machine")
        if not target_name or \
                target_name not in sim.topology.machines:
            return None
        target = sim.topology.machine(target_name)
        n = self.reference_bytes

        if entry.proto_id == "shm":
            wire = sim.topology.loopback.transfer_time(n) \
                if machine.name == target.name else float("inf")
        else:
            from repro.simnet.linktypes import TCP_LOOPBACK

            wire = sim.transfer_duration(machine, target, n,
                                         loopback=TCP_LOOPBACK)
        cpu = machine.cpu.memcpy_cost(n)
        for descriptor in entry.proto_data.get("capabilities", []):
            kind = _CAP_COST_KINDS.get(descriptor.get("type"))
            if kind is None:
                continue
            cost_fn = getattr(machine.cpu, f"{kind}_cost", None)
            if cost_fn is not None:
                # Client-side processing plus the server's unprocessing.
                cpu += 2 * cost_fn(n)
        return wire + cpu

    # -- SelectionPolicy interface ---------------------------------------------

    def select(self, entries: List[ProtocolEntry], pool_ids, locality:
               Locality, applicable) -> ProtocolEntry:
        allowed = set(pool_ids)
        candidates = [e for e in entries
                      if e.proto_id in allowed and applicable(e)]
        if not candidates:
            # Delegate for the detailed error message.
            return self._fallback.select(entries, pool_ids, locality,
                                         applicable)
        scored = []
        for index, entry in enumerate(candidates):
            cost = self.predict_cost(entry)
            if cost is None:
                # No prediction possible anywhere -> pure first-match.
                return candidates[0]
            scored.append((cost, index, entry))
        scored.sort(key=lambda t: (t[0], t[1]))
        return scored[0][2]
