"""The glue protocol: capability stacks around a real protocol (§4.1-4.2).

"A glue protocol object is a special kind of protocol object that can be
used to hold capab-objects in a specific order. ... A glue object does
not contain any communication mechanism but depends on a real protocol
object to do the actual communication."

Wire shape of a glue request (Figure 2's arrows, serialized)::

    XDR: string glue_id
         array<string> capability types     (as applied, outermost last)
         opaque processed_payload

The client half applies capabilities in stack order; the server glue
class (registered per export under ``glue_id``) un-processes them in
reverse, dispatches the inner invocation, then processes the reply back
out through the same stack.

Glue proto-data::

    {"glue_id": ..., "capabilities": [descriptor...],
     "inner": <ProtocolEntry wire dict>, "machine": ...}

Applicability: "the logical AND of all its constituent capabilities"
(§4.3) — AND'd, additionally, with the inner protocol's own rule.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.capabilities.base import Capability, make_capability
from repro.core.objref import ProtocolEntry
from repro.core.protocol import (
    GLUE_BATCH_HANDLER,
    GLUE_HANDLER,
    ProtocolClass,
    ProtocolClient,
    get_proto_class,
    register_proto_class,
)
from repro.core.request import (
    Invocation,
    RequestMeta,
    decode_reply,
    encode_invocation,
)
from repro.core.selection import Locality, rule_applies
from repro.exceptions import CapabilityError, ProtocolError
from repro.serialization.marshal import BatchReply, BatchRequest
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["GlueProtocol", "GlueClient", "ServerGlueStack",
           "encode_glue_envelope", "decode_glue_envelope",
           "encode_glue_reply", "decode_glue_reply",
           "GLUE_REPLY_PROCESSED", "GLUE_REPLY_BARE"]

#: Glue reply flag values: PROCESSED replies went through the server's
#: capability stack; BARE replies did not (server-side capability
#: processing failed before a usable stack context existed) and must be
#: decoded directly.
GLUE_REPLY_PROCESSED = 0
GLUE_REPLY_BARE = 1


def encode_glue_reply(flag: int, payload: bytes) -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(flag)
    enc.pack_opaque(payload)
    return enc.getvalue()


def decode_glue_reply(data) -> tuple[int, bytes]:
    dec = XdrDecoder(data)
    flag = dec.unpack_uint()
    return flag, bytes(dec.unpack_opaque())


def encode_glue_envelope(glue_id: str, cap_types: List[str],
                         payload: bytes) -> bytes:
    enc = XdrEncoder()
    enc.pack_string(glue_id)
    enc.pack_array(cap_types, enc.pack_string)
    enc.pack_opaque(payload)
    return enc.getvalue()


def decode_glue_envelope(data) -> tuple[str, List[str], bytes]:
    dec = XdrDecoder(data)
    glue_id = dec.unpack_string()
    cap_types = dec.unpack_array(dec.unpack_string)
    payload = bytes(dec.unpack_opaque())
    return glue_id, cap_types, payload


class GlueClient(ProtocolClient):
    """Client glue object G of Figure 2."""

    def __init__(self, entry: ProtocolEntry, context):
        super().__init__(entry, context)
        descriptors = entry.proto_data.get("capabilities", [])
        if not descriptors:
            raise ProtocolError("glue entry has no capabilities")
        self.capabilities: List[Capability] = [
            make_capability(d, context, "client") for d in descriptors]
        inner_wire = entry.proto_data.get("inner")
        if not inner_wire:
            raise ProtocolError("glue entry has no inner protocol")
        self.inner_entry = ProtocolEntry.from_wire(inner_wire)
        inner_cls = get_proto_class(self.inner_entry.proto_id)
        self.inner = inner_cls.make_client(self.inner_entry, context)
        self.glue_id = entry.proto_data.get("glue_id")
        if not self.glue_id:
            raise ProtocolError("glue entry has no glue_id")
        # Marshal with the inner protocol's encoding.
        self.marshaller = self.inner.marshaller

    def _pinned_priority(self) -> Optional[int]:
        """The admission class pinned by this stack's capabilities (a
        :class:`~repro.core.capabilities.priority.PriorityCapability`),
        or None.  A pinned class overrides the caller's per-GP one: the
        *connection's* class is part of the negotiated contract."""
        for cap in self.capabilities:
            pinned = getattr(cap, "admission_class", None)
            if pinned is not None:
                return int(pinned)
        return None

    def invoke(self, invocation: Invocation) -> Any:
        priority, remaining = self._admission_hints(invocation)
        pinned = self._pinned_priority()
        if pinned is not None:
            priority = pinned
        meta = RequestMeta(direction="request")
        payload = encode_invocation(self.marshaller, invocation)
        self.context.charge_cost("memcpy", len(payload))
        for cap in self.capabilities:
            self.context.charge_cost(cap.cost_kind, len(payload))
            payload = cap.process(payload, meta)
        envelope = encode_glue_envelope(
            self.glue_id, [c.type_name for c in self.capabilities], payload)
        reply = self.inner.call_raw(GLUE_HANDLER, envelope,
                                    oneway=invocation.oneway,
                                    priority=priority, deadline=remaining)
        if invocation.oneway:
            return None
        flag, data = decode_glue_reply(reply)
        meta.direction = "reply"
        if flag == GLUE_REPLY_PROCESSED:
            for cap in reversed(self.capabilities):
                self.context.charge_cost(cap.cost_kind, len(data))
                data = cap.unprocess_reply(data, meta)
        return decode_reply(self.marshaller, data)

    def invoke_batch(self, payloads, priority: int = 0,
                     deadline: Optional[float] = None) -> list:
        """Batched glue calls: the capability stack runs **once** over
        the whole multi-request record instead of once per call.

        This is where batching pays on capability-carrying protocols:
        crypto/compression/integrity cost has a fixed per-invocation
        component (setup, padding, headers) that N coalesced calls now
        split N ways, exactly the per-message-overhead amortisation the
        aggregation literature (HAM, HCA) prescribes below the object
        layer.
        """
        pinned = self._pinned_priority()
        if pinned is not None:
            priority = pinned
        meta = RequestMeta(direction="request")
        data = BatchRequest.of(payloads).to_bytes()
        self.context.charge_cost("memcpy", len(data))
        for cap in self.capabilities:
            self.context.charge_cost(cap.cost_kind, len(data))
            data = cap.process(data, meta)
        envelope = encode_glue_envelope(
            self.glue_id, [c.type_name for c in self.capabilities], data)
        reply = self.inner.call_raw(GLUE_BATCH_HANDLER, envelope,
                                    priority=priority, deadline=deadline)
        flag, data = decode_glue_reply(reply)
        meta.direction = "reply"
        if flag == GLUE_REPLY_PROCESSED:
            for cap in reversed(self.capabilities):
                self.context.charge_cost(cap.cost_kind, len(data))
                data = cap.unprocess_reply(data, meta)
        else:
            # BARE: server-side capability processing failed before the
            # batch was even opened — one envelope for the whole batch.
            decode_reply(self.marshaller, data)  # raises the remote error
            raise ProtocolError("bare glue batch reply carried no error")
        return BatchReply.from_bytes(data).in_order(len(payloads))

    def close(self) -> None:
        self.inner.close()
        super().close()


class ServerGlueStack:
    """Server glue class GC of Figure 2: the server's own copies of the
    capabilities, keyed by glue id in the serving context."""

    def __init__(self, glue_id: str, descriptors: List[dict], context):
        self.glue_id = glue_id
        self.descriptors = [dict(d) for d in descriptors]
        self.capabilities: List[Capability] = [
            make_capability(d, context, "server") for d in descriptors]
        self.context = context

    def check_types(self, cap_types: List[str]) -> None:
        expected = [c.type_name for c in self.capabilities]
        if list(cap_types) != expected:
            raise CapabilityError(
                f"glue stack mismatch: request says {cap_types}, "
                f"server has {expected}")

    def unprocess_request(self, payload: bytes,
                          meta: RequestMeta) -> bytes:
        data = payload
        for cap in reversed(self.capabilities):
            self.context.charge_cost(cap.cost_kind, len(data))
            data = cap.unprocess(data, meta)
        return data

    def process_reply(self, payload: bytes, meta: RequestMeta) -> bytes:
        data = payload
        meta.direction = "reply"
        for cap in self.capabilities:
            self.context.charge_cost(cap.cost_kind, len(data))
            data = cap.process_reply(data, meta)
        return data


@register_proto_class
class GlueProtocol(ProtocolClass):
    """The registered proto-class for glue entries."""

    proto_id = "glue"
    default_applicability = "always"
    client_cls = GlueClient

    @classmethod
    def applicable(cls, entry: ProtocolEntry, locality: Locality,
                   context) -> bool:
        # AND of all constituent capabilities (§4.3) ...
        from repro.core.capabilities.base import CAPABILITY_TYPES

        for descriptor in entry.proto_data.get("capabilities", []):
            cap_cls = CAPABILITY_TYPES.get(descriptor.get("type"))
            if cap_cls is None:
                return False
            rule = descriptor.get("applicability",
                                  cap_cls.default_applicability)
            if not rule_applies(rule, locality):
                return False
        # ... AND the carrying protocol must itself be usable.
        inner_wire = entry.proto_data.get("inner")
        if inner_wire:
            inner = ProtocolEntry.from_wire(inner_wire)
            inner_cls = get_proto_class(inner.proto_id)
            if not inner_cls.applicable(inner, locality, context):
                return False
        # ... AND any explicit rule on the glue entry itself.
        return rule_applies(cls.applicability_rule(entry), locality)
