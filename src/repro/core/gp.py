"""Global pointers (§3.1).

"An Open HPC++ GP contains an OR representing a remote server object.  As
different GPs to a single server object may contain ORs with different
protocol tables, the GPs may support different communication protocols."

A :class:`GlobalPointer` is the client proxy:

* **selection per request** — every invocation re-runs protocol selection
  against the GP's own OR copy and proto-pool ("the system selects an
  appropriate proto-object for each individual remote request", §3.2);
  connected proto-objects are cached per table entry so repeated use of
  the same choice does not reconnect;
* **migration adaptivity** — a MOVED reply updates the OR in place and
  re-selects, which is how Figure 4's protocol sequence happens without
  any client code changes;
* **dynamic capabilities** — ``add_capability_stack`` negotiates a new
  glue stack with the server's control surface and prepends the entry to
  this GP's table (capabilities "can also be changed dynamically", §1);
* **openness** — ``pool``, ``policy``, and the OR's ``protocols`` list
  are public and mutable; ``select_protocol`` exposes the decision;
* **resilience** — transport failures are retried under a
  :class:`~repro.core.resilience.RetryPolicy` with *protocol failover*:
  the failed entry is demoted for the rest of the call and selection
  re-runs, so the next applicable table entry carries the retry — the
  ordered protocol table *is* the redundancy the paper promises.  A
  failed row also sits in a *penalty box* for ``penalty_seconds``, so
  later calls skip a dead replica row instead of re-paying its doomed
  first attempt (breakers cannot isolate one row of a merged replica
  table — every row shares a proto_id).  Per-``(context, proto)``
  circuit breakers shed flapping peers before they burn retry budget,
  and an idempotence guard refuses to re-issue a request that may have
  reached dispatch unless the method is marked ``retry_safe``;
* **shared retry budget** — every backoff retry must also be covered by
  the calling context's per-peer token-bucket
  :class:`~repro.core.resilience.RetryBudget`, so N concurrent
  ``invoke_async`` calls against one flapping peer share one bounded
  retry pool instead of multiplying load N-fold;
* **hedged requests** — for ``retry_safe`` methods under an enabled
  :class:`~repro.core.resilience.HedgePolicy`, a primary attempt that
  outlives the tracked latency percentile is raced by a second attempt
  on the next-best applicable table entry; the first reply wins and the
  loser's connection is torn down.  This exploits the adaptive protocol
  table *before* the timeout instead of after it.

Thread-safety: ``invoke_async`` runs ``_invoke`` on the context's shared
executor, so the invoke path snapshots the OR (identity, interface, and
protocol table) once per logical call under ``self._lock``; all table
mutators (``update_reference``, ``add_capability_stack``,
``drop_protocol``) swap in *new* lists under the same lock rather than
editing the published one in place.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import wait as _await_futures
from typing import Any, Dict, List, Optional, Tuple

from repro.admission.deadline import ambient_deadline
from repro.core.context import CONTROL_HANDLER, Context, Placement
from repro.core.instrumentation import GLOBAL_HOOKS, HookBus
from repro.core.objref import ObjectReference, ProtocolEntry
from repro.core.protocol import ProtocolClient, get_proto_class
from repro.core.proto_pool import ProtocolPool
from repro.core.request import Invocation, encode_invocation
from repro.core.resilience import (
    AttemptRecord,
    HedgePolicy,
    RetryPolicy,
    sleep_on,
)
from repro.core.selection import FirstMatchPolicy, Locality, SelectionPolicy
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    HpcError,
    InterfaceError,
    NoApplicableProtocolError,
    ObjectMovedError,
    OverloadError,
    ProtocolError,
    RemoteInvocationError,
    RetryBudgetExhaustedError,
    RetryExhaustedError,
    TransportError,
    UnknownProtocolError,
)
from repro.idl.stubs import make_stub_class

__all__ = ["GlobalPointer"]

#: Bound on MOVED-forwarding hops per invocation; a cycle of forwarding
#: records would otherwise loop forever.
MAX_FORWARD_HOPS = 8


class GlobalPointer:
    """Client proxy for one remote object."""

    def __init__(self, oref: ObjectReference, context: Context,
                 pool: Optional[ProtocolPool] = None,
                 policy: Optional[SelectionPolicy] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breakers=None,
                 hedge_policy: Optional[HedgePolicy] = None,
                 priority: int = 0):
        self.oref = oref.clone()
        self.context = context
        self.pool = pool if pool is not None else context.proto_pool.clone()
        self.policy = policy or FirstMatchPolicy()
        #: Retry/backoff/deadline policy for this GP's invocations.
        self.retry_policy = retry_policy or RetryPolicy()
        #: Circuit breakers; defaults to the context-wide registry so
        #: every GP talking to the same peer shares failure history.
        self.breakers = breakers if breakers is not None \
            else context.breakers
        #: Hedging policy; None falls back to the context-wide default.
        self.hedge_policy = hedge_policy
        #: Admission class stamped on every request from this GP
        #: (0 interactive / 1 batch / 2 best-effort); the server's
        #: admission queue orders and sheds by it.
        self.priority = priority
        # Cached clients, keyed by the id() of their table entry.  The
        # entry itself is kept in the value so the id can never be
        # recycled by the allocator while the client is cached.
        self._clients: Dict[int, Tuple[ProtocolEntry, ProtocolClient]] = {}
        #: Sticky demotion across calls: id(entry) -> clock time until
        #: which the entry is skipped by selection.  Breakers are keyed
        #: by (context, proto) and so cannot isolate one dead replica in
        #: a merged table where every row shares a proto_id; the penalty
        #: box is per-row, so a crashed node stops taxing every call
        #: with a doomed first attempt, yet is re-probed after the TTL.
        self._penalties: Dict[int, float] = {}
        #: How long one failed table row stays penalized (seconds).
        self.penalty_seconds = 1.0
        self._lock = threading.RLock()
        self._closed = False
        #: Futures of in-flight ``invoke_async`` calls, drained by close.
        self._inflight: set = set()
        #: Per-GP observability hooks; GLOBAL_HOOKS fires as well.
        self.hooks = HookBus()

    def _emit(self, kind: str, **data) -> None:
        data.setdefault("object_id", self.oref.object_id)
        self.hooks.emit(kind, **data)
        GLOBAL_HOOKS.emit(kind, **data)

    # ------------------------------------------------------------------
    # placement & selection
    # ------------------------------------------------------------------

    @staticmethod
    def _placement_of(protocols: List[ProtocolEntry]) -> Placement:
        if not protocols:
            raise RemoteInvocationError("OR has an empty protocol table")
        return Placement.from_wire(protocols[0].proto_data)

    def server_placement(self) -> Placement:
        with self._lock:
            protocols = list(self.oref.protocols)
        return self._placement_of(protocols)

    def locality(self) -> Locality:
        return self.context.placement.locality_to(self.server_placement())

    def _entry_applicable(self, entry: ProtocolEntry,
                          locality: Locality) -> bool:
        proto_cls = get_proto_class(entry.proto_id)
        return proto_cls.applicable(entry, locality, self.context)

    def _snapshot(self) -> ObjectReference:
        """The OR to run one logical invocation against.

        ``_invoke`` works exclusively on this snapshot; mutators swap
        ``self.oref`` (or its ``protocols`` list) wholesale under the
        lock, so a snapshot is never edited behind a running call.
        """
        with self._lock:
            if self._closed:
                raise HpcError(
                    f"GlobalPointer to {self.oref.object_id} is closed")
            return ObjectReference(
                object_id=self.oref.object_id,
                context_id=self.oref.context_id,
                interface=self.oref.interface,
                protocols=list(self.oref.protocols),
                version=self.oref.version)

    def _select(self, context_id: str, protocols: List[ProtocolEntry],
                _demoted=frozenset(),
                _ignore_penalties: bool = False) -> ProtocolEntry:
        """Protocol selection over one table snapshot.

        Entries whose ``(context, proto)`` circuit breaker is open are
        shed; ``_demoted`` holds ``id()``\\ s of entries that already
        failed during the current invocation, so a retry falls through
        to the next table row.  Entries sitting in the penalty box
        (failed within the last ``penalty_seconds``) are skipped too —
        unless skipping them leaves nothing, in which case selection
        reruns ignoring penalties so a fully-penalized table degrades to
        plain retry behaviour instead of failing outright.  If selection
        fails *because* of open breakers, the error is a
        :class:`CircuitOpenError` rather than a plain
        no-applicable-protocol failure.
        """
        locality = self.context.placement.locality_to(
            self._placement_of(protocols))
        now = self.context.clock.now()
        shed = []
        penalized = []

        def usable(entry: ProtocolEntry) -> bool:
            if id(entry) in _demoted:
                return False
            if not _ignore_penalties and self._penalties:
                expiry = self._penalties.get(id(entry))
                if expiry is not None:
                    if expiry <= now:
                        self._penalties.pop(id(entry), None)
                    else:
                        penalized.append(entry.proto_id)
                        return False
            if not self.breakers.allow(context_id, entry.proto_id):
                shed.append(entry.proto_id)
                return False
            return self._entry_applicable(entry, locality)

        try:
            return self.policy.select(protocols, self.pool.ids(),
                                      locality, usable)
        except NoApplicableProtocolError as exc:
            if penalized:
                return self._select(context_id, protocols,
                                    _demoted=_demoted,
                                    _ignore_penalties=True)
            if shed and not _demoted:
                raise CircuitOpenError(
                    "all applicable protocols shed by open breakers: "
                    f"{sorted(set(shed))}") from exc
            raise

    def select_protocol(self, _demoted=frozenset()) -> ProtocolEntry:
        """Run protocol selection for the current placement/pool state."""
        with self._lock:
            context_id = self.oref.context_id
            protocols = list(self.oref.protocols)
        return self._select(context_id, protocols, _demoted)

    @property
    def selected_proto_id(self) -> str:
        """Which protocol the next request would use (for inspection)."""
        return self.select_protocol().proto_id

    def describe_selection(self) -> str:
        """Human-readable account of the choice (glue entries include
        their capability types) — the open-implementation peephole."""
        entry = self.select_protocol()
        if entry.proto_id == "glue":
            caps = "+".join(d.get("type", "?")
                            for d in entry.proto_data.get("capabilities", []))
            return f"glue[{caps}]"
        return entry.proto_id

    def _client_for(self, entry: ProtocolEntry) -> ProtocolClient:
        key = id(entry)
        with self._lock:
            cached = self._clients.get(key)
            if cached is None:
                proto_cls = get_proto_class(entry.proto_id)
                client = proto_cls.make_client(entry, self.context)
                self._clients[key] = (entry, client)
                return client
            return cached[1]

    def _fresh_client(self, entry: ProtocolEntry) -> ProtocolClient:
        """An uncached client (hedge legs get their own connection so a
        racing attempt can never interleave frames with the primary's)."""
        proto_cls = get_proto_class(entry.proto_id)
        return proto_cls.make_client(entry, self.context)

    def _penalize(self, entry: ProtocolEntry) -> None:
        """Put a failed table row in the penalty box: selection skips it
        until the TTL lapses (or a later success clears it early)."""
        if self.penalty_seconds > 0:
            self._penalties[id(entry)] = \
                self.context.clock.now() + self.penalty_seconds

    def _evict_client(self, entry: ProtocolEntry) -> None:
        """Drop the cached client for an entry whose channel died (or
        lost a hedge race), so the next use of that entry redials
        instead of reusing a broken connection."""
        with self._lock:
            cached = self._clients.pop(id(entry), None)
        if cached is not None:
            try:
                cached[1].close()
            except Exception:  # noqa: BLE001 - already broken
                pass

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def _may_retry(self, oref: ObjectReference, method: str,
                   dispatched: bool) -> bool:
        """The idempotence guard: a request that provably never left
        this host is always retryable; one that may have reached
        dispatch is retried only for ``retry_safe`` methods (or under a
        ``retry_unsafe`` policy)."""
        if not dispatched or self.retry_policy.retry_unsafe:
            return True
        spec = oref.interface.methods.get(method)
        return bool(spec is not None and spec.retry_safe)

    def _select_for_attempt(self, context_id: str, protocols, demoted: set,
                            attempts) -> ProtocolEntry:
        """Selection for one attempt; when every entry has been demoted
        during this call, the demotion slate is wiped and the whole
        table becomes eligible again (the retry budget, not the table
        length, bounds the loop)."""
        try:
            return self._select(context_id, protocols, _demoted=demoted)
        except CircuitOpenError as exc:
            exc.attempts = list(attempts)
            raise
        except NoApplicableProtocolError:
            if not demoted:
                raise
            demoted.clear()
            try:
                return self._select(context_id, protocols)
            except CircuitOpenError as exc:
                exc.attempts = list(attempts)
                raise

    # -- hedging ---------------------------------------------------------------

    def _hedge_policy_for(self, oref: ObjectReference, method: str,
                          oneway: bool) -> Optional[HedgePolicy]:
        """The hedge policy governing this call, or None.

        Only ``retry_safe`` methods may be hedged — a hedge is by
        construction a duplicate dispatch, exactly what the idempotence
        guard exists to prevent for unsafe methods.
        """
        if oneway:
            return None
        policy = self.hedge_policy if self.hedge_policy is not None \
            else getattr(self.context, "hedge_policy", None)
        if policy is None or not policy.enabled:
            return None
        spec = oref.interface.methods.get(method)
        if spec is None or not spec.retry_safe:
            return None
        return policy

    def _hedge_entry(self, context_id: str, protocols, primary: ProtocolEntry,
                     demoted: set) -> ProtocolEntry:
        """The next-best applicable entry to race against ``primary``;
        falls back to ``primary`` itself (over a fresh connection) when
        the table holds no alternative."""
        try:
            return self._select(context_id, protocols,
                                _demoted=frozenset(demoted) | {id(primary)})
        except (NoApplicableProtocolError, CircuitOpenError):
            return primary

    def _attempt(self, oref: ObjectReference, context_id: str, protocols,
                 entry: ProtocolEntry, client: ProtocolClient,
                 invocation: Invocation, method: str,
                 demoted: set) -> Tuple[Any, float]:
        """Run one attempt, hedged when the policy calls for it.

        Returns ``(result, effective latency seconds)``.  Failures
        propagate (the primary leg's error when both legs fail) so the
        caller's retry/failover machinery stays in charge.
        """
        clock = self.context.clock
        policy = self._hedge_policy_for(oref, method, invocation.oneway)
        if policy is not None \
                and self.context.pushback.active(context_id):
            # Racing a *second* request at a server that just pushed
            # back is anti-cooperative; hold hedging until the
            # retry-after window has passed.
            policy = None
        delay = None
        if policy is not None:
            tracker = self.context.latencies.tracker(context_id,
                                                     entry.proto_id)
            delay = policy.hedge_delay(tracker)
        if delay is None:
            started = clock.now()
            result = client.invoke(invocation)
            return result, clock.now() - started
        if self.context.sim is not None:
            return self._hedged_sim(context_id, protocols, entry, client,
                                    invocation, method, demoted, delay)
        return self._hedged_wall(context_id, protocols, entry, client,
                                 invocation, method, demoted, delay)

    def _hedged_sim(self, context_id: str, protocols, entry: ProtocolEntry,
                    client: ProtocolClient, invocation: Invocation,
                    method: str, demoted: set,
                    delay: float) -> Tuple[Any, float]:
        """Hedging in the synchronous virtual world.

        The simulator runs one attempt at a time, so the race is
        resolved *counterfactually*: run the primary, and if its virtual
        duration exceeded the hedge delay — i.e. the hedge would have
        launched — run the hedge leg too and settle on what a concurrent
        world would have seen: ``min(d_primary, delay + d_hedge)``.  The
        global clock still pays for both legs (hedges are real extra
        load), but the *call's* effective latency, the ``request`` event
        duration, and the latency tracker all reflect the winner — which
        is what makes seeded tail-latency assertions meaningful.
        """
        clock = self.context.clock
        started = clock.now()
        primary_exc: Optional[Exception] = None
        result = None
        try:
            result = client.invoke(invocation)
        except (TransportError, ProtocolError) as exc:
            primary_exc = exc
        primary_latency = clock.now() - started
        if primary_latency <= delay:
            # The hedge would never have launched; surface the primary
            # outcome unchanged (failures go to the normal retry loop).
            if primary_exc is not None:
                raise primary_exc
            return result, primary_latency
        hedge_entry = self._hedge_entry(context_id, protocols, entry,
                                        demoted)
        self._emit("hedge", method=method, proto_id=entry.proto_id,
                   hedge_proto=hedge_entry.proto_id, delay=delay)
        hedge_client = self._fresh_client(hedge_entry)
        hedge_started = clock.now()
        hedge_exc: Optional[Exception] = None
        hedge_result = None
        try:
            hedge_result = hedge_client.invoke(invocation)
        except (TransportError, ProtocolError) as exc:
            hedge_exc = exc
        finally:
            try:
                hedge_client.close()
            except Exception:  # noqa: BLE001 - loser teardown
                pass
        hedged_latency = delay + (clock.now() - hedge_started)
        if hedge_exc is None and (primary_exc is not None
                                  or hedged_latency < primary_latency):
            self.breakers.record_success(context_id, hedge_entry.proto_id)
            self._emit("hedge_win", method=method,
                       proto_id=hedge_entry.proto_id,
                       primary_proto=entry.proto_id,
                       latency=hedged_latency,
                       primary_latency=None if primary_exc is not None
                       else primary_latency)
            return hedge_result, hedged_latency
        if primary_exc is not None:
            # Both legs failed: the primary error drives retry/failover.
            raise primary_exc
        if hedge_exc is not None:
            self.breakers.record_failure(context_id, hedge_entry.proto_id)
        self._emit("hedge_loss", method=method, proto_id=entry.proto_id,
                   hedge_proto=hedge_entry.proto_id,
                   latency=primary_latency)
        return result, primary_latency

    def _hedged_wall(self, context_id: str, protocols, entry: ProtocolEntry,
                     client: ProtocolClient, invocation: Invocation,
                     method: str, demoted: set,
                     delay: float) -> Tuple[Any, float]:
        """Hedging over real transports: a genuine two-leg race on the
        context's hedge executor.  First reply wins; the loser's client
        is closed so its connection (and thread) unwind promptly."""
        clock = self.context.clock
        executor = self.context.hedge_executor
        started = clock.now()
        primary = executor.submit(client.invoke, invocation)
        done, _ = _await_futures([primary], timeout=delay)
        if primary in done:
            return primary.result(), clock.now() - started
        hedge_entry = self._hedge_entry(context_id, protocols, entry,
                                        demoted)
        self._emit("hedge", method=method, proto_id=entry.proto_id,
                   hedge_proto=hedge_entry.proto_id, delay=delay)
        hedge_client = self._fresh_client(hedge_entry)
        hedge = executor.submit(hedge_client.invoke, invocation)

        def abandon(future: Future, loser_close) -> None:
            future.cancel()

            def reap(f: Future) -> None:
                try:
                    f.exception()
                except Exception:  # noqa: BLE001 - incl. CancelledError
                    pass
                loser_close()
            future.add_done_callback(reap)

        outcomes: Dict[Future, Optional[BaseException]] = {}
        pending = {primary, hedge}
        while pending:
            done, pending = _await_futures(pending,
                                           return_when=FIRST_COMPLETED)
            for future in done:
                outcomes[future] = future.exception()
            if outcomes.get(primary, False) is None:
                # Primary succeeded: it wins ties by construction.
                self._emit("hedge_loss", method=method,
                           proto_id=entry.proto_id,
                           hedge_proto=hedge_entry.proto_id,
                           latency=clock.now() - started)
                if hedge not in outcomes:
                    abandon(hedge, lambda: _close_quietly(hedge_client))
                else:
                    _close_quietly(hedge_client)
                return primary.result(), clock.now() - started
            if outcomes.get(hedge, False) is None:
                latency = clock.now() - started
                self.breakers.record_success(context_id,
                                             hedge_entry.proto_id)
                self._emit("hedge_win", method=method,
                           proto_id=hedge_entry.proto_id,
                           primary_proto=entry.proto_id, latency=latency,
                           primary_latency=None)
                result = hedge.result()
                _close_quietly(hedge_client)
                if primary not in outcomes:
                    # Tear the primary's connection down so its thread
                    # unwinds; the next use of the entry redials.
                    abandon(primary, lambda: self._evict_client(entry))
                return result, latency
            if hedge in outcomes and outcomes[hedge] is not None:
                self.breakers.record_failure(context_id,
                                             hedge_entry.proto_id)
        # Both legs failed: surface the primary error to the retry loop.
        _close_quietly(hedge_client)
        raise outcomes[primary]

    # -- batching --------------------------------------------------------------

    def batch(self):
        """An explicit batching scope: queue invocations, flush them as
        one multi-request wire record on exit.  Deterministic in both
        real and simulated worlds (see
        :class:`~repro.core.batching.BatchScope`)."""
        from repro.core.batching import BatchScope

        return BatchScope(self)

    def _maybe_coalesce(self, oref: ObjectReference,
                        invocation: Invocation):
        """Enqueue this call on the peer's coalescer when transparent
        batching applies; returns the member future, or None for the
        direct path (policy off, simulated world, oversized payload, or
        a selection failure the direct path should surface itself)."""
        policy = getattr(self.context, "batch_policy", None)
        if policy is None or not policy.enabled \
                or self.context.sim is not None:
            return None
        try:
            entry = self._select(oref.context_id, oref.protocols)
            client = self._client_for(entry)
            payload = encode_invocation(client.marshaller, invocation)
        except HpcError:
            return None
        if len(payload) > policy.max_item_bytes:
            return None
        coalescer = self.context.batching.coalescer(oref.context_id,
                                                    entry.proto_id)
        self._emit("selection", proto_id=entry.proto_id, entry=entry,
                   method=invocation.method)
        # Oneway calls flush eagerly: the caller will not wait out a
        # window, and a process exiting right after a oneway must not
        # leave the batch (its own call included) stranded.
        return coalescer.submit(self, oref, entry, client, invocation,
                                payload, eager=invocation.oneway)

    # -- the recovery loop -----------------------------------------------------

    def _invoke(self, method: str, args: tuple,
                oneway: bool = False, _no_batch: bool = False) -> Any:
        oref = self._snapshot()
        # Fail fast on interface violations without a round trip.
        if method not in oref.interface.methods:
            raise InterfaceError(
                f"interface {oref.interface.name!r} does not expose "
                f"{method!r}")
        policy = self.retry_policy
        clock = self.context.clock
        # The call's absolute deadline: the tighter of the policy's
        # per-call budget and any ambient deadline this thread is
        # dispatching under, so a nested invoke made from a servant
        # inherits the caller's *shrunken* remainder rather than a
        # fresh full budget.
        deadline = None if policy.deadline is None \
            else clock.now() + policy.deadline
        inherited = ambient_deadline()
        if inherited is not None:
            deadline = inherited if deadline is None \
                else min(deadline, inherited)
        invocation = Invocation(object_id=oref.object_id,
                                method=method, args=tuple(args),
                                oneway=oneway, priority=self.priority,
                                deadline=deadline)
        if not _no_batch:
            member = self._maybe_coalesce(oref, invocation)
            if member is not None:
                return member.result()
        context_id = oref.context_id
        # The shared per-peer retry budget: the first attempt is offered
        # load and deposits; only retries withdraw.
        budget = self.context.retry_budgets.get(context_id)
        budget.deposit()
        attempts: list = []
        demoted: set = set()          # id(entry) failed during this call
        failed_entry: Optional[ProtocolEntry] = None
        failures = 0
        hops = 0
        while True:
            entry = self._select_for_attempt(context_id, oref.protocols,
                                             demoted, attempts)
            if failed_entry is not None and entry is not failed_entry:
                self._emit("failover", method=method,
                           from_proto=failed_entry.proto_id,
                           to_proto=entry.proto_id, attempt=failures + 1)
            client = self._client_for(entry)
            self._emit("selection", proto_id=entry.proto_id, entry=entry,
                       method=method)
            started = clock.now()
            try:
                result, duration = self._attempt(
                    oref, context_id, oref.protocols, entry, client,
                    invocation, method, demoted)
            except ObjectMovedError as moved:
                if moved.forward is None:
                    raise
                hops += 1
                if hops >= MAX_FORWARD_HOPS:
                    raise RemoteInvocationError(
                        f"object {oref.object_id} still moving after "
                        f"{MAX_FORWARD_HOPS} forwarding hops")
                self._emit("moved", forward=moved.forward,
                           from_context=context_id,
                           to_context=moved.forward.context_id)
                self.update_reference(moved.forward)
                # Patch the context's resolver cache: every cached
                # alias of this object follows the forwarding notice,
                # so sibling GPs resolving by name skip the stale hop.
                resolver = getattr(self.context, "resolver", None)
                if resolver is not None:
                    resolver.note_moved(oref.object_id, moved.forward)
                # New OR, new table: re-snapshot, demotions no longer
                # apply, and retries now charge the new peer's budget.
                oref = self._snapshot()
                context_id = oref.context_id
                budget = self.context.retry_budgets.get(context_id)
                demoted.clear()
                failed_entry = None
                continue
            except (TransportError, ProtocolError) as exc:
                if isinstance(exc, (UnknownProtocolError,
                                    NoApplicableProtocolError)):
                    raise  # configuration errors, not link failures
                self._emit("request", method=method,
                           proto_id=entry.proto_id, outcome="error",
                           error=exc, duration=clock.now() - started)
                overload = isinstance(exc, OverloadError)
                if overload:
                    # Pushback, not failure: the peer *answered* — it is
                    # alive but saturated.  No breaker strike, no client
                    # eviction (the channel is healthy), and no entry
                    # demotion (every table entry reaches the same
                    # saturated server); just note the hint so every GP
                    # bound to this peer backs off and stops hedging.
                    self.context.pushback.note(context_id,
                                               exc.retry_after)
                else:
                    self.breakers.record_failure(context_id,
                                                 entry.proto_id)
                    self._evict_client(entry)
                    self._penalize(entry)
                failures += 1
                dispatched = bool(
                    getattr(exc, "request_sent", False)
                    or getattr(exc, "request_dispatched", False))
                attempts.append(AttemptRecord(
                    attempt=failures, proto_id=entry.proto_id,
                    error=f"{type(exc).__name__}: {exc}",
                    at=clock.now(), dispatched=dispatched))
                if not isinstance(exc, TransportError):
                    # Deterministic protocol-level failure (bad address
                    # list, unusable entry): retrying the same entry
                    # cannot help, and neither can waiting.  Fail over
                    # to the next table entry if one exists; otherwise
                    # surface the original error, not RetryExhausted.
                    demoted.add(id(entry))
                    failed_entry = entry
                    try:
                        self._select(context_id, oref.protocols,
                                     _demoted=demoted)
                    except (NoApplicableProtocolError, CircuitOpenError):
                        raise exc from None
                    continue
                if not self._may_retry(oref, method, dispatched):
                    raise
                if failures >= policy.max_attempts:
                    raise RetryExhaustedError(
                        f"invocation of {method!r} on "
                        f"{oref.object_id} failed after {failures} "
                        f"attempts", attempts) from exc
                pause = policy.backoff(failures)
                if overload:
                    # Honour the server's retry-after hint: never come
                    # back sooner than it asked, even if backoff is
                    # still short this early in the call.
                    pause = max(pause, exc.retry_after)
                if deadline is not None and clock.now() + pause > deadline:
                    raise DeadlineExceededError(
                        f"deadline of {policy.deadline}s exceeded after "
                        f"{failures} attempts on {method!r}",
                        attempts) from exc
                if not budget.try_withdraw():
                    self._emit("budget_exhausted", method=method,
                               context_id=context_id,
                               proto_id=entry.proto_id,
                               attempt=failures, tokens=budget.tokens)
                    raise RetryBudgetExhaustedError(
                        f"shared retry budget for peer {context_id!r} "
                        f"exhausted after {failures} attempt(s) on "
                        f"{method!r} (retrying would amplify load)",
                        attempts) from exc
                if not overload:
                    demoted.add(id(entry))
                    failed_entry = entry
                self._emit("retry", method=method,
                           proto_id=entry.proto_id, attempt=failures,
                           backoff=pause, error=exc)
                sleep_on(clock, pause)
                continue
            except Exception as exc:
                self._emit("request", method=method,
                           proto_id=entry.proto_id, outcome="error",
                           error=exc, duration=clock.now() - started)
                raise
            self.breakers.record_success(context_id, entry.proto_id)
            self._penalties.pop(id(entry), None)
            self.context.latencies.observe(context_id, entry.proto_id,
                                           duration)
            self._emit("request", method=method, proto_id=entry.proto_id,
                       outcome="ok", duration=duration)
            return result

    def invoke(self, method: str, *args) -> Any:
        """Synchronous remote invocation."""
        return self._invoke(method, args)

    def invoke_oneway(self, method: str, *args) -> None:
        """Fire-and-forget invocation (no reply, errors are dropped)."""
        self._invoke(method, args, oneway=True)

    def invoke_async(self, method: str, *args) -> "Future[Any]":
        """Asynchronous invocation.

        Real transports run on the *context's* shared worker pool (one
        pool per context, not four threads per GP); simulated contexts
        execute inline (the virtual world is synchronous) and return an
        already-completed future, preserving the calling convention.
        """
        if self.context.sim is not None:
            future: Future = Future()
            try:
                future.set_result(self._invoke(method, args))
            except BaseException as exc:  # noqa: BLE001
                future.set_exception(exc)
            return future
        with self._lock:
            if self._closed:
                raise HpcError(
                    f"GlobalPointer to {self.oref.object_id} is closed")
        future = self.context.executor.submit(self._invoke, method, args)
        with self._lock:
            self._inflight.add(future)
        future.add_done_callback(self._inflight.discard)
        return future

    # ------------------------------------------------------------------
    # adaptivity
    # ------------------------------------------------------------------

    def update_reference(self, new_oref: ObjectReference) -> None:
        """Adopt a new OR (migration notice or out-of-band refresh)."""
        if new_oref.object_id != self.oref.object_id:
            raise HpcError("replacement OR names a different object")
        clone = new_oref.clone()
        with self._lock:
            victims = list(self._clients.values())
            self._clients.clear()
            self._penalties.clear()
            self.oref = clone
        for _entry, client in victims:
            _close_quietly(client)

    def add_capability_stack(self, descriptors, *, prefer: bool = True,
                             applicability: Optional[str] = None) -> None:
        """Negotiate a new capability stack with the server and graft the
        resulting glue entry onto this GP's protocol table."""
        nexus_entry = self.oref.entry("nexus")
        if nexus_entry is None:
            raise HpcError(
                "dynamic capabilities need a plain nexus entry to carry "
                "the control request")
        client = self._client_for(nexus_entry)
        m = client.marshaller
        request = {"op": "make_glue",
                   "capabilities": [dict(d) for d in descriptors]}
        if applicability:
            request["applicability"] = applicability
        reply = m.loads(client.call_raw(CONTROL_HANDLER, m.dumps(request)))
        if not reply.get("ok"):
            raise HpcError(f"server refused capability stack: "
                           f"{reply.get('error')}")
        entry = ProtocolEntry.from_wire(reply["entry"])
        with self._lock:
            protocols = list(self.oref.protocols)
            if prefer:
                protocols.insert(0, entry)
            else:
                protocols.append(entry)
            self.oref.protocols = protocols

    def drop_protocol(self, proto_id: str) -> None:
        """Remove every entry of the given protocol from this GP's OR
        and close the cached clients those entries were holding open —
        a dropped protocol must not keep leaking live connections."""
        with self._lock:
            kept: List[ProtocolEntry] = []
            victims: List[ProtocolClient] = []
            for entry in self.oref.protocols:
                if entry.proto_id == proto_id:
                    cached = self._clients.pop(id(entry), None)
                    if cached is not None:
                        victims.append(cached[1])
                else:
                    kept.append(entry)
            self.oref.protocols = kept
        for client in victims:
            _close_quietly(client)

    # ------------------------------------------------------------------
    # ergonomics
    # ------------------------------------------------------------------

    def narrow(self):
        """A typed stub over this GP's interface: remote calls read like
        local ones."""
        stub_cls = make_stub_class(self.oref.interface)
        return stub_cls(
            lambda method, args, oneway: self._invoke(method, args, oneway),
            self.oref.interface)

    def dup(self) -> ObjectReference:
        """A copy of the OR suitable for handing to another process —
        the capability-passing mechanism of §4."""
        return self.oref.clone()

    def ping(self) -> dict:
        """Control-surface liveness probe of the serving context."""
        entry = self.oref.entry("nexus") or self.oref.protocols[0]
        client = self._client_for(entry)
        m = client.marshaller
        return m.loads(client.call_raw(CONTROL_HANDLER,
                                       m.dumps({"op": "ping"})))

    def _close_clients(self) -> None:
        with self._lock:
            victims = list(self._clients.values())
            self._clients.clear()
        for _entry, client in victims:
            _close_quietly(client)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, wait: bool = True) -> None:
        """Close this GP: drain in-flight async calls, then close the
        cached clients.

        Futures that have not started yet are cancelled; running ones
        are waited for (``wait=False`` skips the drain), so an in-flight
        ``invoke_async`` completes normally instead of dying with a
        confusing transport error when its connection is yanked.  After
        close, any invocation raises a clear :class:`HpcError`.

        Any batch still coalescing toward this GP's peer is flushed
        first — calls enqueued in an un-expired window must complete,
        not vanish with the connection.
        """
        batching = getattr(self.context, "batching", None)
        if batching is not None and not self._closed:
            batching.flush_peer(self.oref.context_id)
        with self._lock:
            if self._closed:
                inflight: list = []
            else:
                self._closed = True
                inflight = list(self._inflight)
        for future in inflight:
            future.cancel()
        if wait and inflight:
            _await_futures(inflight)
        self._close_clients()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GlobalPointer {self.oref.object_id}@"
                f"{self.oref.context_id} table={self.oref.proto_ids()}>")


def _close_quietly(client: ProtocolClient) -> None:
    try:
        client.close()
    except Exception:  # noqa: BLE001 - teardown of a possibly-dead link
        pass
