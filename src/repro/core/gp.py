"""Global pointers (§3.1).

"An Open HPC++ GP contains an OR representing a remote server object.  As
different GPs to a single server object may contain ORs with different
protocol tables, the GPs may support different communication protocols."

A :class:`GlobalPointer` is the client proxy:

* **selection per request** — every invocation re-runs protocol selection
  against the GP's own OR copy and proto-pool ("the system selects an
  appropriate proto-object for each individual remote request", §3.2);
  connected proto-objects are cached per table entry so repeated use of
  the same choice does not reconnect;
* **migration adaptivity** — a MOVED reply updates the OR in place and
  re-selects, which is how Figure 4's protocol sequence happens without
  any client code changes;
* **dynamic capabilities** — ``add_capability_stack`` negotiates a new
  glue stack with the server's control surface and prepends the entry to
  this GP's table (capabilities "can also be changed dynamically", §1);
* **openness** — ``pool``, ``policy``, and the OR's ``protocols`` list
  are public and mutable; ``select_protocol`` exposes the decision.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.core.context import CONTROL_HANDLER, Context, Placement
from repro.core.instrumentation import GLOBAL_HOOKS, HookBus
from repro.core.objref import ObjectReference, ProtocolEntry
from repro.core.protocol import ProtocolClient, get_proto_class
from repro.core.proto_pool import ProtocolPool
from repro.core.request import Invocation
from repro.core.selection import FirstMatchPolicy, Locality, SelectionPolicy
from repro.exceptions import (
    HpcError,
    InterfaceError,
    ObjectMovedError,
    RemoteInvocationError,
)
from repro.idl.stubs import make_stub_class

__all__ = ["GlobalPointer"]

#: Bound on MOVED-forwarding hops per invocation; a cycle of forwarding
#: records would otherwise loop forever.
MAX_FORWARD_HOPS = 8


class GlobalPointer:
    """Client proxy for one remote object."""

    def __init__(self, oref: ObjectReference, context: Context,
                 pool: Optional[ProtocolPool] = None,
                 policy: Optional[SelectionPolicy] = None):
        self.oref = oref.clone()
        self.context = context
        self.pool = pool if pool is not None else context.proto_pool.clone()
        self.policy = policy or FirstMatchPolicy()
        self._clients: Dict[int, ProtocolClient] = {}
        self._lock = threading.RLock()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Per-GP observability hooks; GLOBAL_HOOKS fires as well.
        self.hooks = HookBus()

    def _emit(self, kind: str, **data) -> None:
        data.setdefault("object_id", self.oref.object_id)
        self.hooks.emit(kind, **data)
        GLOBAL_HOOKS.emit(kind, **data)

    # ------------------------------------------------------------------
    # placement & selection
    # ------------------------------------------------------------------

    def server_placement(self) -> Placement:
        if not self.oref.protocols:
            raise RemoteInvocationError("OR has an empty protocol table")
        return Placement.from_wire(self.oref.protocols[0].proto_data)

    def locality(self) -> Locality:
        return self.context.placement.locality_to(self.server_placement())

    def _entry_applicable(self, entry: ProtocolEntry,
                          locality: Locality) -> bool:
        proto_cls = get_proto_class(entry.proto_id)
        return proto_cls.applicable(entry, locality, self.context)

    def select_protocol(self) -> ProtocolEntry:
        """Run protocol selection for the current placement/pool state."""
        locality = self.locality()
        return self.policy.select(
            self.oref.protocols, self.pool.ids(), locality,
            lambda entry: self._entry_applicable(entry, locality))

    @property
    def selected_proto_id(self) -> str:
        """Which protocol the next request would use (for inspection)."""
        return self.select_protocol().proto_id

    def describe_selection(self) -> str:
        """Human-readable account of the choice (glue entries include
        their capability types) — the open-implementation peephole."""
        entry = self.select_protocol()
        if entry.proto_id == "glue":
            caps = "+".join(d.get("type", "?")
                            for d in entry.proto_data.get("capabilities", []))
            return f"glue[{caps}]"
        return entry.proto_id

    def _client_for(self, entry: ProtocolEntry) -> ProtocolClient:
        key = id(entry)
        with self._lock:
            client = self._clients.get(key)
            if client is None:
                proto_cls = get_proto_class(entry.proto_id)
                client = proto_cls.make_client(entry, self.context)
                self._clients[key] = client
            return client

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def _invoke(self, method: str, args: tuple,
                oneway: bool = False) -> Any:
        # Fail fast on interface violations without a round trip.
        if method not in self.oref.interface.methods:
            raise InterfaceError(
                f"interface {self.oref.interface.name!r} does not expose "
                f"{method!r}")
        invocation = Invocation(object_id=self.oref.object_id,
                                method=method, args=tuple(args),
                                oneway=oneway)
        for _hop in range(MAX_FORWARD_HOPS):
            entry = self.select_protocol()
            client = self._client_for(entry)
            self._emit("selection", proto_id=entry.proto_id, entry=entry,
                       method=method)
            started = self.context.clock.now()
            try:
                result = client.invoke(invocation)
            except ObjectMovedError as moved:
                if moved.forward is None:
                    raise
                self._emit("moved", forward=moved.forward,
                           from_context=self.oref.context_id,
                           to_context=moved.forward.context_id)
                self.update_reference(moved.forward)
                continue
            except Exception as exc:
                self._emit("request", method=method,
                           proto_id=entry.proto_id, outcome="error",
                           error=exc,
                           duration=self.context.clock.now() - started)
                raise
            self._emit("request", method=method, proto_id=entry.proto_id,
                       outcome="ok",
                       duration=self.context.clock.now() - started)
            return result
        raise RemoteInvocationError(
            f"object {self.oref.object_id} still moving after "
            f"{MAX_FORWARD_HOPS} forwarding hops")

    def invoke(self, method: str, *args) -> Any:
        """Synchronous remote invocation."""
        return self._invoke(method, args)

    def invoke_oneway(self, method: str, *args) -> None:
        """Fire-and-forget invocation (no reply, errors are dropped)."""
        self._invoke(method, args, oneway=True)

    def invoke_async(self, method: str, *args) -> "Future[Any]":
        """Asynchronous invocation.

        Real transports run in a per-GP worker pool; simulated contexts
        execute inline (the virtual world is synchronous) and return an
        already-completed future, preserving the calling convention.
        """
        if self.context.sim is not None:
            future: Future = Future()
            try:
                future.set_result(self._invoke(method, args))
            except BaseException as exc:  # noqa: BLE001
                future.set_exception(exc)
            return future
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="gp-async")
        return self._executor.submit(self._invoke, method, args)

    # ------------------------------------------------------------------
    # adaptivity
    # ------------------------------------------------------------------

    def update_reference(self, new_oref: ObjectReference) -> None:
        """Adopt a new OR (migration notice or out-of-band refresh)."""
        if new_oref.object_id != self.oref.object_id:
            raise HpcError("replacement OR names a different object")
        self._close_clients()
        self.oref = new_oref.clone()

    def add_capability_stack(self, descriptors, *, prefer: bool = True,
                             applicability: Optional[str] = None) -> None:
        """Negotiate a new capability stack with the server and graft the
        resulting glue entry onto this GP's protocol table."""
        nexus_entry = self.oref.entry("nexus")
        if nexus_entry is None:
            raise HpcError(
                "dynamic capabilities need a plain nexus entry to carry "
                "the control request")
        client = self._client_for(nexus_entry)
        m = client.marshaller
        request = {"op": "make_glue",
                   "capabilities": [dict(d) for d in descriptors]}
        if applicability:
            request["applicability"] = applicability
        reply = m.loads(client.call_raw(CONTROL_HANDLER, m.dumps(request)))
        if not reply.get("ok"):
            raise HpcError(f"server refused capability stack: "
                           f"{reply.get('error')}")
        entry = ProtocolEntry.from_wire(reply["entry"])
        if prefer:
            self.oref.protocols.insert(0, entry)
        else:
            self.oref.protocols.append(entry)

    def drop_protocol(self, proto_id: str) -> None:
        """Remove every entry of the given protocol from this GP's OR."""
        self.oref.protocols = [e for e in self.oref.protocols
                               if e.proto_id != proto_id]

    # ------------------------------------------------------------------
    # ergonomics
    # ------------------------------------------------------------------

    def narrow(self):
        """A typed stub over this GP's interface: remote calls read like
        local ones."""
        stub_cls = make_stub_class(self.oref.interface)
        return stub_cls(
            lambda method, args, oneway: self._invoke(method, args, oneway),
            self.oref.interface)

    def dup(self) -> ObjectReference:
        """A copy of the OR suitable for handing to another process —
        the capability-passing mechanism of §4."""
        return self.oref.clone()

    def ping(self) -> dict:
        """Control-surface liveness probe of the serving context."""
        entry = self.oref.entry("nexus") or self.oref.protocols[0]
        client = self._client_for(entry)
        m = client.marshaller
        return m.loads(client.call_raw(CONTROL_HANDLER,
                                       m.dumps({"op": "ping"})))

    def _close_clients(self) -> None:
        with self._lock:
            for client in self._clients.values():
                client.close()
            self._clients.clear()

    def close(self) -> None:
        self._close_clients()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GlobalPointer {self.oref.object_id}@"
                f"{self.oref.context_id} table={self.oref.proto_ids()}>")
