"""Global pointers (§3.1).

"An Open HPC++ GP contains an OR representing a remote server object.  As
different GPs to a single server object may contain ORs with different
protocol tables, the GPs may support different communication protocols."

A :class:`GlobalPointer` is the client proxy:

* **selection per request** — every invocation re-runs protocol selection
  against the GP's own OR copy and proto-pool ("the system selects an
  appropriate proto-object for each individual remote request", §3.2);
  connected proto-objects are cached per table entry so repeated use of
  the same choice does not reconnect;
* **migration adaptivity** — a MOVED reply updates the OR in place and
  re-selects, which is how Figure 4's protocol sequence happens without
  any client code changes;
* **dynamic capabilities** — ``add_capability_stack`` negotiates a new
  glue stack with the server's control surface and prepends the entry to
  this GP's table (capabilities "can also be changed dynamically", §1);
* **openness** — ``pool``, ``policy``, and the OR's ``protocols`` list
  are public and mutable; ``select_protocol`` exposes the decision;
* **resilience** — transport failures are retried under a
  :class:`~repro.core.resilience.RetryPolicy` with *protocol failover*:
  the failed entry is demoted for the rest of the call and selection
  re-runs, so the next applicable table entry carries the retry — the
  ordered protocol table *is* the redundancy the paper promises.
  Per-``(context, proto)`` circuit breakers shed flapping peers before
  they burn retry budget, and an idempotence guard refuses to re-issue a
  request that may have reached dispatch unless the method is marked
  ``retry_safe``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, Optional

from repro.core.context import CONTROL_HANDLER, Context, Placement
from repro.core.instrumentation import GLOBAL_HOOKS, HookBus
from repro.core.objref import ObjectReference, ProtocolEntry
from repro.core.protocol import ProtocolClient, get_proto_class
from repro.core.proto_pool import ProtocolPool
from repro.core.request import Invocation
from repro.core.resilience import AttemptRecord, RetryPolicy, sleep_on
from repro.core.selection import FirstMatchPolicy, Locality, SelectionPolicy
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    HpcError,
    InterfaceError,
    NoApplicableProtocolError,
    ObjectMovedError,
    ProtocolError,
    RemoteInvocationError,
    RetryExhaustedError,
    TransportError,
    UnknownProtocolError,
)
from repro.idl.stubs import make_stub_class

__all__ = ["GlobalPointer"]

#: Bound on MOVED-forwarding hops per invocation; a cycle of forwarding
#: records would otherwise loop forever.
MAX_FORWARD_HOPS = 8


class GlobalPointer:
    """Client proxy for one remote object."""

    def __init__(self, oref: ObjectReference, context: Context,
                 pool: Optional[ProtocolPool] = None,
                 policy: Optional[SelectionPolicy] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breakers=None):
        self.oref = oref.clone()
        self.context = context
        self.pool = pool if pool is not None else context.proto_pool.clone()
        self.policy = policy or FirstMatchPolicy()
        #: Retry/backoff/deadline policy for this GP's invocations.
        self.retry_policy = retry_policy or RetryPolicy()
        #: Circuit breakers; defaults to the context-wide registry so
        #: every GP talking to the same peer shares failure history.
        self.breakers = breakers if breakers is not None \
            else context.breakers
        self._clients: Dict[int, ProtocolClient] = {}
        self._lock = threading.RLock()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Per-GP observability hooks; GLOBAL_HOOKS fires as well.
        self.hooks = HookBus()

    def _emit(self, kind: str, **data) -> None:
        data.setdefault("object_id", self.oref.object_id)
        self.hooks.emit(kind, **data)
        GLOBAL_HOOKS.emit(kind, **data)

    # ------------------------------------------------------------------
    # placement & selection
    # ------------------------------------------------------------------

    def server_placement(self) -> Placement:
        if not self.oref.protocols:
            raise RemoteInvocationError("OR has an empty protocol table")
        return Placement.from_wire(self.oref.protocols[0].proto_data)

    def locality(self) -> Locality:
        return self.context.placement.locality_to(self.server_placement())

    def _entry_applicable(self, entry: ProtocolEntry,
                          locality: Locality) -> bool:
        proto_cls = get_proto_class(entry.proto_id)
        return proto_cls.applicable(entry, locality, self.context)

    def select_protocol(self, _demoted=frozenset()) -> ProtocolEntry:
        """Run protocol selection for the current placement/pool state.

        Entries whose ``(context, proto)`` circuit breaker is open are
        shed; ``_demoted`` (internal) holds ``id()``\\ s of entries that
        already failed during the current invocation, so a retry falls
        through to the next table row.  If selection fails *because* of
        open breakers, the error is a :class:`CircuitOpenError` rather
        than a plain no-applicable-protocol failure.
        """
        locality = self.locality()
        shed = []

        def usable(entry: ProtocolEntry) -> bool:
            if id(entry) in _demoted:
                return False
            if not self.breakers.allow(self.oref.context_id,
                                       entry.proto_id):
                shed.append(entry.proto_id)
                return False
            return self._entry_applicable(entry, locality)

        try:
            return self.policy.select(self.oref.protocols, self.pool.ids(),
                                      locality, usable)
        except NoApplicableProtocolError as exc:
            if shed and not _demoted:
                raise CircuitOpenError(
                    "all applicable protocols shed by open breakers: "
                    f"{sorted(set(shed))}") from exc
            raise

    @property
    def selected_proto_id(self) -> str:
        """Which protocol the next request would use (for inspection)."""
        return self.select_protocol().proto_id

    def describe_selection(self) -> str:
        """Human-readable account of the choice (glue entries include
        their capability types) — the open-implementation peephole."""
        entry = self.select_protocol()
        if entry.proto_id == "glue":
            caps = "+".join(d.get("type", "?")
                            for d in entry.proto_data.get("capabilities", []))
            return f"glue[{caps}]"
        return entry.proto_id

    def _client_for(self, entry: ProtocolEntry) -> ProtocolClient:
        key = id(entry)
        with self._lock:
            client = self._clients.get(key)
            if client is None:
                proto_cls = get_proto_class(entry.proto_id)
                client = proto_cls.make_client(entry, self.context)
                self._clients[key] = client
            return client

    def _evict_client(self, entry: ProtocolEntry) -> None:
        """Drop the cached client for an entry whose channel died, so
        the next use of that entry redials instead of reusing a broken
        connection."""
        with self._lock:
            client = self._clients.pop(id(entry), None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001 - already broken
                pass

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------

    def _may_retry(self, method: str, dispatched: bool) -> bool:
        """The idempotence guard: a request that provably never left
        this host is always retryable; one that may have reached
        dispatch is retried only for ``retry_safe`` methods (or under a
        ``retry_unsafe`` policy)."""
        if not dispatched or self.retry_policy.retry_unsafe:
            return True
        spec = self.oref.interface.methods.get(method)
        return bool(spec is not None and spec.retry_safe)

    def _select_for_attempt(self, demoted: set, attempts) -> ProtocolEntry:
        """Selection for one attempt; when every entry has been demoted
        during this call, the demotion slate is wiped and the whole
        table becomes eligible again (the retry budget, not the table
        length, bounds the loop)."""
        try:
            return self.select_protocol(_demoted=demoted)
        except CircuitOpenError as exc:
            exc.attempts = list(attempts)
            raise
        except NoApplicableProtocolError:
            if not demoted:
                raise
            demoted.clear()
            try:
                return self.select_protocol()
            except CircuitOpenError as exc:
                exc.attempts = list(attempts)
                raise

    def _invoke(self, method: str, args: tuple,
                oneway: bool = False) -> Any:
        # Fail fast on interface violations without a round trip.
        if method not in self.oref.interface.methods:
            raise InterfaceError(
                f"interface {self.oref.interface.name!r} does not expose "
                f"{method!r}")
        invocation = Invocation(object_id=self.oref.object_id,
                                method=method, args=tuple(args),
                                oneway=oneway)
        policy = self.retry_policy
        clock = self.context.clock
        deadline = None if policy.deadline is None \
            else clock.now() + policy.deadline
        attempts: list = []
        demoted: set = set()          # id(entry) failed during this call
        failed_entry: Optional[ProtocolEntry] = None
        failures = 0
        hops = 0
        while True:
            entry = self._select_for_attempt(demoted, attempts)
            if failed_entry is not None and entry is not failed_entry:
                self._emit("failover", method=method,
                           from_proto=failed_entry.proto_id,
                           to_proto=entry.proto_id, attempt=failures + 1)
            client = self._client_for(entry)
            self._emit("selection", proto_id=entry.proto_id, entry=entry,
                       method=method)
            started = clock.now()
            try:
                result = client.invoke(invocation)
            except ObjectMovedError as moved:
                if moved.forward is None:
                    raise
                hops += 1
                if hops >= MAX_FORWARD_HOPS:
                    raise RemoteInvocationError(
                        f"object {self.oref.object_id} still moving after "
                        f"{MAX_FORWARD_HOPS} forwarding hops")
                self._emit("moved", forward=moved.forward,
                           from_context=self.oref.context_id,
                           to_context=moved.forward.context_id)
                self.update_reference(moved.forward)
                # New OR, new table: demotions no longer apply.
                demoted.clear()
                failed_entry = None
                continue
            except (TransportError, ProtocolError) as exc:
                if isinstance(exc, (UnknownProtocolError,
                                    NoApplicableProtocolError)):
                    raise  # configuration errors, not link failures
                self._emit("request", method=method,
                           proto_id=entry.proto_id, outcome="error",
                           error=exc, duration=clock.now() - started)
                self.breakers.record_failure(self.oref.context_id,
                                             entry.proto_id)
                self._evict_client(entry)
                failures += 1
                dispatched = bool(
                    getattr(exc, "request_sent", False)
                    or getattr(exc, "request_dispatched", False))
                attempts.append(AttemptRecord(
                    attempt=failures, proto_id=entry.proto_id,
                    error=f"{type(exc).__name__}: {exc}",
                    at=clock.now(), dispatched=dispatched))
                if not isinstance(exc, TransportError):
                    # Deterministic protocol-level failure (bad address
                    # list, unusable entry): retrying the same entry
                    # cannot help, and neither can waiting.  Fail over
                    # to the next table entry if one exists; otherwise
                    # surface the original error, not RetryExhausted.
                    demoted.add(id(entry))
                    failed_entry = entry
                    try:
                        self.select_protocol(_demoted=demoted)
                    except (NoApplicableProtocolError, CircuitOpenError):
                        raise exc from None
                    continue
                if not self._may_retry(method, dispatched):
                    raise
                if failures >= policy.max_attempts:
                    raise RetryExhaustedError(
                        f"invocation of {method!r} on "
                        f"{self.oref.object_id} failed after {failures} "
                        f"attempts", attempts) from exc
                pause = policy.backoff(failures)
                if deadline is not None and clock.now() + pause > deadline:
                    raise DeadlineExceededError(
                        f"deadline of {policy.deadline}s exceeded after "
                        f"{failures} attempts on {method!r}",
                        attempts) from exc
                demoted.add(id(entry))
                failed_entry = entry
                self._emit("retry", method=method,
                           proto_id=entry.proto_id, attempt=failures,
                           backoff=pause, error=exc)
                sleep_on(clock, pause)
                continue
            except Exception as exc:
                self._emit("request", method=method,
                           proto_id=entry.proto_id, outcome="error",
                           error=exc, duration=clock.now() - started)
                raise
            self.breakers.record_success(self.oref.context_id,
                                         entry.proto_id)
            self._emit("request", method=method, proto_id=entry.proto_id,
                       outcome="ok", duration=clock.now() - started)
            return result

    def invoke(self, method: str, *args) -> Any:
        """Synchronous remote invocation."""
        return self._invoke(method, args)

    def invoke_oneway(self, method: str, *args) -> None:
        """Fire-and-forget invocation (no reply, errors are dropped)."""
        self._invoke(method, args, oneway=True)

    def invoke_async(self, method: str, *args) -> "Future[Any]":
        """Asynchronous invocation.

        Real transports run in a per-GP worker pool; simulated contexts
        execute inline (the virtual world is synchronous) and return an
        already-completed future, preserving the calling convention.
        """
        if self.context.sim is not None:
            future: Future = Future()
            try:
                future.set_result(self._invoke(method, args))
            except BaseException as exc:  # noqa: BLE001
                future.set_exception(exc)
            return future
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=4, thread_name_prefix="gp-async")
        return self._executor.submit(self._invoke, method, args)

    # ------------------------------------------------------------------
    # adaptivity
    # ------------------------------------------------------------------

    def update_reference(self, new_oref: ObjectReference) -> None:
        """Adopt a new OR (migration notice or out-of-band refresh)."""
        if new_oref.object_id != self.oref.object_id:
            raise HpcError("replacement OR names a different object")
        self._close_clients()
        self.oref = new_oref.clone()

    def add_capability_stack(self, descriptors, *, prefer: bool = True,
                             applicability: Optional[str] = None) -> None:
        """Negotiate a new capability stack with the server and graft the
        resulting glue entry onto this GP's protocol table."""
        nexus_entry = self.oref.entry("nexus")
        if nexus_entry is None:
            raise HpcError(
                "dynamic capabilities need a plain nexus entry to carry "
                "the control request")
        client = self._client_for(nexus_entry)
        m = client.marshaller
        request = {"op": "make_glue",
                   "capabilities": [dict(d) for d in descriptors]}
        if applicability:
            request["applicability"] = applicability
        reply = m.loads(client.call_raw(CONTROL_HANDLER, m.dumps(request)))
        if not reply.get("ok"):
            raise HpcError(f"server refused capability stack: "
                           f"{reply.get('error')}")
        entry = ProtocolEntry.from_wire(reply["entry"])
        if prefer:
            self.oref.protocols.insert(0, entry)
        else:
            self.oref.protocols.append(entry)

    def drop_protocol(self, proto_id: str) -> None:
        """Remove every entry of the given protocol from this GP's OR."""
        self.oref.protocols = [e for e in self.oref.protocols
                               if e.proto_id != proto_id]

    # ------------------------------------------------------------------
    # ergonomics
    # ------------------------------------------------------------------

    def narrow(self):
        """A typed stub over this GP's interface: remote calls read like
        local ones."""
        stub_cls = make_stub_class(self.oref.interface)
        return stub_cls(
            lambda method, args, oneway: self._invoke(method, args, oneway),
            self.oref.interface)

    def dup(self) -> ObjectReference:
        """A copy of the OR suitable for handing to another process —
        the capability-passing mechanism of §4."""
        return self.oref.clone()

    def ping(self) -> dict:
        """Control-surface liveness probe of the serving context."""
        entry = self.oref.entry("nexus") or self.oref.protocols[0]
        client = self._client_for(entry)
        m = client.marshaller
        return m.loads(client.call_raw(CONTROL_HANDLER,
                                       m.dumps({"op": "ping"})))

    def _close_clients(self) -> None:
        with self._lock:
            for client in self._clients.values():
                client.close()
            self._clients.clear()

    def close(self) -> None:
        self._close_clients()
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GlobalPointer {self.oref.object_id}@"
                f"{self.oref.context_id} table={self.oref.proto_ids()}>")
