"""Failure detection: liveness probes over the control surface.

A distributed runtime with migration and load balancing needs to know
which contexts are alive before it ships objects to them.  The
:class:`HealthMonitor` probes contexts through the same ``hpc.control``
``ping`` every GP can issue, keeps a rolling verdict per target, and
integrates with the balancer: ``LoadBalancer(..., health=monitor)``
refuses to migrate onto a context whose last probe failed.

Probes are synchronous and cheap (one tiny control RSR); under
simulation they cost deterministic virtual time like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.context import CONTROL_HANDLER, Context
from repro.core.objref import ProtocolEntry
from repro.core.protocol import get_proto_class
from repro.exceptions import HpcError

__all__ = ["HealthMonitor", "ProbeResult"]


@dataclass(frozen=True)
class ProbeResult:
    """One liveness probe outcome."""

    context_id: str
    alive: bool
    rtt: float                 # seconds by the prober's clock
    error: Optional[str] = None


class HealthMonitor:
    """Probe remote contexts for liveness from a home context.

    ``home`` supplies the clock, transports, and placement the probes
    run under.  Targets register by context (the common case inside one
    runtime) or by an explicit nexus :class:`ProtocolEntry` (for remote
    runtimes discovered via ORs).
    """

    def __init__(self, home: Context, probe_timeout: float = 2.0,
                 breakers=None):
        self.home = home
        self.probe_timeout = probe_timeout
        #: Optional :class:`repro.core.resilience.BreakerRegistry`; probe
        #: verdicts are fed into it so a dead peer's breakers open (and a
        #: recovered peer's breakers close) without burning request
        #: retries.  Defaults to the home context's registry.
        self.breakers = breakers if breakers is not None \
            else getattr(home, "breakers", None)
        self.last: Dict[str, ProbeResult] = {}
        self._targets: Dict[str, ProtocolEntry] = {}

    # -- registration -----------------------------------------------------

    def watch_context(self, ctx: Context) -> None:
        """Watch a context of the same runtime via its nexus addresses."""
        _shm, net_addrs = ctx._address_entries()
        entry = ProtocolEntry("nexus", ctx._base_proto_data(net_addrs))
        # The entry describes the *target's* placement.
        self._targets[ctx.id] = entry

    def watch_entry(self, context_id: str, entry: ProtocolEntry) -> None:
        self._targets[context_id] = entry.clone()

    def unwatch(self, context_id: str) -> None:
        self._targets.pop(context_id, None)
        self.last.pop(context_id, None)

    @property
    def watched(self) -> list:
        return sorted(self._targets)

    # -- probing ---------------------------------------------------------------

    def probe(self, context_id: str) -> ProbeResult:
        entry = self._targets.get(context_id)
        if entry is None:
            raise HpcError(f"not watching context {context_id!r}")
        proto_cls = get_proto_class(entry.proto_id)
        client = proto_cls.make_client(entry, self.home)
        # Probes answer "is it alive *now*" — they must not hang for the
        # full request timeout on a wedged peer.
        client.timeout = self.probe_timeout
        started = self.home.clock.now()
        try:
            m = client.marshaller
            reply = m.loads(client.call_raw(CONTROL_HANDLER,
                                            m.dumps({"op": "ping"})))
            alive = bool(reply.get("ok")) \
                and reply.get("context_id") == context_id
            error = None if alive else \
                f"unexpected ping reply: {reply!r}"
        except Exception as exc:  # noqa: BLE001 - any failure = dead
            alive = False
            error = f"{type(exc).__name__}: {exc}"
        finally:
            client.close()
        result = ProbeResult(context_id=context_id, alive=alive,
                             rtt=self.home.clock.now() - started,
                             error=error)
        self.last[context_id] = result
        if self.breakers is not None:
            self.breakers.record_probe(context_id, alive)
        return result

    def sweep(self) -> Dict[str, ProbeResult]:
        """Probe every watched context; returns the verdict map."""
        return {cid: self.probe(cid) for cid in self.watched}

    def is_alive(self, context_id: str) -> bool:
        """Last known verdict; unknown contexts default to alive (the
        balancer will find out on the next sweep)."""
        result = self.last.get(context_id)
        return True if result is None else result.alive
