"""Observability hooks: the introspective half of Open Implementation.

Kiczales' Open Implementation is two-way: applications *steer* internal
decisions (pools, OR tables, policies) and *observe* them.  This module
is the observing half — a lightweight hook bus that the GP and migration
machinery publish events to:

``selection``
    fired per request with the chosen entry (watch adaptivity happen);
``request``
    fired per completed invocation with method, protocol, outcome, and
    duration (per the context clock);
``moved``
    fired when a GP follows a MOVED forward;
``migration``
    fired by :func:`repro.core.migration.migrate` on the source context;
``retry``
    fired per retryable transport failure with the attempt number and
    the backoff about to be paid;
``failover``
    fired when a retry moves to a *different* protocol-table entry than
    the one that failed (``from_proto`` / ``to_proto``);
``breaker_open`` / ``breaker_close``
    fired by the :class:`repro.core.resilience.BreakerRegistry` when a
    ``(context, proto)`` circuit breaker trips or recovers;
``budget_exhausted``
    fired when the shared :class:`~repro.core.resilience.RetryBudget`
    of a peer refuses a retry (the flapping-peer amplification guard
    kicked in);
``hedge``
    fired when a hedged second attempt is launched for a retry-safe
    method, with the primary/hedge protocols and the latency-percentile
    trigger that fired it;
``hedge_win`` / ``hedge_loss``
    fired when the race resolves: ``hedge_win`` means the hedged
    attempt beat the primary (its latency is the call's effective
    latency), ``hedge_loss`` means the primary still won;
``fault_injected``
    fired by :class:`repro.faults.plan.FaultPlan` for every injected
    drop/delay/corrupt/disconnect/partition, so a test can line the
    recovery trail up against the faults that caused it.

This module also hosts the **streaming latency trackers** that feed the
hedging policy: a :class:`LatencyTracker` per ``(remote context,
protocol)`` pair, held in the calling context's
:class:`LatencyRegistry`, observing every successful request's duration
(per the context clock — deterministic under simulation).

Hooks attach globally (:data:`GLOBAL_HOOKS`) or per GP (``gp.hooks``).
Handlers must be cheap and must not raise; a raising handler is
detached and the error recorded, so observability can never take the
data path down.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["HookBus", "GLOBAL_HOOKS", "HookEvent",
           "LatencyTracker", "LatencyRegistry"]


@dataclass(frozen=True)
class HookEvent:
    """One published event."""

    kind: str
    data: dict


class HookBus:
    """Named lists of event handlers with fail-safe dispatch."""

    def __init__(self):
        self._handlers: Dict[str, List[Callable[[HookEvent], Any]]] = {}
        self.errors: List[tuple] = []

    def on(self, kind: str, handler: Callable[[HookEvent], Any]) -> None:
        """Attach ``handler`` to ``kind`` events."""
        self._handlers.setdefault(kind, []).append(handler)

    def off(self, kind: str, handler) -> None:
        """Detach a handler; unknown handlers are ignored."""
        try:
            self._handlers.get(kind, []).remove(handler)
        except ValueError:
            pass

    def emit(self, kind: str, **data) -> None:
        handlers = self._handlers.get(kind)
        if not handlers:
            return
        event = HookEvent(kind=kind, data=data)
        dead = []
        for handler in handlers:
            try:
                handler(event)
            except Exception as exc:  # noqa: BLE001 - observability must
                #                        never break the data path
                self.errors.append((kind, handler, exc))
                dead.append(handler)
        for handler in dead:
            handlers.remove(handler)

    def handler_count(self, kind: str | None = None) -> int:
        if kind is not None:
            return len(self._handlers.get(kind, []))
        return sum(len(hs) for hs in self._handlers.values())

    def clear(self) -> None:
        self._handlers.clear()
        self.errors.clear()


#: Process-wide bus; per-GP buses are created on demand by the GP.
GLOBAL_HOOKS = HookBus()


class LatencyTracker:
    """Streaming latency percentiles over a sliding window.

    Keeps the last ``window`` observed durations in a ring buffer and
    answers nearest-rank percentile queries over a sorted copy.  The
    window bounds both memory and staleness: a protocol that suddenly
    slows down ages its fast history out within ``window`` requests.
    Observation order is the only input — no clock reads, no sampling
    randomness — so the same request sequence always yields the same
    percentile, which is what lets hedging assertions run bit-for-bit
    under :class:`~repro.simnet.clock.VirtualClock`.
    """

    def __init__(self, window: int = 128):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._samples: deque = deque(maxlen=window)
        self._total = 0
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        """Total observations ever (not just the current window)."""
        with self._lock:
            return self._total

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            return
        with self._lock:
            self._samples.append(seconds)
            self._total += 1

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank ``q``-quantile of the window (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        index = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LatencyTracker(n={self._total}, "
                f"window={len(self._samples)}/{self.window})")


class LatencyRegistry:
    """Per-``(remote context, proto)`` latency trackers for one caller.

    The GP feeds every successful request's duration in through
    :meth:`observe`; the hedging policy reads percentiles back through
    :meth:`tracker`.
    """

    def __init__(self, window: int = 128):
        self.window = window
        self._trackers: Dict[Tuple[str, str], LatencyTracker] = {}
        self._lock = threading.Lock()

    def tracker(self, context_id: str, proto_id: str) -> LatencyTracker:
        key = (context_id, proto_id)
        with self._lock:
            tracker = self._trackers.get(key)
            if tracker is None:
                tracker = LatencyTracker(window=self.window)
                self._trackers[key] = tracker
            return tracker

    def observe(self, context_id: str, proto_id: str,
                seconds: float) -> None:
        self.tracker(context_id, proto_id).observe(seconds)

    def quantile(self, context_id: str, proto_id: str,
                 q: float) -> Optional[float]:
        with self._lock:
            tracker = self._trackers.get((context_id, proto_id))
        return None if tracker is None else tracker.quantile(q)
