"""Observability hooks: the introspective half of Open Implementation.

Kiczales' Open Implementation is two-way: applications *steer* internal
decisions (pools, OR tables, policies) and *observe* them.  This module
is the observing half — a lightweight hook bus that the GP and migration
machinery publish events to:

``selection``
    fired per request with the chosen entry (watch adaptivity happen);
``request``
    fired per completed invocation with method, protocol, outcome, and
    duration (per the context clock);
``moved``
    fired when a GP follows a MOVED forward;
``migration``
    fired by :func:`repro.core.migration.migrate` on the source context;
``retry``
    fired per retryable transport failure with the attempt number and
    the backoff about to be paid;
``failover``
    fired when a retry moves to a *different* protocol-table entry than
    the one that failed (``from_proto`` / ``to_proto``);
``breaker_open`` / ``breaker_close``
    fired by the :class:`repro.core.resilience.BreakerRegistry` when a
    ``(context, proto)`` circuit breaker trips or recovers;
``fault_injected``
    fired by :class:`repro.faults.plan.FaultPlan` for every injected
    drop/delay/corrupt/disconnect/partition, so a test can line the
    recovery trail up against the faults that caused it.

Hooks attach globally (:data:`GLOBAL_HOOKS`) or per GP (``gp.hooks``).
Handlers must be cheap and must not raise; a raising handler is
detached and the error recorded, so observability can never take the
data path down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

__all__ = ["HookBus", "GLOBAL_HOOKS", "HookEvent"]


@dataclass(frozen=True)
class HookEvent:
    """One published event."""

    kind: str
    data: dict


class HookBus:
    """Named lists of event handlers with fail-safe dispatch."""

    def __init__(self):
        self._handlers: Dict[str, List[Callable[[HookEvent], Any]]] = {}
        self.errors: List[tuple] = []

    def on(self, kind: str, handler: Callable[[HookEvent], Any]) -> None:
        """Attach ``handler`` to ``kind`` events."""
        self._handlers.setdefault(kind, []).append(handler)

    def off(self, kind: str, handler) -> None:
        """Detach a handler; unknown handlers are ignored."""
        try:
            self._handlers.get(kind, []).remove(handler)
        except ValueError:
            pass

    def emit(self, kind: str, **data) -> None:
        handlers = self._handlers.get(kind)
        if not handlers:
            return
        event = HookEvent(kind=kind, data=data)
        dead = []
        for handler in handlers:
            try:
                handler(event)
            except Exception as exc:  # noqa: BLE001 - observability must
                #                        never break the data path
                self.errors.append((kind, handler, exc))
                dead.append(handler)
        for handler in dead:
            handlers.remove(handler)

    def handler_count(self, kind: str | None = None) -> int:
        if kind is not None:
            return len(self._handlers.get(kind, []))
        return sum(len(hs) for hs in self._handlers.values())

    def clear(self) -> None:
        self._handlers.clear()
        self.errors.clear()


#: Process-wide bus; per-GP buses are created on demand by the GP.
GLOBAL_HOOKS = HookBus()
