"""Dynamic load balancing via migration (§4.3, conclusion).

"Consider that the load on the server's machine increases beyond a
high-water mark and the application decides to migrate S0 to a machine
residing on the LAN of client P2."

The :class:`LoadBalancer` watches a set of contexts' load monitors.  On
``rebalance_once()`` it migrates the busiest object off any context above
the high-water mark onto the least-loaded context below the low-water
mark.  Combined with capability applicability this produces the paper's
adaptivity story: after a migration, clients' protocol selection changes
on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.context import Context
from repro.core.migration import migrate
from repro.core.objref import ObjectReference

__all__ = ["LoadBalancer", "MigrationEvent"]


@dataclass(frozen=True)
class MigrationEvent:
    """One balancing decision, for audit and tests."""

    object_id: str
    source_id: str
    target_id: str
    source_load: float
    target_load: float
    new_oref: ObjectReference


class LoadBalancer:
    """High/low-water-mark migration policy over a context group."""

    def __init__(self, contexts: List[Context], *,
                 high_water: float = 0.75, low_water: float = 0.40,
                 on_migrate: Optional[Callable[[MigrationEvent], None]]
                 = None,
                 health=None, directory=None):
        if not 0.0 <= low_water <= high_water <= 1.0:
            raise ValueError("need 0 <= low_water <= high_water <= 1")
        self.contexts = list(contexts)
        self.high_water = high_water
        self.low_water = low_water
        self.on_migrate = on_migrate
        #: Optional :class:`repro.core.health.HealthMonitor`; contexts
        #: whose last probe failed are never chosen as receivers.
        self.health = health
        #: Optional directory publication target: anything with
        #: ``rebind_object(object_id, new_oref)`` — a
        #: :class:`~repro.directory.resolver.DirectoryClient` publishes
        #: each migration to the replica group so fleet-wide resolution
        #: follows the sweep (a plain :class:`~repro.core.naming
        #: .NameService` works too; ORB-local registries are already
        #: updated by ``migrate`` itself).
        self.directory = directory
        self.history: List[MigrationEvent] = []

    def add_context(self, ctx: Context) -> None:
        self.contexts.append(ctx)

    def loads(self) -> dict:
        return {ctx.id: ctx.monitor.load for ctx in self.contexts}

    def _overloaded(self) -> List[Context]:
        return sorted(
            (c for c in self.contexts if c.monitor.load > self.high_water),
            key=lambda c: c.monitor.load, reverse=True)

    def _receivers(self) -> List[Context]:
        candidates = (c for c in self.contexts
                      if c.monitor.load < self.low_water)
        if self.health is not None:
            candidates = (c for c in candidates
                          if self.health.is_alive(c.id))
        return sorted(candidates, key=lambda c: c.monitor.load)

    def rebalance_once(self) -> List[MigrationEvent]:
        """One balancing pass; returns the migrations performed."""
        events: List[MigrationEvent] = []
        receivers = self._receivers()
        for source in self._overloaded():
            if not receivers:
                break
            object_id = source.monitor.busiest_object()
            if object_id is None:
                continue
            record = source.servants.get(object_id)
            if record is None or not record.migratable:
                continue
            target = receivers[0]
            if target is source:
                continue
            new_oref = migrate(source, object_id, target)
            event = MigrationEvent(
                object_id=object_id, source_id=source.id,
                target_id=target.id, source_load=source.monitor.load,
                target_load=target.monitor.load, new_oref=new_oref)
            events.append(event)
            self.history.append(event)
            if self.directory is not None:
                self.directory.rebind_object(object_id, new_oref)
            if self.on_migrate is not None:
                self.on_migrate(event)
            # Recompute receiver order: the target just got work.
            receivers = self._receivers()
        return events
