"""Object migration between contexts (§4.3).

"Open HPC++ provides a facility for objects to migrate from one context
to another."  Migration here is the real thing, not a pointer swap:

1. the servant record (instance, restricted interface, ACL) moves to the
   target context;
2. every glue stack attached to the export is re-created on the target
   (fresh glue ids, same capability descriptors) — the server-side
   capability copies must live where the object lives;
3. the source context keeps a *forwarding record*: requests arriving on
   stale GPs get a MOVED reply carrying the new OR, and the GP re-runs
   protocol selection against the new placement — the mechanism behind
   Figure 4's protocol changes.

Servant state travels by direct reference within one process; a servant
may also implement ``hpc_get_state()``/``hpc_set_state(state)`` to move
by value (state must be marshallable), in which case the source instance
is detached and a fresh instance is built on the target — the
cross-process-faithful path, exercised by the tests either way.
"""

from __future__ import annotations

from typing import Optional

from repro.core.context import Context
from repro.core.objref import ObjectReference
from repro.exceptions import MigrationError
from repro.serialization.marshal import dumps, loads

__all__ = ["migrate"]


def migrate(source: Context, object_id: str, target: Context,
            by_value: Optional[bool] = None) -> ObjectReference:
    """Move an exported object from ``source`` to ``target``.

    Returns the new OR (version bumped).  ``by_value`` forces the state
    transfer mode; the default is by-value when the servant implements
    the state protocol, by-reference otherwise.
    """
    if source is target:
        raise MigrationError("source and target context are the same")
    with source._lock:
        record = source.servants.get(object_id)
    if record is None:
        raise MigrationError(
            f"context {source.id!r} exports no object {object_id!r}")
    if not record.migratable:
        raise MigrationError(f"object {object_id!r} is pinned")

    instance = record.instance
    has_state_protocol = (hasattr(instance, "hpc_get_state")
                          and hasattr(instance, "hpc_set_state"))
    if by_value is None:
        by_value = has_state_protocol
    if by_value:
        if not has_state_protocol:
            raise MigrationError(
                f"{type(instance).__name__} does not implement the "
                "hpc_get_state/hpc_set_state protocol")
        # Marshal through the wire format: guarantees the state would
        # survive a genuine cross-process move.
        state = loads(dumps(instance.hpc_get_state()))
        fresh = type(instance).__new__(type(instance))
        fresh.hpc_set_state(state)
        moved_instance = fresh
    else:
        moved_instance = instance

    # Re-export on the target with the same object id, interface
    # restriction, ACL, and capability stacks.
    new_oref = target.export(
        moved_instance,
        object_id=object_id,
        interface=record.spec,
        glue_stacks=[descriptors for _gid, descriptors in record.glue],
        acl=record.acl,
        migratable=record.migratable,
    )
    new_oref.version = _next_version(source, object_id, record)

    # Capability state (quota counters, replay windows) migrates with the
    # object: pair old and new server-side stacks positionally and let
    # each fresh capability absorb its predecessor's run-time state.
    with target._lock:
        new_record = target.servants[object_id]
        new_record.version = new_oref.version
    for (old_gid, _d1), (new_gid, _d2) in zip(record.glue,
                                              new_record.glue):
        old_stack = source.glue_stacks.get(old_gid)
        new_stack = target.glue_stacks.get(new_gid)
        if old_stack is None or new_stack is None:
            continue
        for old_cap, new_cap in zip(old_stack.capabilities,
                                    new_stack.capabilities):
            new_cap.absorb_state(old_cap)

    # Retire the source export but keep its glue stacks: in-flight glue
    # requests must still unprocess cleanly to *receive* the MOVED reply.
    with source._lock:
        source.servants.pop(object_id, None)
        source.forwards[object_id] = new_oref.clone()
    source.monitor.forget_object(object_id)

    # Publish the move to the involved ORBs' name registries
    # (version-checked), so ``orb.resolve`` keeps answering with the
    # live OR even after the source context — and with it the
    # forwarding record — goes away.
    orbs = [source.orb]
    if target.orb is not source.orb:
        orbs.append(target.orb)
    for orb in orbs:
        orb.naming.rebind_object(object_id, new_oref)

    from repro.core.instrumentation import GLOBAL_HOOKS

    GLOBAL_HOOKS.emit("migration", object_id=object_id,
                      source=source.id, target=target.id,
                      by_value=by_value, new_oref=new_oref)
    return new_oref


def _next_version(source: Context, object_id: str,
                  record) -> int:
    """Strictly greater than every version this object has had here:
    the incarnation the servant record arrived with (chained hops) and
    any forwarding record a previous departure left behind."""
    previous = source.forwards.get(object_id)
    prior = previous.version if previous else 0
    return max(prior, record.version) + 1
