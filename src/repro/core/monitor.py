"""Per-context load monitoring.

Feeds the §4.3 load-balancing machinery: "the load on the server's
machine increases beyond a high-water mark and the application decides to
migrate".  The monitor tracks, per context and per object:

* a request-rate EWMA (requests/second against the context clock),
* a busy-fraction EWMA (service time / wall time),
* cumulative counters for reporting.

Under simulation the context clock is the virtual clock, so load and the
migration decisions derived from it are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.stats import EwmAverage

__all__ = ["LoadMonitor", "ObjectLoad"]


@dataclass
class ObjectLoad:
    """Cumulative per-object counters."""

    requests: int = 0
    busy_seconds: float = 0.0


class LoadMonitor:
    """Request-rate and busy-fraction tracking for one context."""

    def __init__(self, clock, alpha: float = 0.3):
        self.clock = clock
        self.total_requests = 0
        self.busy_seconds = 0.0
        self.rate = EwmAverage(alpha=alpha, initial=0.0)
        self.busy_fraction = EwmAverage(alpha=alpha, initial=0.0)
        self.per_object: Dict[str, ObjectLoad] = {}
        self._last_seen = clock.now()

    def record_request(self, object_id: str, service_seconds: float) -> None:
        """Record one dispatched request and its service time."""
        now = self.clock.now()
        self.total_requests += 1
        self.busy_seconds += service_seconds
        obj = self.per_object.get(object_id)
        if obj is None:
            obj = self.per_object[object_id] = ObjectLoad()
        obj.requests += 1
        obj.busy_seconds += service_seconds
        gap = now - self._last_seen
        if gap > 0:
            self.rate.add(1.0 / gap)
            self.busy_fraction.add(min(service_seconds / gap, 1.0))
        else:
            # Same-instant burst: nudge the rate up without dividing by 0.
            self.rate.add(self.rate.value + 1.0)
            self.busy_fraction.add(1.0)
        self._last_seen = now

    @property
    def load(self) -> float:
        """The scalar the balancer compares against water marks: the
        busy-fraction EWMA (0 = idle, ~1 = saturated)."""
        return self.busy_fraction.value

    def busiest_object(self) -> str | None:
        """Object id with the most cumulative busy time, if any."""
        if not self.per_object:
            return None
        return max(self.per_object.items(),
                   key=lambda kv: kv[1].busy_seconds)[0]

    def forget_object(self, object_id: str) -> None:
        self.per_object.pop(object_id, None)

    def reset(self) -> None:
        self.total_requests = 0
        self.busy_seconds = 0.0
        self.rate = EwmAverage(alpha=self.rate.alpha, initial=0.0)
        self.busy_fraction = EwmAverage(alpha=self.busy_fraction.alpha,
                                        initial=0.0)
        self.per_object.clear()
        self._last_seen = self.clock.now()
