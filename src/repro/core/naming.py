"""Name service: how clients obtain object references.

In-process registry plus an exportable servant wrapper
(:class:`NameServer`) so the registry itself can be served remotely —
bootstrap with one well-known OR, resolve everything else through it,
exactly the CORBA naming pattern the paper's ORB presumes.

Two design points shared with the replicated directory
(:mod:`repro.directory`), which grows this registry to fleet scale:

* an empty name is an :class:`~repro.exceptions.InvalidNameError` — a
  caller bug (``ValueError`` family), never a lookup that missed;
* the remote ``resolve`` returns a **typed reply** (``found`` flag plus
  the OR and its binding version) instead of marshalling a
  :class:`NameNotFoundError` on every cold lookup — misses are routine
  bootstrap traffic, not exceptions worth a stack-trace round trip;
  they are counted via the ``directory_miss`` event (docs/EVENTS.md).
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.core.objref import ObjectReference
from repro.exceptions import (
    InvalidNameError,
    NameAlreadyBoundError,
    NameNotFoundError,
)
from repro.idl.interface import remote_interface, remote_method

__all__ = ["NameService", "NameServer", "resolve_reply", "resolve_oref"]


def _check_name(name: str) -> None:
    if not isinstance(name, str) or not name:
        raise InvalidNameError("names must be non-empty strings")


class NameService:
    """Thread-safe name -> ObjectReference registry."""

    def __init__(self):
        self._bindings: Dict[str, ObjectReference] = {}
        self._lock = threading.Lock()

    def bind(self, name: str, oref: ObjectReference) -> None:
        """Bind a fresh name; raises if already bound."""
        _check_name(name)
        with self._lock:
            if name in self._bindings:
                raise NameAlreadyBoundError(f"name {name!r} already bound")
            self._bindings[name] = oref.clone()

    def rebind(self, name: str, oref: ObjectReference) -> None:
        """Bind or replace."""
        _check_name(name)
        with self._lock:
            self._bindings[name] = oref.clone()

    def resolve(self, name: str) -> ObjectReference:
        _check_name(name)
        with self._lock:
            try:
                return self._bindings[name].clone()
            except KeyError:
                raise NameNotFoundError(f"name {name!r} is not bound") \
                    from None

    def unbind(self, name: str) -> None:
        _check_name(name)
        with self._lock:
            if name not in self._bindings:
                raise NameNotFoundError(f"name {name!r} is not bound")
            del self._bindings[name]

    def rebind_object(self, object_id: str,
                      new_oref: ObjectReference) -> List[str]:
        """Point every alias of ``object_id`` at ``new_oref``.

        Version-checked: an alias is only replaced when ``new_oref`` is
        the same or a newer incarnation (``ObjectReference.version``),
        so a late-arriving publication from an *older* migration cannot
        roll a binding back.  Returns the names that were updated.

        :func:`repro.core.migration.migrate` calls this on the involved
        ORBs' registries, which keeps ``orb.resolve`` answers current
        even after the source context (and its forwarding record) dies.
        """
        updated: List[str] = []
        with self._lock:
            for name, oref in self._bindings.items():
                if oref.object_id != object_id:
                    continue
                if new_oref.version < oref.version:
                    continue
                self._bindings[name] = new_oref.clone()
                updated.append(name)
        return sorted(updated)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._bindings

    def __len__(self) -> int:
        with self._lock:
            return len(self._bindings)


def resolve_reply(service: NameService, name: str, node: str) -> dict:
    """The typed resolve reply shared by :class:`NameServer` and the
    directory replicas: ``found`` flag, OR + version on a hit, and a
    ``directory_miss`` event on a miss (misses are data, not errors)."""
    from repro.core.instrumentation import GLOBAL_HOOKS

    # ``lease_valid`` mirrors the replicated directory's reply shape: a
    # single NameServer is always authoritative for its own misses.
    try:
        oref = service.resolve(name)
    except NameNotFoundError:
        GLOBAL_HOOKS.emit("directory_miss", name=name, node=node)
        return {"found": False, "name": name, "node": node,
                "lease_valid": True}
    return {"found": True, "name": name, "node": node, "oref": oref,
            "version": oref.version, "lease_valid": True}


def resolve_oref(resolver, name: str) -> ObjectReference:
    """Resolve through any typed-reply resolver (a narrowed
    :class:`NameServer` stub, a raw GP, ...) and unwrap: the OR on a
    hit, :class:`NameNotFoundError` on a miss."""
    reply = resolver.resolve(name)
    if isinstance(reply, ObjectReference):  # a plain NameService
        return reply
    if not reply.get("found"):
        raise NameNotFoundError(f"name {name!r} is not bound")
    return reply["oref"]


@remote_interface("NameServer")
class NameServer:
    """Remote facade over a :class:`NameService`.

    ORs are marshallable values, so the remote signatures traffic in
    them directly.  ``resolve`` answers with the typed reply described
    in the module docstring; unwrap it with :func:`resolve_oref`.
    """

    def __init__(self, service: NameService, *, node: str = "nameserver"):
        self._service = service
        self._node = node

    @remote_method
    def bind(self, name: str, oref) -> None:
        self._service.bind(name, oref)

    @remote_method
    def rebind(self, name: str, oref) -> None:
        self._service.rebind(name, oref)

    @remote_method(retry_safe=True)
    def resolve(self, name: str) -> dict:
        return resolve_reply(self._service, name, self._node)

    @remote_method(retry_safe=True)
    def resolve_or(self, name: str):
        """Compatibility shim for clients written against the original
        wire contract, where ``resolve`` returned the OR directly and
        marshalled a :class:`NameNotFoundError` on every miss.  New
        code should call ``resolve`` and unwrap with
        :func:`resolve_oref`; this method exists so external callers
        have a drop-in target while they migrate."""
        return self._service.resolve(name)

    @remote_method
    def unbind(self, name: str) -> None:
        self._service.unbind(name)

    @remote_method(returns="list")
    def names(self) -> list:
        return self._service.names()
