"""Name service: how clients obtain object references.

In-process registry plus an exportable servant wrapper
(:class:`NameServer`) so the registry itself can be served remotely —
bootstrap with one well-known OR, resolve everything else through it,
exactly the CORBA naming pattern the paper's ORB presumes.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.core.objref import ObjectReference
from repro.exceptions import NameAlreadyBoundError, NameNotFoundError
from repro.idl.interface import remote_interface, remote_method

__all__ = ["NameService", "NameServer"]


class NameService:
    """Thread-safe name -> ObjectReference registry."""

    def __init__(self):
        self._bindings: Dict[str, ObjectReference] = {}
        self._lock = threading.Lock()

    def bind(self, name: str, oref: ObjectReference) -> None:
        """Bind a fresh name; raises if already bound."""
        if not name:
            raise NameNotFoundError("empty name")
        with self._lock:
            if name in self._bindings:
                raise NameAlreadyBoundError(f"name {name!r} already bound")
            self._bindings[name] = oref.clone()

    def rebind(self, name: str, oref: ObjectReference) -> None:
        """Bind or replace."""
        if not name:
            raise NameNotFoundError("empty name")
        with self._lock:
            self._bindings[name] = oref.clone()

    def resolve(self, name: str) -> ObjectReference:
        with self._lock:
            try:
                return self._bindings[name].clone()
            except KeyError:
                raise NameNotFoundError(f"name {name!r} is not bound") \
                    from None

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._bindings:
                raise NameNotFoundError(f"name {name!r} is not bound")
            del self._bindings[name]

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._bindings)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._bindings

    def __len__(self) -> int:
        with self._lock:
            return len(self._bindings)


@remote_interface("NameServer")
class NameServer:
    """Remote facade over a :class:`NameService`.

    ORs are marshallable values, so the remote signatures traffic in them
    directly.
    """

    def __init__(self, service: NameService):
        self._service = service

    @remote_method
    def bind(self, name: str, oref) -> None:
        self._service.bind(name, oref)

    @remote_method
    def rebind(self, name: str, oref) -> None:
        self._service.rebind(name, oref)

    @remote_method
    def resolve(self, name: str):
        return self._service.resolve(name)

    @remote_method
    def unbind(self, name: str) -> None:
        self._service.unbind(name)

    @remote_method(returns="list")
    def names(self) -> list:
        return self._service.names()
