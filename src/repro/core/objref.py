"""Object references and protocol tables.

An Object Reference (OR) "uniquely identifies an Open HPC++ server object
[and] contains a table of protocols and protocol specific information
(proto-data) that can be used to access the object.  The protocols in the
OR are ordered by preference." (§3.1)

ORs are plain data and fully marshallable, which is what makes the
paper's capability-exchange property (§4) fall out for free: passing a GP
(and hence its OR, and hence its glue entries' capability descriptors) to
another process is just marshalling a value.

The protocol table is an ordinary mutable list — deliberately so.  Open
Implementation means the application may reorder or edit it to steer
protocol selection (§3.2, fourth aspect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import MarshalError
from repro.idl.types import InterfaceSpec
from repro.serialization import marshal as _marshal

__all__ = ["ProtocolEntry", "ObjectReference"]


@dataclass
class ProtocolEntry:
    """One row of an OR's protocol table: a proto id plus proto-data.

    ``proto_data`` is schemaless by design (each proto-class owns its own
    address format); common keys:

    ``machine``
        server machine name, used by applicability predicates;
    ``addresses``
        list of transport addresses (multimethod);
    ``capabilities``
        (glue only) ordered capability descriptors;
    ``inner``
        (glue only) the wire-carrying protocol entry underneath;
    ``applicability``
        optional named rule overriding the proto-class default.
    """

    proto_id: str
    proto_data: dict = field(default_factory=dict)

    def to_wire(self) -> dict:
        return {"proto_id": self.proto_id, "proto_data": self.proto_data}

    @classmethod
    def from_wire(cls, data: dict) -> "ProtocolEntry":
        return cls(proto_id=data["proto_id"],
                   proto_data=dict(data["proto_data"]))

    def clone(self) -> "ProtocolEntry":
        import copy

        return ProtocolEntry(self.proto_id, copy.deepcopy(self.proto_data))


@dataclass
class ObjectReference:
    """Identifies one exported server object and how to reach it."""

    object_id: str
    context_id: str
    interface: InterfaceSpec
    protocols: List[ProtocolEntry] = field(default_factory=list)
    version: int = 0          # bumped on migration

    def entry(self, proto_id: str) -> Optional[ProtocolEntry]:
        """First table entry with the given proto id, if any."""
        for entry in self.protocols:
            if entry.proto_id == proto_id:
                return entry
        return None

    def proto_ids(self) -> List[str]:
        return [e.proto_id for e in self.protocols]

    def clone(self) -> "ObjectReference":
        return ObjectReference(
            object_id=self.object_id,
            context_id=self.context_id,
            interface=self.interface,
            protocols=[e.clone() for e in self.protocols],
            version=self.version,
        )

    # -- wire form -----------------------------------------------------------

    def to_wire_dict(self) -> dict:
        return {
            "object_id": self.object_id,
            "context_id": self.context_id,
            "interface": self.interface.to_wire(),
            "protocols": [e.to_wire() for e in self.protocols],
            "version": self.version,
        }

    @classmethod
    def from_wire_dict(cls, data: dict) -> "ObjectReference":
        return cls(
            object_id=data["object_id"],
            context_id=data["context_id"],
            interface=InterfaceSpec.from_wire(data["interface"]),
            protocols=[ProtocolEntry.from_wire(e)
                       for e in data["protocols"]],
            version=int(data["version"]),
        )

    def to_bytes(self) -> bytes:
        return _marshal.dumps(self.to_wire_dict())

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObjectReference":
        value = _marshal.loads(data)
        if not isinstance(value, dict) or "object_id" not in value:
            raise MarshalError("not an ObjectReference wire form")
        return cls.from_wire_dict(value)

    # -- stringified references (the CORBA IOR analogue) -----------------

    #: URI scheme for stringified references.
    URI_SCHEME = "hpcor"

    def to_uri(self) -> str:
        """Stringify for out-of-band exchange (files, env vars, mail) —
        the moral equivalent of CORBA's ``IOR:...`` strings."""
        import base64

        payload = base64.urlsafe_b64encode(self.to_bytes()).decode("ascii")
        return f"{self.URI_SCHEME}:{payload}"

    @classmethod
    def from_uri(cls, uri: str) -> "ObjectReference":
        import base64
        import binascii

        prefix = cls.URI_SCHEME + ":"
        if not uri.startswith(prefix):
            raise MarshalError(
                f"not an object-reference URI (expected {prefix!r}...)")
        try:
            raw = base64.urlsafe_b64decode(uri[len(prefix):].encode())
        except (binascii.Error, ValueError) as exc:
            raise MarshalError(f"corrupt object-reference URI: {exc}") \
                from exc
        return cls.from_bytes(raw)


def _install_marshal_hooks() -> None:
    """Teach the marshaller to carry ORs as first-class values, so GPs
    (and the capabilities inside them) can be method arguments/results."""

    _marshal.set_objref_hooks(
        is_objref=lambda v: isinstance(v, ObjectReference),
        to_bytes=lambda v: v.to_bytes(),
        from_bytes=ObjectReference.from_bytes,
    )


_install_marshal_hooks()
