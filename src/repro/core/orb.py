"""The open ORB: the runtime that owns contexts, transports, naming.

"Open HPC++ uses the principle of Open Implementation to design an open
ORB that lets its applications control its critical communication
protocol decisions in a limited scope, while still hiding low-level
details of the communication mechanism." (§2)

Two deployment shapes:

* ``ORB()`` — wall-clock mode: contexts talk over in-process queues,
  shared-memory rings, and (opt-in) real TCP.
* ``ORB(simulator=NetworkSimulator(...))`` — simulated mode: contexts
  are placed on simulated machines and all traffic is charged virtual
  time; this is the mode the paper's experiments run in.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.context import Context, Placement
from repro.core.naming import NameService
from repro.exceptions import HpcError
from repro.simnet.simulator import NetworkSimulator
from repro.transport.inproc import InProcTransport
from repro.transport.shm import ShmTransport
from repro.transport.tcp import TcpTransport

__all__ = ["ORB"]


class ORB:
    """Runtime root object."""

    def __init__(self, simulator: Optional[NetworkSimulator] = None):
        self.sim = simulator
        # Shared wall-clock transports (every non-sim context can reach
        # every other through these).
        self.inproc = InProcTransport()
        self.shm = ShmTransport()
        self.tcp = TcpTransport()
        self.contexts: Dict[str, Context] = {}
        self.naming = NameService()

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------

    def context(self, name: Optional[str] = None, *, machine=None,
                placement: Optional[Placement] = None,
                encoding: str = "xdr", enable_tcp: bool = False,
                pool=None) -> Context:
        """Create and register a context.

        ``machine`` (a simulated :class:`~repro.simnet.topology.Machine`
        or its name) places the context in the simulated world;
        ``placement`` tags a wall-clock context's machine/LAN/site for
        applicability purposes.
        """
        if machine is not None:
            if self.sim is None:
                raise HpcError("this ORB has no simulator; "
                               "cannot place a context on a machine")
            if isinstance(machine, str):
                machine = self.sim.topology.machine(machine)
        ctx = Context(self, name=name, machine=machine,
                      placement=placement, encoding=encoding,
                      enable_tcp=enable_tcp, pool=pool)
        if ctx.id in self.contexts:
            raise HpcError(f"context id {ctx.id!r} already in use")
        self.contexts[ctx.id] = ctx
        return ctx

    def find_context(self, context_id: str) -> Context:
        try:
            return self.contexts[context_id]
        except KeyError:
            raise HpcError(f"unknown context {context_id!r}") from None

    # ------------------------------------------------------------------
    # naming sugar
    # ------------------------------------------------------------------

    def bind_name(self, name: str, oref) -> None:
        self.naming.bind(name, oref)

    def resolve(self, name: str):
        return self.naming.resolve(name)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Snapshot of the whole runtime (see ``Context.describe``)."""
        info = {
            "mode": "sim" if self.sim is not None else "wall-clock",
            "contexts": {cid: ctx.describe()
                         for cid, ctx in self.contexts.items()},
            "names": self.naming.names(),
        }
        if self.sim is not None:
            info["virtual_time"] = self.sim.clock.now()
            info["messages"] = self.sim.log.total_messages
        return info

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        for ctx in list(self.contexts.values()):
            ctx.stop()
        self.contexts.clear()

    def __enter__(self) -> "ORB":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "sim" if self.sim is not None else "wall-clock"
        return f"<ORB {mode} contexts={sorted(self.contexts)}>"
