"""Protocol pools (§3.1).

"A proto-pool is a repository of proto-objects, where the proto-objects
are ordered by preference.  An application component uses a proto-pool to
determine the protocols available to it for communication."

Our pools hold *proto ids* (the proto-objects themselves are built on
demand by the proto-classes); what matters to selection is membership and
order, and both are mutable by the application — the Open Implementation
control surface.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.exceptions import ProtocolError

__all__ = ["ProtocolPool"]


class ProtocolPool:
    """Ordered, mutable set of allowed protocol ids."""

    def __init__(self, proto_ids: Iterable[str] = ()):
        self._ids: List[str] = []
        for pid in proto_ids:
            self.allow(pid)

    def allow(self, proto_id: str, *, prefer: bool = False) -> None:
        """Add a protocol (idempotent).  ``prefer=True`` puts it first."""
        if not proto_id:
            raise ProtocolError("empty protocol id")
        if proto_id in self._ids:
            if prefer:
                self._ids.remove(proto_id)
                self._ids.insert(0, proto_id)
            return
        if prefer:
            self._ids.insert(0, proto_id)
        else:
            self._ids.append(proto_id)

    def disallow(self, proto_id: str) -> None:
        """Remove a protocol; unknown ids are ignored."""
        try:
            self._ids.remove(proto_id)
        except ValueError:
            pass

    def reorder(self, proto_ids: Iterable[str]) -> None:
        """Replace the order wholesale; must be a permutation of the
        current contents."""
        new = list(proto_ids)
        if sorted(new) != sorted(self._ids):
            raise ProtocolError(
                f"reorder {new} is not a permutation of {self._ids}")
        self._ids = new

    def ids(self) -> List[str]:
        return list(self._ids)

    def clone(self) -> "ProtocolPool":
        return ProtocolPool(self._ids)

    def __contains__(self, proto_id: str) -> bool:
        return proto_id in self._ids

    def __iter__(self) -> Iterator[str]:
        return iter(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProtocolPool({self._ids})"
