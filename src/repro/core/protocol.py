"""Proto-classes and proto-objects (§3.1).

"A proto-object encapsulates a specific communication protocol ... (a
proto-object is an instance of a proto-class)."  In this library:

* a :class:`ProtocolClass` is the registered *type* of a protocol: it
  knows its applicability rule and how to build a client-side
  proto-object from an OR entry;
* a :class:`ProtocolClient` is the client-side proto-object: it owns a
  connection (startpoint) and performs marshalled invocations.

Custom protocols (§3.2, second aspect) are ordinary subclasses registered
with :func:`register_proto_class` — "users write their own proto-classes
that satisfy a standard interface".

Two concrete protocols live here:

* ``nexus`` — the general-purpose protocol: any transport, applicable
  everywhere (the paper's "Nexus based protocol that uses TCP").
* ``shm``  — the shared-memory protocol, applicable only on one machine.

The capability-carrying ``glue`` protocol is in :mod:`repro.core.glue`.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional, Type

from repro.core.objref import ProtocolEntry
from repro.core.request import (
    Invocation,
    decode_reply,
    encode_invocation,
)
from repro.core.selection import Locality, rule_applies
from repro.exceptions import (
    DeadlineExceededError,
    OverloadError,
    ProtocolError,
    TransportError,
    UnknownProtocolError,
)
from repro.nexus.endpoint import PipelinedStartpoint, Startpoint
from repro.serialization.cdr import CdrDecoder, CdrEncoder
from repro.serialization.marshal import BatchReply, BatchRequest, Marshaller
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = [
    "ProtocolClient",
    "ProtocolClass",
    "PROTO_CLASSES",
    "register_proto_class",
    "get_proto_class",
    "INVOKE_HANDLER",
    "GLUE_HANDLER",
    "BATCH_HANDLER",
    "GLUE_BATCH_HANDLER",
    "marshaller_for",
]

#: RSR handler names used by the invocation path (Figure 1 / Figure 2).
INVOKE_HANDLER = "hpc.invoke"
GLUE_HANDLER = "hpc.glue"
#: Batched variants: the payload is one BatchRequest record carrying
#: many sub-invocations; the reply is one BatchReply.
BATCH_HANDLER = "hpc.invoke.batch"
GLUE_BATCH_HANDLER = "hpc.glue.batch"

_MARSHALLERS = {
    "xdr": Marshaller(XdrEncoder, XdrDecoder),
    "cdr": Marshaller(CdrEncoder, CdrDecoder),
}


def marshaller_for(encoding: str) -> Marshaller:
    """The shared marshaller for a named encoding (``xdr`` or ``cdr``)."""
    try:
        return _MARSHALLERS[encoding]
    except KeyError:
        raise ProtocolError(f"unknown encoding {encoding!r}") from None


class ProtocolClient(abc.ABC):
    """Client-side proto-object: a connected invoker."""

    def __init__(self, entry: ProtocolEntry, context):
        self.entry = entry
        self.context = context
        self.marshaller = marshaller_for(
            entry.proto_data.get("encoding", "xdr"))
        #: Per-client call timeout; defaults to the context-wide value.
        #: The health monitor tightens this for probes.
        self.timeout = context.call_timeout
        self._startpoint: Optional[Startpoint] = None

    # -- connection management -------------------------------------------------

    def _connect(self) -> Startpoint:
        """Open (and cache) the startpoint to the first reachable
        address in the entry's address list (multimethod fallback).

        Socket (tcp) channels get a :class:`PipelinedStartpoint` (many
        outstanding requests per connection, demuxed by correlation id)
        unless the context opts out via ``pipelined_channels=False``.
        In-process channels and the synchronous simulated world keep
        the lock-step startpoint: a queue pair has no round trip to
        hide, and serializing per channel keeps an eviction mid-call a
        single-request failure instead of a mass kill of every
        in-flight waiter.
        """
        if self._startpoint is not None:
            return self._startpoint
        addresses = self.entry.proto_data.get("addresses", [])
        errors = []
        for address in addresses:
            transport = self.context.transports.get(address.get("transport"))
            if transport is None:
                errors.append(f"{address.get('transport')}: not available "
                              "in this context")
                continue
            try:
                channel = transport.connect(address)
            except TransportError as exc:
                errors.append(f"{address.get('transport')}: {exc}")
                continue
            pipelined = (address.get("transport") == "tcp"
                         and self.context.sim is None
                         and getattr(self.context, "pipelined_channels",
                                     True))
            sp_cls = PipelinedStartpoint if pipelined else Startpoint
            self._startpoint = sp_cls(channel, timeout=self.timeout)
            return self._startpoint
        raise ProtocolError(
            "no reachable address for protocol "
            f"{self.entry.proto_id!r}: {errors or 'empty address list'}")

    def call_raw(self, handler: str, payload: bytes, oneway: bool = False,
                 priority: int = 0,
                 deadline: Optional[float] = None) -> Optional[bytes]:
        """One RSR to the server endpoint, reconnecting once on a dead
        cached channel.  ``priority``/``deadline`` (remaining seconds)
        ride the RSR META trailer as the server's admission hints."""
        sp = self._connect()
        try:
            return sp.call(handler, payload, oneway=oneway,
                           priority=priority, deadline=deadline)
        except OverloadError:
            # The server *answered* — with pushback.  The connection is
            # healthy; an immediate fresh-channel resend would be
            # exactly the blind retry the hint asks us not to make.
            raise
        except TransportError as exc:
            # Cached connection went stale (peer restarted): retry fresh
            # — but only when the request provably never left this host;
            # anything that may have reached dispatch belongs to the
            # idempotence-aware retry layer in the GP.
            self.close()
            if getattr(exc, "request_sent", False) \
                    or getattr(exc, "request_dispatched", False):
                raise
            sp = self._connect()
            return sp.call(handler, payload, oneway=oneway,
                           priority=priority, deadline=deadline)

    # -- invocation --------------------------------------------------------------

    def _admission_hints(self,
                         invocation: Invocation) -> tuple[int, Optional[float]]:
        """The (priority, remaining-deadline) pair to stamp on the wire.

        The invocation's deadline is absolute on the calling context's
        clock; the wire carries the *remainder*.  A budget that is
        already gone fails fast here — no round trip for a request the
        server would shed on arrival.
        """
        remaining = None
        if invocation.deadline is not None:
            remaining = invocation.deadline - self.context.clock.now()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"deadline already expired before sending "
                    f"{invocation.method!r}")
        return invocation.priority, remaining

    def invoke(self, invocation: Invocation) -> Any:
        """Marshal, send, decode.  The default path used by ``nexus`` and
        ``shm``; ``glue`` overrides to weave capabilities in."""
        priority, remaining = self._admission_hints(invocation)
        payload = encode_invocation(self.marshaller, invocation)
        self.context.charge_cost("memcpy", len(payload))
        reply = self.call_raw(INVOKE_HANDLER, payload,
                              oneway=invocation.oneway,
                              priority=priority, deadline=remaining)
        if invocation.oneway:
            return None
        return decode_reply(self.marshaller, reply)

    def invoke_batch(self, payloads, priority: int = 0,
                     deadline: Optional[float] = None) -> list:
        """One round trip for many encoded invocations.

        ``payloads`` are encoded invocation records (what
        :func:`~repro.core.request.encode_invocation` produces); the
        return value is the list of raw reply envelopes in sub-request
        order.  Decoding each envelope — and therefore per-member
        success/failure — is the caller's business, so one failed member
        never poisons its batch-mates.  ``deadline`` is remaining
        seconds; the server's admission layer accounts the batch as N
        units and sheds it atomically with one pushback reply.
        """
        record = BatchRequest.of(payloads).to_bytes()
        self.context.charge_cost("memcpy", len(record))
        reply = self.call_raw(BATCH_HANDLER, record, priority=priority,
                              deadline=deadline)
        return BatchReply.from_bytes(reply).in_order(len(payloads))

    def close(self) -> None:
        if self._startpoint is not None:
            self._startpoint.close()
            self._startpoint = None


class ProtocolClass(abc.ABC):
    """Registered protocol type: applicability + client factory."""

    #: Registry key, also the proto id appearing in ORs.
    proto_id: str = ""
    #: Default applicability rule (overridable per entry via proto-data).
    default_applicability: str = "always"
    #: Client proto-object class.
    client_cls: Type[ProtocolClient] = ProtocolClient

    @classmethod
    def applicability_rule(cls, entry: ProtocolEntry) -> str:
        return entry.proto_data.get("applicability",
                                    cls.default_applicability)

    @classmethod
    def applicable(cls, entry: ProtocolEntry, locality: Locality,
                   context) -> bool:
        """Is this entry usable for the given client/server relationship?

        Subclasses extend (the glue protocol ANDs its capabilities)."""
        return rule_applies(cls.applicability_rule(entry), locality)

    @classmethod
    def make_client(cls, entry: ProtocolEntry, context) -> ProtocolClient:
        return cls.client_cls(entry, context)


PROTO_CLASSES: Dict[str, Type[ProtocolClass]] = {}


def register_proto_class(cls: Type[ProtocolClass],
                         replace: bool = False) -> Type[ProtocolClass]:
    """Register a proto-class (usable as a decorator) — the standard
    interface custom protocols plug into."""
    if not cls.proto_id:
        raise ProtocolError(f"{cls.__name__} has no proto_id")
    if cls.proto_id in PROTO_CLASSES and not replace:
        raise ProtocolError(
            f"proto-class {cls.proto_id!r} already registered")
    PROTO_CLASSES[cls.proto_id] = cls
    return cls


def get_proto_class(proto_id: str) -> Type[ProtocolClass]:
    try:
        return PROTO_CLASSES[proto_id]
    except KeyError:
        raise UnknownProtocolError(
            f"no proto-class registered for {proto_id!r}") from None


# ---------------------------------------------------------------------------
# Built-in protocols
# ---------------------------------------------------------------------------


@register_proto_class
class NexusProtocol(ProtocolClass):
    """General-purpose protocol over any transport ("Nexus based")."""

    proto_id = "nexus"
    default_applicability = "always"


@register_proto_class
class ShmProtocol(ProtocolClass):
    """Shared-memory protocol; same machine only (§4.3)."""

    proto_id = "shm"
    default_applicability = "same-machine"
