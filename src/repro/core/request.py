"""Invocation and reply wire model.

An :class:`Invocation` is what the GP marshals and what the server
dispatches: ``(object id, method, args)``.  Replies use a small status
envelope so the three outcomes the ORB distinguishes — a value, a remote
exception, or a *moved* notice carrying the forwarding OR (migration,
§4.3) — all flow through the same capability processing path.

Both directions go through the value marshaller, so arguments may be any
marshallable value including numpy arrays and other object references.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.exceptions import (
    MarshalError,
    ObjectMovedError,
    OverloadError,
    RemoteException,
)
from repro.serialization.marshal import Marshaller

__all__ = ["Invocation", "ReplyStatus", "RequestMeta",
           "encode_invocation", "decode_invocation",
           "encode_reply_ok", "encode_reply_exception",
           "encode_reply_moved", "encode_reply_overload", "decode_reply"]


class ReplyStatus(enum.IntEnum):
    """Outcome discriminator in the reply envelope."""

    OK = 0
    EXCEPTION = 1
    MOVED = 2
    OVERLOAD = 3


@dataclass(frozen=True)
class Invocation:
    """One remote method invocation.

    ``priority`` and ``deadline`` are *local* admission hints — they
    ride the RSR trailer, not the invocation record, so
    :func:`encode_invocation` deliberately leaves them out.  ``deadline``
    is absolute on the calling context's clock; the protocol client
    converts it to remaining seconds at send time.
    """

    object_id: str
    method: str
    args: Tuple = ()
    oneway: bool = False
    priority: int = 0
    deadline: Optional[float] = None


@dataclass
class RequestMeta:
    """Per-request context threaded through capability processing.

    ``principal`` is set by the server half of the authentication
    capability and consulted by the ACL check at dispatch.
    """

    direction: str = "request"      # "request" | "reply"
    principal: Optional[object] = None
    properties: dict = field(default_factory=dict)


def encode_invocation(m: Marshaller, inv: Invocation) -> bytes:
    return m.dumps_many([inv.object_id, inv.method, list(inv.args),
                         inv.oneway])


def decode_invocation(m: Marshaller, data) -> Invocation:
    object_id, method, args, oneway = m.loads_many(data, 4)
    if not isinstance(object_id, str) or not isinstance(method, str):
        raise MarshalError("malformed invocation payload")
    return Invocation(object_id=object_id, method=method, args=tuple(args),
                      oneway=bool(oneway))


def encode_reply_ok(m: Marshaller, value) -> bytes:
    return m.dumps_many([int(ReplyStatus.OK), value])


def encode_reply_exception(m: Marshaller, exc: BaseException) -> bytes:
    return m.dumps_many([int(ReplyStatus.EXCEPTION),
                         (type(exc).__name__, str(exc))])


def encode_reply_moved(m: Marshaller, forward_bytes: bytes) -> bytes:
    return m.dumps_many([int(ReplyStatus.MOVED), forward_bytes])


def encode_reply_overload(m: Marshaller, retry_after: float,
                          reason: str = "overload") -> bytes:
    """An in-envelope pushback: the dispatch layer itself shed the call
    (e.g. its propagated deadline had already expired).  Used where the
    reply must flow through normal capability processing — the
    endpoint-level shed path uses the RSR OVERLOAD flag instead."""
    return m.dumps_many([int(ReplyStatus.OVERLOAD),
                         (float(retry_after), reason)])


def decode_reply(m: Marshaller, data):
    """Decode a reply envelope; returns the value or raises the carried
    :class:`RemoteException` / :class:`ObjectMovedError` /
    :class:`OverloadError`."""
    status, payload = m.loads_many(data, 2)
    status = ReplyStatus(status)
    if status is ReplyStatus.OK:
        return payload
    if status is ReplyStatus.EXCEPTION:
        remote_type, message = payload
        raise RemoteException(remote_type, message)
    if status is ReplyStatus.OVERLOAD:
        retry_after, reason = payload
        raise OverloadError(
            f"request shed by server ({reason}); retry after "
            f"{retry_after:.3f}s", retry_after=retry_after, reason=reason)
    # MOVED: payload is the forwarding OR in wire bytes.
    from repro.core.objref import ObjectReference

    forward = ObjectReference.from_bytes(payload)
    raise ObjectMovedError(
        f"object {forward.object_id} moved to context "
        f"{forward.context_id}", forward=forward)
