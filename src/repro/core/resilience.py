"""Resilient invocation policy objects: retries, budgets, and breakers.

The paper's ordered protocol table is an *adaptation* mechanism: when a
protocol stops working the ORB can fall through to the next applicable
entry (§3.2).  This module supplies the policy half of that story:

* :class:`RetryPolicy` — how many attempts a GP may spend on one logical
  invocation, how long to back off between them (exponential with seeded
  jitter, so simulated runs are bit-for-bit reproducible), and an
  optional per-call deadline measured on the calling context's clock.
* :class:`RetryBudget` — a token bucket shared by *all* concurrent calls
  of a context to one peer: first attempts deposit a fraction of a
  token, every backoff retry withdraws a whole one, so a flapping peer
  is hit with a bounded retry load instead of ``callers x max_attempts``
  (the amplification hazard of per-call budgets).
* :class:`RetryBudgetRegistry` — one budget per remote context id,
  owned by the calling context and consulted by every GP bound there.
* :class:`CircuitBreaker` — the classic closed / open / half-open state
  machine over an arbitrary :class:`~repro.util.timing.TimeSource`; a
  peer that keeps failing is shed *before* it burns retry budget.
* :class:`BreakerRegistry` — one breaker per ``(context_id, proto_id)``
  pair, shared by every GP bound in a context, publishing
  ``breaker_open`` / ``breaker_close`` events to the hook bus.
* :class:`HedgePolicy` — when and how to race a second attempt for
  retry-safe methods: after the tracked latency crosses a percentile,
  not after the timeout (the paper's adaptive table, §3.2, made
  proactive).

All randomness comes from :class:`repro.security.prng.Pcg32`; nothing
here reads the wall clock directly, so under a
:class:`~repro.simnet.clock.VirtualClock` the whole recovery path is
deterministic (the budget and hedge trigger are pure counter/percentile
arithmetic — no clock draws at all).
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.security.prng import Pcg32
from repro.util.timing import TimeSource

__all__ = [
    "AttemptRecord",
    "RetryPolicy",
    "RetryBudget",
    "RetryBudgetRegistry",
    "HedgePolicy",
    "BreakerState",
    "CircuitBreaker",
    "BreakerRegistry",
    "PushbackRegistry",
    "sleep_on",
]


@dataclass(frozen=True)
class AttemptRecord:
    """One failed invocation attempt, kept in the trail of a
    :class:`~repro.exceptions.ResilienceError`."""

    attempt: int
    proto_id: str
    error: str
    at: float                  # clock time when the attempt failed
    dispatched: bool = False   # did the request (possibly) reach dispatch?


def sleep_on(clock: TimeSource, seconds: float) -> None:
    """Pause for ``seconds`` on the given time source.

    A virtual clock is advanced in place (deterministic, instant); a wall
    clock really sleeps.  Used for retry backoff so the same policy code
    drives both worlds.
    """
    if seconds <= 0:
        return
    advance = getattr(clock, "advance", None)
    if advance is not None:
        advance(seconds)
    else:
        time.sleep(seconds)


class RetryPolicy:
    """Retry budget and backoff schedule for one GP.

    ``backoff(attempt)`` for attempt ``n`` (1-based) is
    ``min(base * multiplier**(n-1), max_backoff)`` scaled by a seeded
    jitter factor in ``[1, 1 + jitter]``.  ``deadline`` (seconds, by the
    calling context's clock) bounds the whole logical call including
    backoff pauses.

    ``retry_unsafe=True`` drops the idempotence guard and retries even
    when a request may have reached dispatch — only sensible when every
    method of the interface is idempotent by construction.
    """

    def __init__(self, max_attempts: int = 3, base_backoff: float = 0.05,
                 multiplier: float = 2.0, max_backoff: float = 2.0,
                 jitter: float = 0.25, deadline: Optional[float] = None,
                 seed: int = 0, retry_unsafe: bool = False):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_backoff < 0 or max_backoff < 0:
            raise ValueError("backoff times must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.deadline = deadline
        self.retry_unsafe = retry_unsafe
        self.seed = seed
        self._rng = Pcg32(seed, stream=0x5E11)

    def backoff(self, attempt: int) -> float:
        """Pause before retry number ``attempt`` (1-based count of
        failures so far)."""
        base = min(self.base_backoff * self.multiplier ** (attempt - 1),
                   self.max_backoff)
        if self.jitter == 0:
            return base
        return base * (1.0 + self.jitter * self._rng.uniform())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RetryPolicy(max_attempts={self.max_attempts}, "
                f"base={self.base_backoff}, deadline={self.deadline})")


class RetryBudget:
    """Token-bucket retry budget shared across concurrent calls.

    ``deposit()`` is called once per *logical* call (the first attempt
    is always free — it is offered load, not amplification) and credits
    ``deposit_per_call`` tokens, capped at ``max_tokens``.
    ``try_withdraw()`` is called before every backoff retry and spends
    ``withdraw_per_retry`` tokens; when the bucket cannot cover it the
    retry is refused.  The steady-state effect is the classic ratio
    budget: sustained retry traffic is bounded at
    ``deposit_per_call / withdraw_per_retry`` of the offered load, plus
    the ``max_tokens`` burst allowance.

    The bucket starts full so a cold client can still ride out a brief
    blip at full :class:`RetryPolicy` strength.  Purely counter-based —
    no clock, no randomness — so budget decisions are bit-for-bit
    deterministic under simulation.
    """

    def __init__(self, max_tokens: float = 10.0,
                 deposit_per_call: float = 0.1,
                 withdraw_per_retry: float = 1.0):
        if max_tokens <= 0:
            raise ValueError("max_tokens must be positive")
        if deposit_per_call < 0:
            raise ValueError("deposit_per_call must be non-negative")
        if withdraw_per_retry <= 0:
            raise ValueError("withdraw_per_retry must be positive")
        self.max_tokens = float(max_tokens)
        self.deposit_per_call = float(deposit_per_call)
        self.withdraw_per_retry = float(withdraw_per_retry)
        self._tokens = float(max_tokens)
        self.deposits = 0          # logical calls seen
        self.withdrawals = 0       # retries granted
        self.refusals = 0          # retries refused
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def deposit(self) -> None:
        """Credit one logical call's worth of retry allowance."""
        with self._lock:
            self.deposits += 1
            self._tokens = min(self._tokens + self.deposit_per_call,
                               self.max_tokens)

    def try_withdraw(self) -> bool:
        """Spend one retry's worth of tokens; False when exhausted."""
        with self._lock:
            if self._tokens < self.withdraw_per_retry:
                self.refusals += 1
                return False
            self._tokens -= self.withdraw_per_retry
            self.withdrawals += 1
            return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RetryBudget(tokens={self._tokens:.2f}/"
                f"{self.max_tokens}, retries={self.withdrawals}, "
                f"refused={self.refusals})")


class RetryBudgetRegistry:
    """One :class:`RetryBudget` per remote context id.

    Owned by the *calling* context; every GP bound there shares the
    budget of the peer it talks to, which is exactly what bounds the
    amplification of N concurrent ``invoke_async`` calls against one
    flapping peer.
    """

    def __init__(self, max_tokens: float = 10.0,
                 deposit_per_call: float = 0.1,
                 withdraw_per_retry: float = 1.0):
        self.max_tokens = max_tokens
        self.deposit_per_call = deposit_per_call
        self.withdraw_per_retry = withdraw_per_retry
        self._budgets: Dict[str, RetryBudget] = {}
        self._lock = threading.Lock()

    def get(self, context_id: str) -> RetryBudget:
        with self._lock:
            budget = self._budgets.get(context_id)
            if budget is None:
                budget = RetryBudget(
                    max_tokens=self.max_tokens,
                    deposit_per_call=self.deposit_per_call,
                    withdraw_per_retry=self.withdraw_per_retry)
                self._budgets[context_id] = budget
            return budget

    def snapshot(self) -> Dict[str, float]:
        """Remaining tokens per peer (diagnostics)."""
        with self._lock:
            return {cid: b.tokens for cid, b in self._budgets.items()}


class HedgePolicy:
    """When to race a second attempt for a retry-safe method.

    A hedge fires once the primary attempt has been outstanding longer
    than the ``quantile`` of the tracked latency distribution for the
    same ``(peer context, protocol)`` pair; the second attempt runs on
    the next-best applicable protocol-table entry (or a fresh connection
    over the same entry when the table has no alternative) and the first
    reply wins.  ``min_samples`` keeps the policy quiet until the
    latency tracker has seen enough traffic to know what "slow" means;
    ``min_delay``/``max_delay`` clamp the trigger.  ``max_hedges`` is
    the number of extra attempts per logical call (only 1 is currently
    raced).
    """

    def __init__(self, enabled: bool = True, quantile: float = 0.95,
                 min_samples: int = 20, min_delay: float = 0.0,
                 max_delay: Optional[float] = None, max_hedges: int = 1):
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if min_delay < 0:
            raise ValueError("min_delay must be non-negative")
        if max_delay is not None and max_delay < min_delay:
            raise ValueError("max_delay must be >= min_delay")
        if max_hedges < 0:
            raise ValueError("max_hedges must be non-negative")
        self.enabled = enabled
        self.quantile = quantile
        self.min_samples = min_samples
        self.min_delay = min_delay
        self.max_delay = max_delay
        self.max_hedges = max_hedges

    def hedge_delay(self, tracker) -> Optional[float]:
        """Seconds to wait before hedging, or None to not hedge.

        ``tracker`` is a
        :class:`~repro.core.instrumentation.LatencyTracker` (anything
        with ``count`` and ``quantile(q)``).
        """
        if not self.enabled or self.max_hedges < 1:
            return None
        if tracker is None or tracker.count < self.min_samples:
            return None
        delay = tracker.quantile(self.quantile)
        if delay is None:
            return None
        delay = max(delay, self.min_delay)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HedgePolicy(enabled={self.enabled}, "
                f"q={self.quantile}, min_samples={self.min_samples})")


class PushbackRegistry:
    """Per-peer overload pushback state for one calling context.

    When a server sheds a request it answers with an
    :class:`~repro.exceptions.OverloadError` carrying a ``retry_after``
    hint.  The GP notes that hint here; until it elapses (measured on
    the calling context's clock) every GP bound to the same peer

    * stretches its backoff pauses to at least the remaining hint, and
    * suppresses hedging — racing a *second* request at a server that
      just said "too busy" is anti-cooperative.

    Distinct from the circuit breaker on purpose: a breaker opens on a
    peer that looks *dead*, pushback throttles a peer that is provably
    *alive* (it answered!) but saturated.  An overload reply is neither
    a breaker strike nor a reason to fail over to another protocol
    entry — the peer is the same behind every entry.
    """

    def __init__(self, clock: TimeSource):
        self.clock = clock
        self._until: Dict[str, float] = {}
        self._lock = threading.Lock()
        self.notes = 0

    def note(self, context_id: str, retry_after: float) -> None:
        """Record a pushback hint from a peer; hints only extend."""
        if retry_after <= 0:
            return
        until = self.clock.now() + retry_after
        with self._lock:
            self.notes += 1
            if until > self._until.get(context_id, 0.0):
                self._until[context_id] = until

    def remaining(self, context_id: str) -> float:
        """Seconds of pushback left for a peer (0.0 when none)."""
        with self._lock:
            until = self._until.get(context_id)
            if until is None:
                return 0.0
            left = until - self.clock.now()
            if left <= 0:
                del self._until[context_id]
                return 0.0
            return left

    def active(self, context_id: str) -> bool:
        return self.remaining(context_id) > 0

    def snapshot(self) -> Dict[str, float]:
        """Remaining pushback seconds per peer (diagnostics)."""
        with self._lock:
            now = self.clock.now()
            return {cid: round(until - now, 6)
                    for cid, until in self._until.items() if until > now}


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed / open / half-open failure shedding over one time source.

    ``failure_threshold`` consecutive failures open the breaker; while
    open, ``allow()`` is False until ``cooldown`` seconds elapse on the
    clock, at which point the breaker turns half-open and admits probe
    traffic.  A success in half-open closes it; a failure re-opens it
    (and restarts the cooldown).
    """

    def __init__(self, clock: TimeSource, failure_threshold: int = 5,
                 cooldown: float = 30.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None

    def allow(self) -> bool:
        """May a request pass right now?  (Transitions open→half-open
        when the cooldown has elapsed.)"""
        if self.state is BreakerState.OPEN:
            if self.clock.now() - self.opened_at >= self.cooldown:
                self.state = BreakerState.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> bool:
        """Note a success; returns True if this closed an open breaker."""
        reopened = self.state is not BreakerState.CLOSED
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = None
        return reopened

    def record_failure(self) -> bool:
        """Note a failure; returns True if this opened the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.OPEN
            self.opened_at = self.clock.now()
            return True
        self.failures += 1
        if self.state is BreakerState.CLOSED \
                and self.failures >= self.failure_threshold:
            self.state = BreakerState.OPEN
            self.opened_at = self.clock.now()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CircuitBreaker({self.state.value}, "
                f"failures={self.failures})")


class BreakerRegistry:
    """Per-``(context_id, proto_id)`` breakers for one calling context.

    GPs consult :meth:`allow` during protocol selection and report
    outcomes through :meth:`record_success` / :meth:`record_failure`;
    the :class:`~repro.core.health.HealthMonitor` feeds probe verdicts in
    through :meth:`record_probe`.  State transitions are published as
    ``breaker_open`` / ``breaker_close`` events on ``hooks`` (and the
    global bus via the caller's emit path when routed through a GP).
    """

    def __init__(self, clock: TimeSource, failure_threshold: int = 5,
                 cooldown: float = 30.0, hooks=None):
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        if hooks is None:
            from repro.core.instrumentation import GLOBAL_HOOKS
            hooks = GLOBAL_HOOKS
        self.hooks = hooks
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, context_id: str, proto_id: str) -> CircuitBreaker:
        key = (context_id, proto_id)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.clock, failure_threshold=self.failure_threshold,
                    cooldown=self.cooldown)
                self._breakers[key] = breaker
            return breaker

    def allow(self, context_id: str, proto_id: str) -> bool:
        with self._lock:
            breaker = self._breakers.get((context_id, proto_id))
        return True if breaker is None else breaker.allow()

    def record_success(self, context_id: str, proto_id: str) -> None:
        if self.get(context_id, proto_id).record_success():
            self.hooks.emit("breaker_close", context_id=context_id,
                            proto_id=proto_id)

    def record_failure(self, context_id: str, proto_id: str) -> None:
        breaker = self.get(context_id, proto_id)
        if breaker.record_failure():
            self.hooks.emit("breaker_open", context_id=context_id,
                            proto_id=proto_id,
                            failures=breaker.failures,
                            cooldown=breaker.cooldown)

    def record_probe(self, context_id: str, alive: bool) -> None:
        """Feed a health-probe verdict into every breaker of a context.

        Only breakers that already exist are touched — a probe says
        nothing about protocols nobody has tried yet.
        """
        with self._lock:
            keys = [k for k in self._breakers if k[0] == context_id]
        for cid, pid in keys:
            if alive:
                self.record_success(cid, pid)
            else:
                self.record_failure(cid, pid)

    def state(self, context_id: str, proto_id: str) -> BreakerState:
        with self._lock:
            breaker = self._breakers.get((context_id, proto_id))
        return BreakerState.CLOSED if breaker is None else breaker.state

    def open_protos(self, context_id: str) -> list:
        """Proto ids currently shed for a context (diagnostics)."""
        with self._lock:
            return sorted(pid for (cid, pid), b in self._breakers.items()
                          if cid == context_id
                          and b.state is BreakerState.OPEN)

    def open_keys(self) -> list:
        """All currently-open breakers as ``"context:proto"`` strings."""
        with self._lock:
            return sorted(f"{cid}:{pid}"
                          for (cid, pid), b in self._breakers.items()
                          if b.state is BreakerState.OPEN)
