"""Automatic run-time protocol selection (§3.2) and applicability rules.

"When a remote request is made, the protocols in the GP's OR are compared
with those in the proto-pool and the first match is used to satisfy the
request."  Before a match counts, its *applicability* is checked: "a
shared memory based protocol is applicable only for clients and servers
running on the same machine. The applicability of a glue protocol is the
logical AND of all its constituent capabilities." (§4.3)

Applicability is expressed as *named rules* over a :class:`Locality`
value — names, not closures, because applicability must travel inside
ORs.  Applications register custom rules with
:func:`register_applicability_rule` (an Open Implementation hook), and
custom selection behaviour by substituting a :class:`SelectionPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.exceptions import NoApplicableProtocolError, ProtocolError

__all__ = [
    "Locality",
    "APPLICABILITY_RULES",
    "register_applicability_rule",
    "rule_applies",
    "SelectionPolicy",
    "FirstMatchPolicy",
    "PoolOrderPolicy",
]


@dataclass(frozen=True)
class Locality:
    """The relationship between a client and a server placement."""

    same_machine: bool
    same_lan: bool
    same_site: bool

    def __post_init__(self):
        # The relations are nested: same machine implies same LAN implies
        # same site.  Reject impossible combinations early.
        if self.same_machine and not self.same_lan:
            raise ValueError("same machine implies same LAN")
        if self.same_lan and not self.same_site:
            raise ValueError("same LAN implies same site")

    @classmethod
    def from_string(cls, relation: str) -> "Locality":
        """Build from a topology locality string."""
        if relation == "same-machine":
            return cls(True, True, True)
        if relation == "same-lan":
            return cls(False, True, True)
        if relation == "same-site":
            return cls(False, False, True)
        if relation == "remote":
            return cls(False, False, False)
        raise ValueError(f"unknown locality relation {relation!r}")


RulePredicate = Callable[[Locality], bool]

#: Named applicability rules.  Rule names are wire data (they ride in
#: proto-data), so removing or renaming an entry is a compatibility break.
APPLICABILITY_RULES: Dict[str, RulePredicate] = {
    "always": lambda loc: True,
    "never": lambda loc: False,
    "same-machine": lambda loc: loc.same_machine,
    "same-lan": lambda loc: loc.same_lan,
    "same-site": lambda loc: loc.same_site,
    "different-machine": lambda loc: not loc.same_machine,
    "different-lan": lambda loc: not loc.same_lan,
    "different-site": lambda loc: not loc.same_site,
}


def register_applicability_rule(name: str, predicate: RulePredicate,
                                replace: bool = False) -> None:
    """Register a custom named applicability rule."""
    if not name:
        raise ValueError("rule needs a name")
    if name in APPLICABILITY_RULES and not replace:
        raise ValueError(f"applicability rule {name!r} already registered")
    APPLICABILITY_RULES[name] = predicate


def rule_applies(name: str, locality: Locality) -> bool:
    try:
        predicate = APPLICABILITY_RULES[name]
    except KeyError:
        raise ProtocolError(f"unknown applicability rule {name!r}") \
            from None
    return bool(predicate(locality))


class SelectionPolicy:
    """Strategy interface for protocol selection.

    ``select`` receives the OR's table (preference-ordered entries), the
    local pool (ordered proto ids), the current locality, and a predicate
    ``applicable(entry) -> bool`` supplied by the ORB (it knows how to
    evaluate glue entries).  Returns the chosen entry.
    """

    def select(self, entries, pool_ids: List[str], locality: Locality,
               applicable) -> "ProtocolEntry":  # noqa: F821
        raise NotImplementedError


class FirstMatchPolicy(SelectionPolicy):
    """The paper's default: walk the OR table in preference order; the
    first entry that is both in the pool and applicable wins."""

    def select(self, entries, pool_ids, locality, applicable):
        allowed = set(pool_ids)
        rejected: List[Tuple[str, str]] = []
        for entry in entries:
            if entry.proto_id not in allowed:
                rejected.append((entry.proto_id, "not in pool"))
                continue
            if not applicable(entry):
                rejected.append((entry.proto_id, "not applicable"))
                continue
            return entry
        detail = "; ".join(f"{pid}: {why}" for pid, why in rejected) \
            or "empty protocol table"
        raise NoApplicableProtocolError(
            f"no applicable protocol ({detail})")


class PoolOrderPolicy(SelectionPolicy):
    """Alternative policy: the *pool's* order wins (local preference
    over server preference).  Demonstrates the user-control aspect of
    §3.2 — applications swap this in per GP or per context."""

    def select(self, entries, pool_ids, locality, applicable):
        by_id: Dict[str, list] = {}
        for entry in entries:
            by_id.setdefault(entry.proto_id, []).append(entry)
        for pid in pool_ids:
            for entry in by_id.get(pid, ()):
                if applicable(entry):
                    return entry
        raise NoApplicableProtocolError(
            f"no applicable protocol (pool order: {pool_ids}, "
            f"table: {[e.proto_id for e in entries]})")
