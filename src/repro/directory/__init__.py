"""repro.directory — the replicated, self-healing object directory.

The paper's ORB presumes a well-known naming service every client
bootstraps through; :mod:`repro.core.naming` provides the single-node
version.  This package is that service grown to fleet scale: a replica
group with lease-based leader election and quorum-acknowledged writes
(:mod:`~repro.directory.replica`), a deterministic versioned binding
log (:mod:`~repro.directory.state`), client-side versioned caching
(:mod:`~repro.directory.resolver`), and deployment drivers for the
simnet and real-process rails (:mod:`~repro.directory.cluster`).

See docs/DIRECTORY.md for the protocol and its failure modes.
"""

from repro.directory.cluster import (
    DIRECTORY_OBJECT_ID,
    DirectoryCluster,
    join_proc_directory,
)
from repro.directory.replica import (
    CANDIDATE,
    FOLLOWER,
    LEADER,
    DirectoryReplica,
)
from repro.directory.resolver import DirectoryClient, ResolverCache
from repro.directory.state import BindingRecord, DirectoryState, LogEntry

__all__ = [
    "DIRECTORY_OBJECT_ID",
    "DirectoryCluster",
    "DirectoryReplica",
    "DirectoryClient",
    "ResolverCache",
    "DirectoryState",
    "LogEntry",
    "BindingRecord",
    "join_proc_directory",
    "FOLLOWER",
    "CANDIDATE",
    "LEADER",
]
