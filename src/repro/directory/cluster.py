"""Stand up and drive a directory replica group inside one ORB.

:class:`DirectoryCluster` is the deployment helper for both validation
rails that share one process:

* **simnet** — each replica gets a context on a simulated machine; the
  test pumps virtual time with :meth:`pump`, which advances the clock
  and ticks replicas in a fixed order, so a seeded run (elections,
  partitions, migration storms and all) is bit-identical across
  executions;
* **wall-clock, in-process** — replicas live on ordinary contexts and
  :meth:`start` drives each from its own tick thread (the TUTORIAL §14
  shape); the real-process rail lives in :mod:`repro.cluster.procs`,
  which hosts the same :class:`DirectoryReplica` inside worker
  processes (see :func:`join_proc_directory`).

Directory traffic is ordinary invoke traffic, so the constructor can
hang capability stacks (``glue_stacks``) and admission control
(``admission``) in front of every replica — auth/tracing/priority and
resolve-flood pushback apply to the naming tier exactly as they do to
application servants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.objref import ObjectReference
from repro.directory.replica import LEADER, DirectoryReplica
from repro.directory.resolver import DirectoryClient
from repro.exceptions import HpcError

__all__ = ["DirectoryCluster", "join_proc_directory",
           "DIRECTORY_OBJECT_ID"]

#: The well-known object id every replica exports itself under.
DIRECTORY_OBJECT_ID = "directory"


class DirectoryCluster:
    """N directory replicas, their contexts, and a driving loop."""

    def __init__(self, orb, *, replicas: int = 3,
                 machines: Optional[List] = None, seed: int = 0,
                 lease_seconds: float = 1.2,
                 heartbeat_seconds: float = 0.3,
                 election_timeout: Tuple[float, float] = (0.6, 1.2),
                 object_id: str = DIRECTORY_OBJECT_ID,
                 glue_stacks: Optional[List[List[dict]]] = None,
                 admission=None, hooks=None):
        if machines is not None and len(machines) != replicas:
            raise ValueError("need exactly one machine per replica")
        self.orb = orb
        self.object_id = object_id
        self.contexts = []
        self.replicas: Dict[str, DirectoryReplica] = {}
        self.orefs: Dict[str, ObjectReference] = {}
        self._clients: List[DirectoryClient] = []
        for i in range(replicas):
            node_id = f"dir-{i}"
            ctx = orb.context(
                node_id,
                machine=machines[i] if machines is not None else None)
            if admission is not None:
                ctx.set_admission_policy(admission)
            replica = DirectoryReplica(
                ctx, node_id, seed=seed, stream=i,
                lease_seconds=lease_seconds,
                heartbeat_seconds=heartbeat_seconds,
                election_timeout=election_timeout, hooks=hooks)
            oref = ctx.export(replica, object_id=object_id,
                              glue_stacks=glue_stacks,
                              migratable=False)
            self.contexts.append(ctx)
            self.replicas[node_id] = replica
            self.orefs[node_id] = oref
        for replica in self.replicas.values():
            replica.set_peers(self.orefs)

    # -- driving -------------------------------------------------------

    def tick_all(self) -> None:
        """One tick of every live replica, in fixed node order."""
        for node_id in sorted(self.replicas):
            replica = self.replicas[node_id]
            if not replica.stopped:
                replica.tick()

    def pump(self, seconds: float, *, step: float = 0.05,
             plan=None) -> None:
        """Advance time by ``seconds``, ticking replicas every ``step``.

        Under simulation the clock is the simulator's virtual clock and
        ``plan`` (a :class:`~repro.faults.plan.FaultPlan`) gets its
        scheduled phases applied as time passes; on the wall clock this
        sleeps.  Replica RPCs themselves charge additional virtual
        time — ``seconds`` is a floor, not an exact span.
        """
        clock = self.contexts[0].clock
        sim = self.orb.sim
        end = clock.now() + seconds
        while clock.now() < end:
            if sim is not None:
                sim.clock.advance(step)
                if plan is not None:
                    plan.apply_until(sim.clock.now())
            else:
                import time
                time.sleep(step)
            self.tick_all()

    def start(self, interval: Optional[float] = None) -> None:
        """Wall-clock mode: one tick thread per replica."""
        for replica in self.replicas.values():
            replica.start_ticking(interval)

    def stop(self) -> None:
        for replica in self.replicas.values():
            replica.stop()
        for client in self._clients:
            client.close()
        self._clients.clear()

    # -- convenience ---------------------------------------------------

    def leader_id(self) -> str:
        """The current leaseholder's node id ("" when none)."""
        for node_id in sorted(self.replicas):
            replica = self.replicas[node_id]
            if not replica.stopped and replica.role == LEADER and \
                    replica.clock.now() < replica._lease_until:
                return node_id
        return ""

    def elect(self, *, budget: float = 30.0, step: float = 0.05) -> str:
        """Pump until a leader holds a lease; returns its node id."""
        clock = self.contexts[0].clock
        deadline = clock.now() + budget
        while clock.now() < deadline:
            leader = self.leader_id()
            if leader:
                return leader
            self.pump(step, step=step)
        raise HpcError(f"no directory leader within {budget}s")

    def client(self, ctx, **kwargs) -> DirectoryClient:
        """A :class:`DirectoryClient` for this group bound in ``ctx``."""
        client = DirectoryClient(ctx, self.orefs, **kwargs)
        self._clients.append(client)
        return client

    def stop_replica(self, node_id: str) -> DirectoryReplica:
        """Simulate a replica crash in-process: it stops ticking and its
        context stops serving (connections refused, like a dead node)."""
        replica = self.replicas[node_id]
        replica.stop()
        replica.ctx.stop()
        return replica


def join_proc_directory(cluster, *, object_id: str = DIRECTORY_OBJECT_ID,
                        **client_kwargs) -> DirectoryClient:
    """Wire up the directory replicas hosted by a
    :class:`~repro.cluster.procs.ProcCluster`'s worker processes.

    Each node spawned with ``options={"directory": "1"}`` exports a
    :class:`DirectoryReplica` under ``object_id``; this sends every
    replica the full peer table (a ``join`` call over the ordinary
    invoke path — there is deliberately no side channel), then returns
    a :class:`DirectoryClient` over the per-node ORs bound in the
    cluster's client context.
    """
    peers = {}
    for name, node in cluster.nodes.items():
        oref = node.orefs.get(object_id)
        if oref is None:
            raise HpcError(
                f"node {name!r} exports no directory object "
                f"{object_id!r} (spawn it with options['directory'])")
        peers[name] = oref
    peer_uris = {name: oref.to_uri() for name, oref in peers.items()}
    for name, oref in peers.items():
        gp = cluster.client_ctx.bind(oref)
        try:
            gp.invoke("join", peer_uris)
        finally:
            gp.close(wait=False)
    return DirectoryClient(cluster.client_ctx, peers, **client_kwargs)
