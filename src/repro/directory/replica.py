"""One replica of the replicated object directory.

:class:`DirectoryReplica` is an ordinary exported servant: its election
heartbeats and log replication are ``@remote_method`` calls carried by
GlobalPointers over the existing invoke path, so everything the ORB
already gives that path — capability glue, admission control, breakers,
the simulator's virtual time — applies to directory traffic unchanged.

The consensus protocol is a lease-based simplification of Raft:

* **terms** — monotonically increasing epochs; every message carries
  one, and a higher term always wins;
* **randomized election timeouts** — drawn from a per-replica seeded
  :class:`~repro.security.prng.Pcg32` stream, so simnet runs are
  bit-identical while real clusters still avoid split votes;
* **votes** — granted once per term, only to candidates whose log is at
  least as up to date (``(last_term, last_seq)`` order);
* **leader lease** — a leader serves writes only while a quorum of
  followers acknowledged a heartbeat within ``lease_seconds``; when the
  lease lapses it steps down (``lease_expired``) instead of serving
  writes it can no longer commit;
* **quorum writes** — a bind/rebind/unbind appends to the leader's
  binding log and is acknowledged to the client only after a majority
  of replicas hold *that entry* (a lagging follower acking a partial
  catch-up batch does not count, ``quorum_write``); followers replay
  the log tail carried by heartbeats, truncating any divergent suffix;
* **committed reads** — entries reach the binding table only as the
  commit index passes them, so ``resolve`` never serves a write the
  client was told failed, nor a follower's divergent uncommitted
  suffix.

Time is *passive*: nothing here sleeps or schedules.  A driver calls
:meth:`tick` — the simnet harness as it advances virtual time, a
background thread (:meth:`start_ticking`) on real processes — which
keeps a replica deterministic under simulation and live on the wall
clock with the same code.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.core.objref import ObjectReference
from repro.core.resilience import RetryPolicy
from repro.directory.state import (
    OP_BIND,
    OP_REBIND,
    OP_UNBIND,
    DirectoryState,
    LogEntry,
    check_name,
)
from repro.exceptions import HpcError
from repro.idl.interface import remote_interface, remote_method

__all__ = ["DirectoryReplica", "FOLLOWER", "CANDIDATE", "LEADER"]

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: Entries shipped per heartbeat when a follower is catching up.
CATCHUP_BATCH = 256


@remote_interface("DirectoryReplica")
class DirectoryReplica:
    """One member of a directory replica group.

    Parameters
    ----------
    ctx:
        The serving context; supplies the clock and binds peer GPs (so
        peer traffic goes through this context's breakers/budgets).
    node_id:
        Stable name within the group (votes and redirects carry it).
    seed / stream:
        Seed material for the election-timeout RNG.  Same seed + same
        stream => same timeout sequence, the determinism contract.
    lease_seconds:
        How long a quorum heartbeat keeps the leader's write lease.
    heartbeat_seconds:
        Leader heartbeat period; must be well under ``lease_seconds``.
    election_timeout:
        ``(lo, hi)`` bounds for the randomized follower timeout; ``lo``
        must exceed ``heartbeat_seconds`` or healthy followers will
        campaign against a live leader.
    """

    def __init__(self, ctx, node_id: str, *, seed: int = 0,
                 stream: int = 0, lease_seconds: float = 1.2,
                 heartbeat_seconds: float = 0.3,
                 election_timeout: Tuple[float, float] = (0.6, 1.2),
                 hooks=None):
        from repro.core.instrumentation import GLOBAL_HOOKS
        from repro.security.prng import Pcg32

        lo, hi = election_timeout
        if not 0 < heartbeat_seconds < lease_seconds:
            raise ValueError("need 0 < heartbeat < lease")
        if not heartbeat_seconds < lo <= hi:
            raise ValueError("election timeout must exceed heartbeat")
        self.ctx = ctx
        self.node_id = node_id
        self.clock = ctx.clock
        self.hooks = hooks if hooks is not None else GLOBAL_HOOKS
        self.lease_seconds = lease_seconds
        self.heartbeat_seconds = heartbeat_seconds
        self.election_timeout = (lo, hi)
        self._rng = Pcg32(seed, stream=stream)

        self.state = DirectoryState()
        self.term = 0
        self.role = FOLLOWER
        self.voted_for: Optional[str] = None
        self.leader_id: str = ""
        self._lease_until = -1.0
        self._next_heartbeat = -1.0
        self._election_deadline = self.clock.now() + self._draw_timeout()
        self._peers: Dict[str, object] = {}       # node_id -> GP
        self._match: Dict[str, int] = {}          # node_id -> acked seq
        self._commit_seq = 0
        self._lock = threading.RLock()
        self._ticker: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Set by :meth:`stop`; drivers skip stopped replicas (a crashed
        #: replica's frozen fields must not read as a live leader).
        self.stopped = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def set_peers(self, peer_orefs: Dict[str, ObjectReference],
                  *, call_deadline: Optional[float] = None) -> None:
        """Bind a GP to every *other* replica in the group.

        Peer calls use single-attempt retry policies: the election and
        lease machinery *is* the retry layer here — a missed heartbeat
        must surface as a missed heartbeat, not dissolve into backoff.
        """
        from repro.core.resilience import BreakerRegistry

        deadline = call_deadline if call_deadline is not None \
            else self.lease_seconds
        # Peer breakers cool down at heartbeat cadence, not the
        # context-wide default: after a partition heals, the next
        # heartbeat must be able to probe the peer immediately — a
        # 30-second breaker hold would keep a healed group split long
        # after the network recovered.
        breakers = BreakerRegistry(self.clock,
                                   cooldown=self.heartbeat_seconds)
        with self._lock:
            self._close_peers()
            for node_id, oref in peer_orefs.items():
                if node_id == self.node_id:
                    continue
                gp = self.ctx.bind(
                    oref.clone(),
                    breakers=breakers,
                    retry_policy=RetryPolicy(max_attempts=1,
                                             deadline=deadline))
                self._peers[node_id] = gp
                self._match[node_id] = 0

    def _close_peers(self) -> None:
        for gp in self._peers.values():
            try:
                gp.close(wait=False)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        self._peers.clear()
        self._match.clear()

    @property
    def quorum(self) -> int:
        """Majority of the full group (peers + self)."""
        return (len(self._peers) + 1) // 2 + 1

    def _draw_timeout(self) -> float:
        lo, hi = self.election_timeout
        return lo + self._rng.uniform() * (hi - lo)

    def _emit(self, kind: str, **data) -> None:
        self.hooks.emit(kind, **data)

    # ------------------------------------------------------------------
    # the tick: all time-driven behaviour
    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Advance the replica's timers; never blocks on time itself.

        Outbound RPCs happen *outside* the lock: replicas call each
        other synchronously, and two replicas ticking concurrently while
        holding their own locks would deadlock on each other's handlers.
        """
        with self._lock:
            role = self.role
            now = self.clock.now()
            if role == LEADER:
                if now >= self._lease_until:
                    self._step_down(self.term, reason="lease")
                    return
                if now < self._next_heartbeat:
                    return
                plan = self._replication_plan()
            else:
                if now < self._election_deadline:
                    return
                plan = None
        if plan is not None:
            self._run_heartbeat(plan)
        else:
            self._run_election()

    # -- election ------------------------------------------------------

    def _run_election(self) -> None:
        with self._lock:
            self.term += 1
            self.role = CANDIDATE
            self.voted_for = self.node_id
            self.leader_id = ""
            self._election_deadline = self.clock.now() + self._draw_timeout()
            term = self.term
            last_seq = self.state.last_seq
            last_term = self.state.last_term
            peers = list(self._peers.items())
            needed = self.quorum
        votes = 1  # self
        for node_id, gp in peers:
            try:
                reply = gp.invoke("request_vote", term, self.node_id,
                                  last_seq, last_term)
            except HpcError:
                continue
            if reply.get("term", 0) > term:
                with self._lock:
                    self._step_down(reply["term"], reason="stale_term")
                return
            if reply.get("granted"):
                votes += 1
        with self._lock:
            if self.term != term or self.role != CANDIDATE:
                return  # a newer leader/term appeared mid-election
            if votes < needed:
                return  # stay candidate; timeout fires the next round
            self.role = LEADER
            self.leader_id = self.node_id
            now = self.clock.now()
            # The vote quorum itself establishes the first lease window:
            # a majority just promised not to elect anyone else for at
            # least their own election timeout (> lease_seconds is not
            # guaranteed, but heartbeats start immediately below).
            self._lease_until = now + self.lease_seconds
            self._next_heartbeat = now
            # Match indices restart at zero: a peer only counts as
            # holding an entry once it *acks* it this term.  (The first
            # heartbeat re-ships a batch peers likely already hold —
            # their acks snap _match to their true last_seq — which is
            # the price of never computing a commit index, or a write
            # quorum, from unverified optimism.)
            for node_id in self._match:
                self._match[node_id] = 0
            plan = self._replication_plan()
        self._emit("leader_elected", node=self.node_id, term=term,
                   votes=votes, peers=len(peers) + 1)
        self._run_heartbeat(plan)

    def _step_down(self, term: int, *, reason: str) -> None:
        """Fall back to follower at ``term`` (lock held by caller)."""
        was_leader = self.role == LEADER
        if term > self.term:
            self.term = term
            self.voted_for = None
        self.role = FOLLOWER
        if was_leader:
            self.leader_id = ""
        self._election_deadline = self.clock.now() + self._draw_timeout()
        if was_leader and reason == "lease":
            self._emit("lease_expired", node=self.node_id,
                       term=self.term)

    # -- replication ---------------------------------------------------

    def _replication_plan(self) -> List[tuple]:
        """Per-peer (node_id, gp, prev_seq, prev_term, entries) under
        the lock; the RPCs themselves run outside it."""
        plan = []
        for node_id, gp in self._peers.items():
            prev_seq = self._match.get(node_id, 0)
            entries = self.state.entries_from(prev_seq + 1, CATCHUP_BATCH)
            plan.append((node_id, gp, prev_seq,
                         self.state.term_at(prev_seq),
                         [e.to_wire() for e in entries]))
        return plan

    def _run_heartbeat(self, plan: List[tuple]) -> int:
        """Send one append_entries round; returns the ack count.

        A quorum of acks extends the lease and advances the commit
        index; a stale-term reply steps down immediately.
        """
        with self._lock:
            term = self.term
            if self.role != LEADER:
                return 0
            commit = self._commit_seq
            self._next_heartbeat = self.clock.now() + \
                self.heartbeat_seconds
        acks = 1  # self
        results = []
        for node_id, gp, prev_seq, prev_term, entries in plan:
            try:
                reply = gp.invoke("append_entries", term, self.node_id,
                                  prev_seq, prev_term, entries, commit)
            except HpcError:
                continue
            results.append((node_id, reply))
        with self._lock:
            if self.term != term or self.role != LEADER:
                return 0
            for node_id, reply in results:
                if reply.get("term", 0) > self.term:
                    self._step_down(reply["term"], reason="stale_term")
                    return 0
                peer_last = int(reply.get("last_seq", 0))
                if reply.get("ok"):
                    acks += 1
                    self._match[node_id] = peer_last
                else:
                    # Nack: rewind to where the follower actually is so
                    # the next round ships the right tail.
                    self._match[node_id] = min(
                        self._match.get(node_id, 0), peer_last)
            if acks >= self.quorum:
                self._lease_until = self.clock.now() + self.lease_seconds
                matched = sorted([self.state.last_seq] +
                                 list(self._match.values()),
                                 reverse=True)
                self._commit_seq = max(self._commit_seq,
                                       matched[self.quorum - 1])
                self.state.apply_to(self._commit_seq)
            return acks

    # ------------------------------------------------------------------
    # remote interface: consensus
    # ------------------------------------------------------------------

    @remote_method(retry_safe=True)
    def request_vote(self, term: int, candidate: str, last_seq: int,
                     last_term: int) -> dict:
        with self._lock:
            if term < self.term:
                return {"term": self.term, "granted": False}
            if term > self.term:
                self._step_down(term, reason="vote_request")
            up_to_date = (last_term, last_seq) >= \
                (self.state.last_term, self.state.last_seq)
            if self.voted_for in (None, candidate) and up_to_date:
                self.voted_for = candidate
                self._election_deadline = self.clock.now() + \
                    self._draw_timeout()
                return {"term": self.term, "granted": True}
            return {"term": self.term, "granted": False}

    @remote_method(retry_safe=True)
    def append_entries(self, term: int, leader: str, prev_seq: int,
                       prev_term: int, entries: list,
                       commit_seq: int) -> dict:
        with self._lock:
            if term < self.term:
                return {"term": self.term, "ok": False,
                        "last_seq": self.state.last_seq}
            if term > self.term or self.role != FOLLOWER:
                self._step_down(term, reason="append")
            self.leader_id = leader
            self._election_deadline = self.clock.now() + \
                self._draw_timeout()
            if prev_seq > self.state.last_seq:
                return {"term": self.term, "ok": False,
                        "last_seq": self.state.last_seq}
            if prev_seq > 0 and self.state.term_at(prev_seq) != prev_term:
                # Divergent suffix from a dead leader: drop it and let
                # the next round ship the authoritative tail.
                self.state.truncate(prev_seq - 1)
                return {"term": self.term, "ok": False,
                        "last_seq": self.state.last_seq}
            stored_all = True
            for wire in entries:
                entry = LogEntry.from_wire(wire)
                if entry.seq <= self.state.last_seq:
                    if self.state.term_at(entry.seq) != entry.term:
                        self.state.truncate(entry.seq - 1)
                        self.state.append(entry)
                    continue  # duplicate of what we already hold
                if entry.seq != self.state.last_seq + 1:
                    stored_all = False  # gap: nack, leader rewinds
                    break
                self.state.append(entry)
            # The prefix up to last_seq matches the leader's log (the
            # prev checks above passed), so the leader's commit index
            # applies to it even when the batch had a gap.
            self._commit_seq = max(self._commit_seq,
                                   min(commit_seq, self.state.last_seq))
            self.state.apply_to(self._commit_seq)
            return {"term": self.term, "ok": stored_all,
                    "last_seq": self.state.last_seq}

    # ------------------------------------------------------------------
    # remote interface: the directory itself
    # ------------------------------------------------------------------

    def _reply_base(self) -> dict:
        return {"node": self.node_id, "leader": self.leader_id,
                "term": self.term}

    @remote_method(retry_safe=True)
    def resolve(self, name: str) -> dict:
        """Typed lookup served by *any* replica, from **committed**
        state only (reads prefer availability; the per-name version
        lets caches order what different replicas said).

        ``lease_valid`` tells the client whether this answer came from
        a leader that currently holds its write lease — only such a
        miss is authoritative; a deposed leader that has not noticed
        its lease lapse yet still self-reports ``leader`` but must not
        turn a lagging view into a hard NameNotFoundError."""
        check_name(name)
        with self._lock:
            record = self.state.lookup(name)
            reply = self._reply_base()
            reply["name"] = name
            reply["lease_valid"] = (self.role == LEADER and
                                    self.clock.now() < self._lease_until)
            if record is None or record.oref is None:
                reply["found"] = False
                miss_node = self.node_id
            else:
                reply.update(found=True, oref=record.oref,
                             version=record.version)
                miss_node = None
        if miss_node is not None:
            self._emit("directory_miss", name=name, node=miss_node)
        return reply

    def _write(self, op: str, name: str,
               oref: Optional[ObjectReference]) -> dict:
        """Leader-only write path: append, replicate, ack on quorum.

        A peer counts toward the write quorum only once its acked
        ``last_seq`` covers the new entry — a lagging follower acking a
        256-entry catch-up batch that stops *short* of the entry must
        not let the client believe the write is majority-held.
        Heartbeat rounds repeat while followers are still making
        catch-up progress; the loop ends at quorum, at leadership/lease
        loss, or when a full round moves no follower (``no_quorum``).

        Non-leader and quorum-loss outcomes are *typed replies* (they
        are routine redirect/retry traffic, not exceptional), while
        validation failures (bad name, bind of a bound name) raise and
        marshal as remote exceptions."""
        with self._lock:
            now = self.clock.now()
            if self.role != LEADER or now >= self._lease_until:
                reply = self._reply_base()
                reply.update(ok=False, error="not_leader")
                return reply
            term = self.term
            entry = self.state.make_entry(term, op, name, oref)
            self.state.append(entry)
        acks = 1  # self
        while True:
            with self._lock:
                if self.term != term or self.role != LEADER or \
                        self.clock.now() >= self._lease_until:
                    reply = self._reply_base()
                    reply.update(ok=False, error="not_leader")
                    return reply
                before = dict(self._match)
                plan = self._replication_plan()
            self._run_heartbeat(plan)
            with self._lock:
                if self.term != term or self.role != LEADER:
                    reply = self._reply_base()
                    reply.update(ok=False, error="not_leader")
                    return reply
                acks = 1 + sum(1 for v in self._match.values()
                               if v >= entry.seq)
                if acks >= self.quorum:
                    # A majority stores the entry and it is from the
                    # current term: committed.  Apply before acking so
                    # the leader's own resolve path serves the write
                    # the moment the client hears ok (read-your-writes
                    # even when this round's raw ack count fell short
                    # of advancing the commit index itself).
                    self._commit_seq = max(self._commit_seq, entry.seq)
                    self.state.apply_to(self._commit_seq)
                    reply = self._reply_base()
                    break
                progressed = any(self._match.get(n, 0) != before.get(n, 0)
                                 for n in self._match)
            if not progressed:
                reply = self._reply_base()
                reply.update(ok=False, error="no_quorum", acks=acks)
                return reply
        self._emit("quorum_write", node=self.node_id, op=op,
                   name=name, version=entry.version,
                   seq=entry.seq, acks=acks)
        reply.update(ok=True, version=entry.version, seq=entry.seq)
        return reply

    @remote_method
    def bind(self, name: str, oref) -> dict:
        return self._write(OP_BIND, name, oref)

    @remote_method
    def rebind(self, name: str, oref) -> dict:
        return self._write(OP_REBIND, name, oref)

    @remote_method
    def unbind(self, name: str) -> dict:
        return self._write(OP_UNBIND, name, None)

    @remote_method
    def rebind_object(self, object_id: str, oref) -> dict:
        """Rebind every name pointing at ``object_id`` to ``oref`` —
        the migration-sweep publication: one call per moved object, and
        every alias follows."""
        with self._lock:
            if self.role != LEADER or \
                    self.clock.now() >= self._lease_until:
                reply = self._reply_base()
                reply.update(ok=False, error="not_leader")
                return reply
            names = self.state.names_for_object(object_id)
        rebound = []
        for name in names:
            reply = self._write(OP_REBIND, name, oref)
            if not reply.get("ok"):
                reply["rebound"] = rebound
                return reply
            rebound.append(name)
        reply = self._reply_base()
        reply.update(ok=True, rebound=rebound)
        return reply

    @remote_method
    def join(self, peers: dict) -> dict:
        """Install the peer table (node id → OR URI) and, on wall-clock
        contexts, start the tick thread.

        This is the real-process bootstrap: the parent spawns every
        node, collects their directory ORs, then ``join``\\ s each over
        the ordinary invoke path — no control-plane side channel.
        """
        orefs = {node: ObjectReference.from_uri(uri)
                 for node, uri in peers.items()}
        self.set_peers(orefs)
        if self.ctx.sim is None:
            self.start_ticking()
        return {"ok": True, "node": self.node_id,
                "peers": sorted(n for n in orefs if n != self.node_id)}

    @remote_method(retry_safe=True)
    def status(self) -> dict:
        with self._lock:
            reply = self._reply_base()
            reply.update(role=self.role,
                         last_seq=self.state.last_seq,
                         commit_seq=self._commit_seq,
                         lease_valid=self.role == LEADER and
                         self.clock.now() < self._lease_until,
                         names=self.state.names())
            return reply

    # ------------------------------------------------------------------
    # wall-clock driving
    # ------------------------------------------------------------------

    def start_ticking(self, interval: Optional[float] = None) -> None:
        """Drive :meth:`tick` from a daemon thread (real processes).

        Simulated replicas must *not* call this — the simnet driver
        ticks them as it advances virtual time.
        """
        import time

        if self.ctx.sim is not None:
            raise RuntimeError("simulated replicas are ticked by the "
                               "simnet driver, not a thread")
        if self._ticker is not None:
            return
        period = interval if interval is not None \
            else self.heartbeat_seconds / 3.0
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(period):
                try:
                    self.tick()
                except Exception:  # noqa: BLE001 - keep the clock alive
                    pass

        self._ticker = threading.Thread(
            target=loop, name=f"dir-tick-{self.node_id}", daemon=True)
        self._ticker.start()

    def stop(self) -> None:
        """Stop the tick thread (if any) and drop peer bindings."""
        self.stopped = True
        self._stop.set()
        ticker, self._ticker = self._ticker, None
        if ticker is not None:
            ticker.join(timeout=5.0)
        with self._lock:
            self._close_peers()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<DirectoryReplica {self.node_id} role={self.role} "
                f"term={self.term} seq={self.state.last_seq}>")
