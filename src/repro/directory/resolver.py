"""Client-side resolution: the versioned resolver cache and the
directory client that fills it.

Millions of clients re-resolving through the directory on every call
would turn the naming tier into the hot path; the
:class:`ResolverCache` (one per context, at ``ctx.resolver``) makes the
common case local.  Two mechanisms keep cached ORs correct through
migration storms:

* **TTL** — entries expire on the context's clock (virtual under
  simulation), bounding how stale an unnoticed binding can get;
* **version checks** — every cached entry carries the directory's
  per-name version; a ``put`` from a lagging follower can never clobber
  a newer binding, and a MOVED reply observed by *any* GP in the
  context (see :meth:`note_moved`) patches every cached alias of the
  moved object in place, because the forwarding OR the server handed
  back is strictly newer than what the cache holds.

:class:`DirectoryClient` is the resolving face of a replica group: it
reads from any live replica (availability first — versions order the
answers), writes through the leader following ``not_leader`` redirects,
and funnels everything through the cache.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.objref import ObjectReference
from repro.core.resilience import RetryPolicy
from repro.directory.state import check_name
from repro.exceptions import (
    DirectoryUnavailableError,
    HpcError,
    NameNotFoundError,
    QuorumWriteError,
    RemoteException,
)

__all__ = ["ResolverCache", "DirectoryClient"]


@dataclass
class _CacheEntry:
    oref: ObjectReference
    version: int
    expires_at: float


class ResolverCache:
    """TTL + version-checked name → OR cache (one per context)."""

    def __init__(self, clock, *, ttl: float = 5.0, hooks=None):
        from repro.core.instrumentation import GLOBAL_HOOKS

        self.clock = clock
        self.ttl = ttl
        self.hooks = hooks if hooks is not None else GLOBAL_HOOKS
        self._entries: Dict[str, _CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, name: str) -> Optional[ObjectReference]:
        """Fresh cached OR for ``name``, or None (expired entries are
        dropped silently — expiry is routine, not an invalidation)."""
        check_name(name)
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                self.misses += 1
                return None
            if self.clock.now() >= entry.expires_at:
                del self._entries[name]
                self.misses += 1
                return None
            self.hits += 1
            return entry.oref.clone()

    def version_of(self, name: str) -> Optional[int]:
        with self._lock:
            entry = self._entries.get(name)
            return entry.version if entry is not None else None

    def put(self, name: str, oref: ObjectReference, version: int) -> bool:
        """Cache a resolution; refuses to replace a newer version (a
        lagging follower's answer must not roll the cache back).
        Returns whether the entry was stored."""
        check_name(name)
        with self._lock:
            current = self._entries.get(name)
            if current is not None and current.version > version:
                return False
            self._entries[name] = _CacheEntry(
                oref=oref.clone(), version=version,
                expires_at=self.clock.now() + self.ttl)
            return True

    def invalidate(self, name: str, *, reason: str = "explicit") -> bool:
        """Drop one name; emits ``cache_invalidate`` when it was held."""
        check_name(name)
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            return False
        self.hooks.emit("cache_invalidate", name=name,
                        object_id=entry.oref.object_id, reason=reason)
        return True

    def note_moved(self, object_id: str,
                   forward: Optional[ObjectReference]) -> int:
        """A MOVED reply reached some GP in this context.

        Every cached alias of ``object_id`` is patched to the forwarding
        OR when it is a newer incarnation (``ObjectReference.version``),
        or dropped when no usable forward came along.  Returns the
        number of entries touched.
        """
        touched = 0
        events = []
        with self._lock:
            for name, entry in list(self._entries.items()):
                if entry.oref.object_id != object_id:
                    continue
                if forward is not None and \
                        forward.version >= entry.oref.version:
                    entry.oref = forward.clone()
                    events.append((name, "moved"))
                else:
                    del self._entries[name]
                    events.append((name, "moved_dropped"))
                touched += 1
        for name, reason in events:
            self.hooks.emit("cache_invalidate", name=name,
                            object_id=object_id, reason=reason)
        return touched

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DirectoryClient:
    """Resolve/bind against a directory replica group.

    ``replicas`` maps node id → OR of that node's
    :class:`~repro.directory.replica.DirectoryReplica` export.  Reads
    walk replicas starting from the last known leader; writes chase
    ``not_leader`` redirects.  All traffic rides ordinary GPs bound in
    ``ctx`` — capabilities, admission pushback, and breakers included.
    """

    def __init__(self, ctx, replicas: Dict[str, ObjectReference], *,
                 cache: Optional[ResolverCache] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 **bind_kwargs):
        if not replicas:
            raise ValueError("DirectoryClient needs at least one replica")
        self.ctx = ctx
        policy = retry_policy or RetryPolicy(max_attempts=2)
        self._gps = {
            node_id: ctx.bind(oref.clone(), retry_policy=policy,
                              **bind_kwargs)
            for node_id, oref in replicas.items()
        }
        self._order = sorted(self._gps)
        self.cache = cache if cache is not None \
            else getattr(ctx, "resolver", None) or ResolverCache(ctx.clock)
        self._leader_hint = ""
        self._lock = threading.Lock()

    # -- plumbing ------------------------------------------------------

    @property
    def hook_buses(self) -> List:
        """Every underlying GP bus (attach recorders here, never to
        both these and ``GLOBAL_HOOKS``)."""
        return [gp.hooks for gp in self._gps.values()]

    def _probe_order(self) -> List[str]:
        with self._lock:
            hint = self._leader_hint
        order = [n for n in self._order if n != hint]
        return ([hint] if hint in self._gps else []) + order

    def _note_leader(self, leader: Optional[str]) -> None:
        with self._lock:
            self._leader_hint = leader or ""

    # -- reads ---------------------------------------------------------

    def resolve(self, name: str, *,
                fresh: bool = False) -> ObjectReference:
        """Resolve ``name`` to an OR, via the cache unless ``fresh``.

        Raises :class:`NameNotFoundError` on an authoritative miss and
        :class:`DirectoryUnavailableError` when no replica answered.
        """
        check_name(name)
        if not fresh:
            cached = self.cache.get(name)
            if cached is not None:
                return cached
        missed = False
        last_error: Optional[HpcError] = None
        for node_id in self._probe_order():
            gp = self._gps[node_id]
            try:
                reply = gp.invoke("resolve", name)
            except HpcError as exc:
                last_error = exc
                continue
            self._note_leader(reply.get("leader"))
            if reply.get("found"):
                oref = reply["oref"]
                self.cache.put(name, oref, int(reply["version"]))
                return oref.clone()
            missed = True
            # A follower can lag the commit by one heartbeat, and a
            # partitioned/deposed leader that has not noticed its lease
            # lapse still self-reports as leader while its view falls
            # behind the real one.  Only a miss from a *lease-valid*
            # leader (or from every reachable replica) is
            # authoritative; anything else keeps probing.
            if node_id == reply.get("leader") and \
                    reply.get("lease_valid"):
                break
        if missed:
            raise NameNotFoundError(f"name {name!r} is not bound")
        raise DirectoryUnavailableError(
            f"no directory replica answered resolve({name!r})"
        ) from last_error

    def leader(self) -> str:
        """Current leader's node id ("" when none is known)."""
        for node_id in self._probe_order():
            try:
                reply = self._gps[node_id].invoke("status")
            except HpcError:
                continue
            if reply.get("role") == "leader" and reply.get("lease_valid"):
                self._note_leader(reply["node"])
                return reply["node"]
            if reply.get("leader"):
                self._note_leader(reply["leader"])
                return reply["leader"]
        return ""

    # -- writes --------------------------------------------------------

    def _write(self, method: str, *args) -> dict:
        last_error: Optional[HpcError] = None
        tried_no_quorum = None
        attempts = len(self._gps) + 1  # one extra hop for a redirect
        order = self._probe_order()
        idx = 0
        for _ in range(attempts):
            if idx >= len(order):
                break
            node_id = order[idx]
            gp = self._gps[node_id]
            try:
                reply = gp.invoke(method, *args)
            except RemoteException:
                # The servant itself rejected the operation (invalid
                # name, bind of a bound name, ...): a caller error, not
                # a replica failure — never mask it by failing over.
                raise
            except HpcError as exc:
                last_error = exc
                idx += 1
                continue
            if reply.get("ok"):
                self._note_leader(reply.get("leader") or
                                  reply.get("node"))
                return reply
            error = reply.get("error")
            if error == "not_leader":
                hint = reply.get("leader")
                if hint and hint in self._gps and hint not in order[:idx]:
                    # Jump straight to the advertised leader.
                    order = [hint] + [n for n in order if n != hint]
                    self._note_leader(hint)
                    idx = 0
                    continue
                idx += 1
                continue
            if error == "no_quorum":
                tried_no_quorum = reply
                break
            raise DirectoryUnavailableError(
                f"directory write {method} failed: {error!r}")
        if tried_no_quorum is not None:
            raise QuorumWriteError(
                f"directory write {method}{args[:1]} got "
                f"{tried_no_quorum.get('acks')} ack(s), quorum lost")
        raise DirectoryUnavailableError(
            f"no directory leader reachable for {method}"
        ) from last_error

    def bind(self, name: str, oref: ObjectReference) -> int:
        reply = self._write("bind", name, oref)
        self.cache.put(name, oref, int(reply["version"]))
        return int(reply["version"])

    def rebind(self, name: str, oref: ObjectReference) -> int:
        reply = self._write("rebind", name, oref)
        self.cache.put(name, oref, int(reply["version"]))
        return int(reply["version"])

    def unbind(self, name: str) -> None:
        self._write("unbind", name)
        self.cache.invalidate(name, reason="unbound")

    def rebind_object(self, object_id: str,
                      oref: ObjectReference) -> List[str]:
        """Publish a migration: every alias of ``object_id`` rebinds to
        ``oref`` (the :class:`~repro.core.loadbalance.LoadBalancer`
        directory hook calls this after each migration)."""
        reply = self._write("rebind_object", object_id, oref)
        for name in reply.get("rebound", []):
            self.cache.invalidate(name, reason="migrated")
        return list(reply.get("rebound", []))

    def close(self) -> None:
        for gp in self._gps.values():
            try:
                gp.close(wait=False)
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
