"""Replicated directory state: a versioned binding log and its table.

The directory's replication unit is the :class:`LogEntry` — one
bind/rebind/unbind operation, stamped with a monotonically increasing
log sequence number (``seq``), the leader term that appended it, and the
per-name ``version`` it establishes.  :class:`DirectoryState` is the
deterministic state machine both leaders and followers run: appending
the same entries in the same order always produces the same binding
table, so followers catch up simply by replaying the leader's log tail.

Append and apply are two distinct steps, on purpose.  :meth:`append`
only stores an entry in the log; it reaches the binding table when
:meth:`apply_to` advances past it — which the consensus layer calls as
the commit index moves.  Reads (:meth:`lookup`, :meth:`names`, ...)
therefore only ever see **committed** bindings: an entry a leader could
not get quorum for, or a divergent uncommitted suffix on a follower, is
never served and can never poison a client cache with a version that
loses the quorum it was acked under.  Leader-side validation and
version numbering (:meth:`make_entry`) still run against the *latest*
view — committed table plus the uncommitted log suffix — because the
leader's own in-flight entries must chain correctly.

Versioning has two layers, on purpose:

* **per-name version** — bumped by every bind/rebind/unbind of that
  name; what :class:`~repro.directory.resolver.ResolverCache` compares
  so a stale follower read can never overwrite a newer cached binding;
* **OR version** — ``ObjectReference.version``, bumped by migration;
  carried through opaquely so clients can order *incarnations* of the
  same object independently of directory churn.

Everything here is process-local and lock-protected; the consensus
machinery that decides *which* entries get appended lives in
:mod:`repro.directory.replica`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.objref import ObjectReference
from repro.exceptions import (
    DirectoryError,
    InvalidNameError,
    NameAlreadyBoundError,
    NameNotFoundError,
)

__all__ = ["LogEntry", "BindingRecord", "DirectoryState",
           "OP_BIND", "OP_REBIND", "OP_UNBIND"]

OP_BIND = "bind"
OP_REBIND = "rebind"
OP_UNBIND = "unbind"

_OPS = (OP_BIND, OP_REBIND, OP_UNBIND)


def check_name(name: str) -> None:
    """Reject names that can never be bound (an input bug, not a miss)."""
    if not isinstance(name, str) or not name:
        raise InvalidNameError("directory names must be non-empty strings")


@dataclass(frozen=True)
class LogEntry:
    """One replicated binding operation."""

    seq: int            # log position, 1-based, gap-free
    term: int           # leader term that appended it
    op: str             # OP_BIND / OP_REBIND / OP_UNBIND
    name: str
    oref: Optional[ObjectReference]  # None for unbind
    version: int        # per-name version this entry establishes

    def to_wire(self) -> dict:
        """Marshallable dict (ORs are first-class marshal values)."""
        return {"seq": self.seq, "term": self.term, "op": self.op,
                "name": self.name, "version": self.version,
                "oref": self.oref.clone() if self.oref is not None
                else None}

    @classmethod
    def from_wire(cls, data: dict) -> "LogEntry":
        op = data["op"]
        if op not in _OPS:
            raise DirectoryError(f"unknown log op {op!r}")
        oref = data.get("oref")
        return cls(seq=int(data["seq"]), term=int(data["term"]), op=op,
                   name=data["name"], version=int(data["version"]),
                   oref=oref.clone() if oref is not None else None)


@dataclass(frozen=True)
class BindingRecord:
    """The current table row for one name."""

    name: str
    oref: Optional[ObjectReference]  # None => tombstone (unbound)
    version: int


class DirectoryState:
    """Deterministic log + binding table (one per replica)."""

    def __init__(self):
        self._log: List[LogEntry] = []
        self._bindings: Dict[str, BindingRecord] = {}
        self._applied = 0
        self._lock = threading.RLock()

    # -- log shape -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        with self._lock:
            return self._log[-1].seq if self._log else 0

    @property
    def applied_seq(self) -> int:
        """Highest seq applied to the binding table (the committed
        prefix reads are served from)."""
        with self._lock:
            return self._applied

    @property
    def last_term(self) -> int:
        with self._lock:
            return self._log[-1].term if self._log else 0

    def term_at(self, seq: int) -> int:
        """Term of the entry at ``seq`` (0 for the empty prefix)."""
        with self._lock:
            if seq == 0:
                return 0
            if not 1 <= seq <= len(self._log):
                raise DirectoryError(f"no log entry at seq {seq}")
            return self._log[seq - 1].term

    def entries_from(self, seq: int, limit: int = 256) -> List[LogEntry]:
        """Log tail starting at ``seq`` (for follower catch-up)."""
        with self._lock:
            return list(self._log[max(seq - 1, 0):max(seq - 1, 0) + limit])

    # -- mutation ------------------------------------------------------

    def _latest(self, name: str) -> Optional[BindingRecord]:
        """The record ``name`` will have once the whole log commits:
        the committed row overlaid with any uncommitted suffix ops
        (lock held by caller)."""
        record = self._bindings.get(name)
        for entry in self._log[self._applied:]:
            if entry.name == name:
                oref = None if entry.op == OP_UNBIND else entry.oref
                record = BindingRecord(name=name, oref=oref,
                                       version=entry.version)
        return record

    def make_entry(self, term: int, op: str, name: str,
                   oref: Optional[ObjectReference]) -> LogEntry:
        """Build (without appending) the next entry for ``op`` on
        ``name`` — leader-side validation happens here, so an invalid
        operation never reaches the log.  Validation and the version
        chain run against the *latest* view (committed table plus the
        uncommitted suffix): the leader's own in-flight entries count."""
        check_name(name)
        if op not in _OPS:
            raise DirectoryError(f"unknown log op {op!r}")
        with self._lock:
            current = self._latest(name)
            bound = current is not None and current.oref is not None
            if op == OP_BIND and bound:
                raise NameAlreadyBoundError(
                    f"name {name!r} already bound (use rebind)")
            if op == OP_UNBIND and not bound:
                raise NameNotFoundError(f"name {name!r} is not bound")
            version = (current.version if current else 0) + 1
            return LogEntry(seq=self.last_seq + 1, term=term, op=op,
                            name=name, version=version,
                            oref=oref.clone() if oref is not None
                            else None)

    def append(self, entry: LogEntry) -> None:
        """Append one entry to the log (NOT the table — that waits for
        :meth:`apply_to` as the commit index advances).

        Appends must be gap-free and in order; an entry whose seq is
        already present is rejected (use :meth:`truncate` first when
        resolving a divergent suffix).
        """
        with self._lock:
            if entry.seq != self.last_seq + 1:
                raise DirectoryError(
                    f"log gap: appending seq {entry.seq} after "
                    f"{self.last_seq}")
            if entry.term < self.last_term:
                raise DirectoryError(
                    f"term went backwards: {entry.term} after "
                    f"{self.last_term}")
            self._log.append(entry)

    def apply_to(self, seq: int) -> int:
        """Apply log entries up to ``seq`` (clamped to the log tip) to
        the binding table; idempotent and monotone.  The consensus
        layer calls this as its commit index advances — reads only ever
        see what has passed through here.  Returns the applied seq."""
        with self._lock:
            seq = min(seq, self.last_seq)
            while self._applied < seq:
                self._apply(self._log[self._applied])
                self._applied += 1
            return self._applied

    def _apply(self, entry: LogEntry) -> None:
        oref = None if entry.op == OP_UNBIND else entry.oref
        self._bindings[entry.name] = BindingRecord(
            name=entry.name, oref=oref, version=entry.version)

    def truncate(self, seq: int) -> None:
        """Drop every entry after ``seq``.

        Used by followers resolving a divergent suffix after a leader
        change.  A correct consensus layer never truncates committed
        entries, so the table normally needs no touch-up; if ``seq``
        does land inside the applied prefix, the table is rebuilt by
        full replay (logs are short-lived test/metadata scale, so
        replay is simpler and safer than incremental undo).
        """
        with self._lock:
            if seq >= self.last_seq:
                return
            self._log = self._log[:seq]
            if self._applied > seq:
                self._bindings.clear()
                self._applied = 0
                for entry in self._log:
                    self._apply(entry)
                    self._applied = entry.seq

    # -- reads ---------------------------------------------------------

    def lookup(self, name: str) -> Optional[BindingRecord]:
        """Committed record for ``name`` (tombstones included), or
        None — uncommitted log entries are never served."""
        check_name(name)
        with self._lock:
            record = self._bindings.get(name)
            if record is None:
                return None
            oref = record.oref.clone() if record.oref is not None else None
            return BindingRecord(name=record.name, oref=oref,
                                 version=record.version)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(name for name, rec in self._bindings.items()
                          if rec.oref is not None)

    def names_for_object(self, object_id: str) -> List[str]:
        """Every live name currently bound to ``object_id``."""
        with self._lock:
            return sorted(
                name for name, rec in self._bindings.items()
                if rec.oref is not None
                and rec.oref.object_id == object_id)

    def snapshot(self) -> dict:
        """Diagnostic summary (log shape + live bindings)."""
        with self._lock:
            return {
                "last_seq": self.last_seq,
                "last_term": self.last_term,
                "applied_seq": self._applied,
                "bindings": {
                    name: {"version": rec.version,
                           "object_id": rec.oref.object_id
                           if rec.oref is not None else None}
                    for name, rec in sorted(self._bindings.items())
                },
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for rec in self._bindings.values()
                       if rec.oref is not None)
