"""Exception hierarchy for the Open HPC++ reproduction.

Every error raised by the library derives from :class:`HpcError` so that
applications can catch library failures with a single ``except`` clause,
mirroring the CORBA system-exception convention the paper's ORB follows.

The hierarchy is split along the paper's architectural seams:

* serialization errors (:class:`MarshalError`)
* transport/wire errors (:class:`TransportError` and friends)
* protocol-selection errors (:class:`NoApplicableProtocolError`)
* capability enforcement errors (:class:`CapabilityError` subtree) — these
  are the *application-visible* face of the capabilities model: a quota
  capability raising :class:`QuotaExceededError` on the client side, an
  authentication capability raising :class:`AuthenticationError` on the
  server side, and so on.
* remote invocation errors (:class:`RemoteInvocationError`,
  :class:`ObjectNotFoundError`, :class:`ObjectMovedError`)
* resilience errors (:class:`ResilienceError` subtree) — raised by the
  retry/failover layer in :mod:`repro.core.gp` when recovery itself gives
  up; they carry the attempt trail so operators can see every protocol
  the runtime tried before surrendering.
"""

from __future__ import annotations

__all__ = [
    "HpcError",
    "MarshalError",
    "TypeCodeError",
    "BufferUnderflowError",
    "TransportError",
    "ChannelClosedError",
    "FramingError",
    "DeliveryError",
    "OverloadError",
    "ProtocolError",
    "UnknownProtocolError",
    "NoApplicableProtocolError",
    "CapabilityError",
    "CapabilityNotApplicableError",
    "QuotaExceededError",
    "LeaseExpiredError",
    "AuthenticationError",
    "IntegrityError",
    "DecryptionError",
    "CompressionError",
    "RemoteInvocationError",
    "RemoteException",
    "ObjectNotFoundError",
    "ObjectMovedError",
    "InterfaceError",
    "MethodNotExposedError",
    "ResilienceError",
    "RetryExhaustedError",
    "RetryBudgetExhaustedError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "MigrationError",
    "NamingError",
    "NameNotFoundError",
    "NameAlreadyBoundError",
    "InvalidNameError",
    "DirectoryError",
    "NotLeaderError",
    "QuorumWriteError",
    "DirectoryUnavailableError",
    "SimulationError",
    "TopologyError",
    "IdlError",
    "IdlSyntaxError",
]


class HpcError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

class MarshalError(HpcError):
    """A value could not be encoded to, or decoded from, its wire form."""


class TypeCodeError(MarshalError):
    """An unknown or inconsistent typecode was encountered."""


class BufferUnderflowError(MarshalError):
    """A decoder ran past the end of its input buffer."""


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------

class TransportError(HpcError):
    """Base class for failures in the byte-moving layer."""


class ChannelClosedError(TransportError):
    """An operation was attempted on a closed channel."""


class FramingError(TransportError):
    """A message frame on the wire was malformed."""


class DeliveryError(TransportError):
    """The (simulated or real) network could not deliver a message."""


class OverloadError(TransportError):
    """The server shed this request before dispatch (admission control).

    A pushback reply, not a failure of the link: the peer is alive but
    refused the work (queue full, deadline already expired, or endpoint
    stopping).  ``retry_after`` is the server's backpressure hint in
    seconds; the client-side resilience layer stretches its backoff to
    at least that and suppresses hedging against the pushing-back peer.

    Deliberately a :class:`TransportError` so the GP's recovery loop
    treats it as retryable — and since a shed request provably never
    reached dispatch, the idempotence guard always permits the retry.
    """

    def __init__(self, message: str, retry_after: float = 0.0,
                 reason: str = "overload"):
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.reason = reason


# ---------------------------------------------------------------------------
# Protocols and selection
# ---------------------------------------------------------------------------

class ProtocolError(HpcError):
    """Base class for protocol-layer failures."""


class UnknownProtocolError(ProtocolError):
    """A protocol id present in an OR has no registered proto-class."""


class NoApplicableProtocolError(ProtocolError):
    """Protocol selection found no (OR-table x pool) match that is applicable.

    This is the error the paper's selection algorithm produces when the
    intersection of the object reference's protocol table and the local
    protocol pool is empty after applicability filtering.
    """


# ---------------------------------------------------------------------------
# Capabilities
# ---------------------------------------------------------------------------

class CapabilityError(HpcError):
    """Base class for capability construction and enforcement failures."""


class CapabilityNotApplicableError(CapabilityError):
    """A capability was asked to process a request outside its applicability."""


class QuotaExceededError(CapabilityError):
    """A call-quota ("timeout") capability ran out of permitted requests."""


class LeaseExpiredError(CapabilityError):
    """A time-lease capability's paid-for window has elapsed."""


class AuthenticationError(CapabilityError):
    """Client authentication failed at the server-side glue class."""


class IntegrityError(CapabilityError):
    """A message checksum or MAC did not verify."""


class DecryptionError(CapabilityError):
    """Ciphertext could not be decrypted (bad key, truncation, corruption)."""


class CompressionError(CapabilityError):
    """Compressed payload could not be inflated."""


# ---------------------------------------------------------------------------
# Remote invocation
# ---------------------------------------------------------------------------

class RemoteInvocationError(HpcError):
    """A remote method invocation failed at the ORB level."""


class RemoteException(RemoteInvocationError):
    """The remote servant raised; carries the remote type name and message.

    The server-side ORB marshals the servant's exception into the reply;
    the client-side GP re-raises it as a ``RemoteException`` whose
    ``remote_type`` preserves the original class name.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


class ObjectNotFoundError(RemoteInvocationError):
    """The target object id is not exported by the addressed context."""


class ObjectMovedError(RemoteInvocationError):
    """The object migrated away; carries a forwarding OR when available."""

    def __init__(self, message: str, forward=None):
        super().__init__(message)
        self.forward = forward


class InterfaceError(RemoteInvocationError):
    """A request violated the remote interface contract."""


class MethodNotExposedError(InterfaceError):
    """The method exists on the servant but is outside the client's view.

    Raised when a client holding a *restricted interface view* (the paper's
    "access only to a subset of the server interface") calls a method the
    view does not expose.
    """


# ---------------------------------------------------------------------------
# Resilience (retries, failover, circuit breaking)
# ---------------------------------------------------------------------------

class ResilienceError(RemoteInvocationError):
    """Recovery gave up; ``attempts`` is the trail of failed tries.

    Each element of ``attempts`` is an
    :class:`repro.core.resilience.AttemptRecord` describing one failed
    invocation attempt (protocol, error, clock time).
    """

    def __init__(self, message: str, attempts=None):
        super().__init__(message)
        self.attempts = list(attempts or [])


class RetryExhaustedError(ResilienceError):
    """Every permitted attempt failed (see the carried attempt trail)."""


class RetryBudgetExhaustedError(RetryExhaustedError):
    """The context's shared per-peer retry budget refused the retry.

    Distinct from plain :class:`RetryExhaustedError`: *this* call may
    have attempts left under its own :class:`RetryPolicy`, but the
    token bucket shared by every concurrent call to the same peer is
    empty — retrying now would amplify load against a peer that is
    already flapping.
    """


class DeadlineExceededError(ResilienceError):
    """The per-call deadline elapsed before an attempt succeeded."""


class CircuitOpenError(ResilienceError):
    """Every applicable protocol is shed by an open circuit breaker."""


# ---------------------------------------------------------------------------
# Migration / naming / simulation / IDL
# ---------------------------------------------------------------------------

class MigrationError(HpcError):
    """Object migration failed or was attempted on a non-migratable servant."""


class NamingError(HpcError):
    """Base class for name-service errors."""


class NameNotFoundError(NamingError):
    """Lookup of an unbound name."""


class NameAlreadyBoundError(NamingError):
    """``bind`` of a name that is already bound (use ``rebind``)."""


class InvalidNameError(NamingError, ValueError):
    """A name that can never be bound (empty, or otherwise malformed).

    Deliberately *also* a :class:`ValueError`: passing an empty name is a
    caller bug, not a lookup that happened to miss, so it must not be
    caught by ``except NameNotFoundError`` retry loops.
    """


class DirectoryError(NamingError):
    """Base class for replicated-directory (``repro.directory``) errors."""


class NotLeaderError(DirectoryError):
    """A write reached a replica that is not the current lease holder.

    ``leader`` carries the replica's best hint (node id, may be ``""``
    when no leader is known) so clients can redirect instead of probing.
    """

    def __init__(self, message: str, leader: str = ""):
        super().__init__(message)
        self.leader = leader


class QuorumWriteError(DirectoryError):
    """The leader could not gather a write quorum (partition/crash).

    The entry stays in the leader's log and may still commit when the
    cluster heals — the write is *in doubt*, not certainly lost, which
    is why this is distinct from :class:`NotLeaderError`.
    """


class DirectoryUnavailableError(DirectoryError):
    """No directory replica answered a resolve/write attempt."""


class SimulationError(HpcError):
    """The network simulator was driven into an invalid state."""


class TopologyError(SimulationError):
    """The simulated topology is malformed (unknown machine, no route...)."""


class IdlError(HpcError):
    """Base class for interface-definition errors."""


class IdlSyntaxError(IdlError):
    """The tiny-IDL parser rejected its input."""
