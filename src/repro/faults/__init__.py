"""Deterministic fault injection (see :mod:`repro.faults.plan`).

The runtime's resilience claims are only as good as the failures they
are tested against.  This package supplies seeded, reproducible fault
scripts that attach at the simulated-link level
(``NetworkSimulator(fault_plan=...)``) and at the real-channel level
(:class:`FaultyTransport` / :class:`FaultyChannel`), covering both the
virtual-time and wall-clock halves of the library with one vocabulary.
"""

from repro.faults.channel import FaultyChannel, FaultyTransport
from repro.faults.plan import (
    FaultDecision,
    FaultPlan,
    FaultRule,
    ScheduledAction,
)
from repro.faults.process import (
    kill_node,
    pause_node,
    pulse_pause,
    restart_node,
    resume_node,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultDecision",
    "FaultyChannel",
    "FaultyTransport",
    "ScheduledAction",
    "kill_node",
    "pause_node",
    "pulse_pause",
    "restart_node",
    "resume_node",
]
