"""Fault-injecting wrappers for real transports.

:class:`FaultyChannel` decorates any :class:`~repro.transport.base.Channel`
and consults a :class:`~repro.faults.plan.FaultPlan` around every
``send``/``recv``; :class:`FaultyTransport` decorates a transport so
every outbound ``connect`` (and the channels it yields) is injectable.
This is the wall-clock twin of the simulator's link attachment: the same
plan vocabulary drives tcp, inproc, and shm paths.

Injected failures surface as the *library's own* transport exceptions
(``DeliveryError`` for drops, ``ChannelClosedError`` for disconnects),
so the resilient invocation layer cannot tell injected faults from real
ones — which is the point.
"""

from __future__ import annotations

from typing import Optional

from repro.core.resilience import sleep_on
from repro.exceptions import ChannelClosedError, DeliveryError, TransportError
from repro.faults.plan import FaultPlan
from repro.transport.base import Channel, Listener, Transport
from repro.util.timing import TimeSource, WallClock

__all__ = ["FaultyChannel", "FaultyTransport"]


class FaultyChannel(Channel):
    """A channel with a fault plan wired across both directions."""

    def __init__(self, inner: Channel, plan: FaultPlan, label: str = "chan",
                 clock: Optional[TimeSource] = None):
        self.inner = inner
        self.plan = plan
        self.label = label
        self.clock = clock or WallClock()

    def _apply(self, decision, direction: str):
        if decision is None:
            return
        if decision.kind == "delay":
            sleep_on(self.clock, decision.delay)
        elif decision.kind == "drop":
            raise DeliveryError(
                f"injected drop on {self.label} ({direction})")
        elif decision.kind == "disconnect":
            self.inner.close()
            raise ChannelClosedError(
                f"injected disconnect on {self.label} ({direction})")

    def send(self, data) -> None:
        decision = self.plan.decide_channel("send", self.label, len(data))
        self._apply(decision, "send")
        if decision is not None and decision.kind == "corrupt":
            data = self.plan.corrupt_bytes(bytes(data))
        self.inner.send(data)

    def recv(self, timeout: Optional[float] = None) -> bytes:
        data = self.inner.recv(timeout)
        decision = self.plan.decide_channel("recv", self.label, len(data))
        self._apply(decision, "recv")
        if decision is not None and decision.kind == "corrupt":
            data = self.plan.corrupt_bytes(data)
        return data

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed


class _FaultyListener(Listener):
    """Accepted channels get the plan too (server-side injection)."""

    def __init__(self, inner: Listener, plan: FaultPlan, label: str,
                 clock: TimeSource):
        self.inner = inner
        self.plan = plan
        self.label = label
        self.clock = clock

    def accept(self, timeout: Optional[float] = None) -> Channel:
        return FaultyChannel(self.inner.accept(timeout), self.plan,
                             label=self.label, clock=self.clock)

    def close(self) -> None:
        self.inner.close()

    @property
    def address(self) -> dict:
        return self.inner.address


class FaultyTransport(Transport):
    """Transport decorator: injectable connects and channels.

    ``label`` defaults to the wrapped transport's name, so channel rules
    written as ``FaultRule(..., label="tcp")`` target exactly this
    transport's traffic.  Listeners are wrapped only when
    ``wrap_listeners=True`` — normally the *client* side is the
    interesting place to break.
    """

    def __init__(self, inner: Transport, plan: FaultPlan,
                 label: Optional[str] = None,
                 clock: Optional[TimeSource] = None,
                 wrap_listeners: bool = False):
        self.inner = inner
        self.plan = plan
        self.name = inner.name
        self.label = label if label is not None else inner.name
        self.clock = clock or WallClock()
        self.wrap_listeners = wrap_listeners

    def listen(self, address: Optional[dict] = None) -> Listener:
        listener = self.inner.listen(address)
        if self.wrap_listeners:
            return _FaultyListener(listener, self.plan, self.label,
                                   self.clock)
        return listener

    def connect(self, address: dict) -> Channel:
        decision = self.plan.decide_channel("connect", self.label)
        if decision is not None:
            if decision.kind == "delay":
                sleep_on(self.clock, decision.delay)
            elif decision.kind in ("drop", "disconnect"):
                raise TransportError(
                    f"injected connect failure on {self.label}")
        return FaultyChannel(self.inner.connect(address), self.plan,
                             label=self.label, clock=self.clock)
