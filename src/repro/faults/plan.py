"""Deterministic fault plans.

A :class:`FaultPlan` is a seeded script of network misbehaviour: drop,
delay, corrupt, and disconnect rules plus machine-level partitions.  Two
attachment points consume it:

* **per link** — :class:`repro.simnet.simulator.NetworkSimulator` calls
  :meth:`FaultPlan.decide_link` for every simulated transfer (and
  :meth:`maybe_corrupt` from the simulated channel, which is the layer
  that actually holds payload bytes);
* **per channel** — :class:`repro.faults.channel.FaultyChannel` calls
  :meth:`FaultPlan.decide_channel` around ``send``/``recv``/``connect``
  on any real transport (tcp, inproc, shm), so wall-clock paths are
  injectable too.

Determinism: all probability draws come from one
:class:`~repro.security.prng.Pcg32` seeded at construction, and rules
fire on per-rule match counters — the same plan over the same message
sequence always injects the same faults.  No wall-clock randomness.

Plans can also be **phased**: :meth:`FaultPlan.schedule` registers
actions at absolute (virtual) times — add or remove rules, partition or
heal — and a driver (the chaos harness, or any loop with a clock) calls
:meth:`FaultPlan.apply_until` as time passes.  Helpers cover the common
shapes: :meth:`partition_at` / :meth:`heal_at`, :meth:`rule_between`
(link degradation with scheduled recovery), and :meth:`flap_node`
(a machine drops off the network for a window).  Each fired action
publishes a ``fault_phase`` hook event.  :meth:`reset` rewinds the
whole plan — counters, PRNG, partitions, scheduled actions — so one
authored plan can drive repeated identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.security.prng import Pcg32

__all__ = ["FaultRule", "FaultDecision", "FaultPlan", "ScheduledAction"]

#: Recognized fault kinds.
FAULT_KINDS = frozenset({"drop", "delay", "corrupt", "disconnect"})


@dataclass
class FaultRule:
    """One injection rule.

    ``src``/``dst`` filter by simulated machine name (link attachment);
    ``label`` filters by channel label (channel attachment); ``point``
    restricts a channel rule to ``send``, ``recv``, or ``connect``.
    ``after`` skips the first N matching events, ``count`` caps how many
    times the rule fires, ``probability`` gates each firing through the
    plan's seeded PRNG.
    """

    kind: str
    probability: float = 1.0
    src: Optional[str] = None
    dst: Optional[str] = None
    label: Optional[str] = None
    point: Optional[str] = None        # "send" | "recv" | "connect"
    delay: float = 0.0                 # extra seconds for kind="delay"
    after: int = 0
    count: Optional[int] = None
    # internal counters (not part of the rule's identity)
    seen: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def matches_link(self, src: str, dst: str) -> bool:
        return (self.label is None
                and (self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))

    def matches_channel(self, point: str, label: str) -> bool:
        return (self.src is None and self.dst is None
                and (self.point is None or self.point == point)
                and (self.label is None or self.label == label))

    def exhausted(self) -> bool:
        return self.count is not None and self.fired >= self.count


@dataclass(frozen=True)
class FaultDecision:
    """The outcome of consulting a plan: what to inject."""

    kind: str
    delay: float = 0.0
    rule: Optional[FaultRule] = None


@dataclass
class ScheduledAction:
    """One timed plan mutation (fired at most once per run)."""

    at: float
    seq: int
    action: Callable[["FaultPlan"], None]
    label: str = ""
    fired: bool = field(default=False, compare=False)


class FaultPlan:
    """Seeded, deterministic fault script.

    >>> plan = FaultPlan(seed=7)
    >>> plan.drop(probability=0.2, src="m1")          # doctest: +ELLIPSIS
    FaultRule(...)
    >>> plan.partition({"m1"}, {"m2", "m3"})
    """

    def __init__(self, seed: int = 0, hooks=None):
        self.seed = seed
        self._rng = Pcg32(seed, stream=0xFA17)
        self.rules: List[FaultRule] = []
        self.partitions: List[Tuple[Set[str], Set[str]]] = []
        self._authored_partitions: List[Tuple[Set[str], Set[str]]] = []
        #: Every injected fault, in order (kind, detail) — the audit log
        #: tests assert determinism against.
        self.injected: List[Tuple[str, str]] = []
        #: Timed plan mutations consumed by :meth:`apply_until`.
        self.scheduled: List[ScheduledAction] = []
        self._schedule_seq = 0
        self._in_scheduled = False
        self._transient_rule_ids: Set[int] = set()
        if hooks is None:
            from repro.core.instrumentation import GLOBAL_HOOKS
            hooks = GLOBAL_HOOKS
        self.hooks = hooks

    # ------------------------------------------------------------------
    # authoring
    # ------------------------------------------------------------------

    def add(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        if self._in_scheduled:
            # Added by a timed action: removed again by reset(), so a
            # rewound plan starts from its *authored* rule set.
            self._transient_rule_ids.add(id(rule))
        return rule

    def remove(self, rule: FaultRule) -> None:
        """Remove a rule (identity match); unknown rules are ignored."""
        for i, existing in enumerate(self.rules):
            if existing is rule:
                del self.rules[i]
                self._transient_rule_ids.discard(id(rule))
                return

    def drop(self, **kw) -> FaultRule:
        return self.add(FaultRule("drop", **kw))

    def delay(self, seconds: float, **kw) -> FaultRule:
        return self.add(FaultRule("delay", delay=seconds, **kw))

    def corrupt(self, **kw) -> FaultRule:
        return self.add(FaultRule("corrupt", **kw))

    def disconnect(self, **kw) -> FaultRule:
        return self.add(FaultRule("disconnect", **kw))

    def partition(self, group_a, group_b) -> None:
        """Sever all traffic between two machine groups until healed."""
        a, b = set(group_a), set(group_b)
        if a & b:
            raise ValueError("partition groups must be disjoint")
        self.partitions.append((a, b))
        if not self._in_scheduled:
            self._authored_partitions.append((set(a), set(b)))

    def heal(self) -> None:
        """Remove every partition (link rules keep applying)."""
        self.partitions.clear()
        if not self._in_scheduled:
            self._authored_partitions.clear()

    def unpartition(self, group_a, group_b) -> None:
        """Heal one specific partition (group order irrelevant)."""
        key = {frozenset(group_a), frozenset(group_b)}
        self.partitions = [(pa, pb) for pa, pb in self.partitions
                           if {frozenset(pa), frozenset(pb)} != key]
        if not self._in_scheduled:
            self._authored_partitions = [
                (pa, pb) for pa, pb in self._authored_partitions
                if {frozenset(pa), frozenset(pb)} != key]

    # ------------------------------------------------------------------
    # phase / recovery scheduling
    # ------------------------------------------------------------------

    def schedule(self, at: float, action: Callable[["FaultPlan"], None],
                 label: str = "") -> ScheduledAction:
        """Run ``action(plan)`` once time reaches ``at`` (see
        :meth:`apply_until`).  Ties fire in registration order."""
        if at < 0:
            raise ValueError("schedule time must be non-negative")
        entry = ScheduledAction(at=at, seq=self._schedule_seq,
                                action=action, label=label)
        self._schedule_seq += 1
        self.scheduled.append(entry)
        return entry

    def partition_at(self, at: float, group_a, group_b) -> ScheduledAction:
        """Sever two machine groups once time reaches ``at``."""
        a, b = set(group_a), set(group_b)
        if a & b:
            raise ValueError("partition groups must be disjoint")
        return self.schedule(at, lambda plan: plan.partition(a, b),
                             label=f"partition {sorted(a)}|{sorted(b)}")

    def heal_at(self, at: float) -> ScheduledAction:
        """Remove every partition once time reaches ``at``."""
        return self.schedule(at, lambda plan: plan.heal(), label="heal")

    def rule_between(self, start: float, stop: float,
                     rule: FaultRule) -> FaultRule:
        """Apply ``rule`` only inside the window ``[start, stop)`` —
        link degradation with scheduled recovery."""
        if stop <= start:
            raise ValueError("rule window must end after it starts")
        self.schedule(start, lambda plan: plan.add(rule),
                      label=f"begin {rule.kind}")
        self.schedule(stop, lambda plan: plan.remove(rule),
                      label=f"end {rule.kind}")
        return rule

    def flap_node(self, machine: str, others, at: float,
                  duration: float) -> None:
        """Drop ``machine`` off the network for ``duration`` seconds
        starting at ``at`` (partition against ``others``, then heal
        just that partition)."""
        if duration <= 0:
            raise ValueError("flap duration must be positive")
        group_a, group_b = {machine}, set(others) - {machine}
        if not group_b:
            raise ValueError("flap needs at least one other machine")
        self.schedule(at, lambda plan: plan.partition(group_a, group_b),
                      label=f"flap {machine} down")
        self.schedule(at + duration,
                      lambda plan: plan.unpartition(group_a, group_b),
                      label=f"flap {machine} up")

    def apply_until(self, now: float) -> List[ScheduledAction]:
        """Fire every not-yet-fired action scheduled at or before
        ``now``, in (time, registration) order; returns those fired.
        Drivers call this as their clock advances — under simulation
        that makes phase boundaries exact virtual-time events."""
        due = sorted((a for a in self.scheduled
                      if not a.fired and a.at <= now),
                     key=lambda a: (a.at, a.seq))
        for entry in due:
            entry.fired = True
            self._in_scheduled = True
            try:
                entry.action(self)
            finally:
                self._in_scheduled = False
            self.hooks.emit("fault_phase", at=entry.at, now=now,
                            label=entry.label)
        return due

    # ------------------------------------------------------------------
    # reuse
    # ------------------------------------------------------------------

    @property
    def consumed(self) -> bool:
        """True once the plan has seen traffic or fired a phase."""
        return (bool(self.injected)
                or any(a.fired for a in self.scheduled)
                or any(r.seen or r.fired for r in self.rules))

    def reset(self) -> None:
        """Rewind the plan to its freshly-authored state: PRNG
        re-seeded, rule counters cleared, partitions healed, scheduled
        actions un-fired, audit log emptied.  Rules that were *added by*
        scheduled actions are removed, so a replayed plan mutates
        itself identically."""
        self._rng = Pcg32(self.seed, stream=0xFA17)
        self.rules = [r for r in self.rules
                      if id(r) not in self._transient_rule_ids]
        self._transient_rule_ids.clear()
        for rule in self.rules:
            rule.seen = 0
            rule.fired = 0
        self.partitions = [(set(a), set(b))
                           for a, b in self._authored_partitions]
        self.injected.clear()
        for entry in self.scheduled:
            entry.fired = False

    # ------------------------------------------------------------------
    # decision points
    # ------------------------------------------------------------------

    def _fire(self, rule: FaultRule) -> bool:
        """Per-rule match bookkeeping + probability draw."""
        if rule.exhausted():
            return False
        rule.seen += 1
        if rule.seen <= rule.after:
            return False
        if rule.probability < 1.0 and self._rng.uniform() >= rule.probability:
            return False
        rule.fired += 1
        return True

    def _record(self, kind: str, detail: str) -> FaultDecision:
        self.injected.append((kind, detail))
        self.hooks.emit("fault_injected", fault=kind, detail=detail)
        return FaultDecision(kind=kind)

    def _partitioned(self, src: str, dst: str) -> bool:
        for a, b in self.partitions:
            if (src in a and dst in b) or (src in b and dst in a):
                return True
        return False

    def decide_link(self, src: str, dst: str,
                    nbytes: int) -> Optional[FaultDecision]:
        """Consult drop/delay/disconnect rules for one simulated
        transfer ``src -> dst`` (machine names).  Corruption is decided
        separately by :meth:`maybe_corrupt`, the layer that holds bytes.
        """
        if self._partitioned(src, dst):
            self.injected.append(("partition", f"{src}->{dst}"))
            self.hooks.emit("fault_injected", fault="partition",
                            detail=f"{src}->{dst}", src=src, dst=dst)
            return FaultDecision(kind="drop")
        total_delay = 0.0
        for rule in self.rules:
            if rule.kind == "corrupt" or not rule.matches_link(src, dst):
                continue
            if not self._fire(rule):
                continue
            if rule.kind == "delay":
                total_delay += rule.delay
                self.injected.append(("delay", f"{src}->{dst}"))
                self.hooks.emit("fault_injected", fault="delay",
                                detail=f"{src}->{dst}", seconds=rule.delay)
                continue
            detail = f"{src}->{dst}"
            self.injected.append((rule.kind, detail))
            self.hooks.emit("fault_injected", fault=rule.kind,
                            detail=detail, src=src, dst=dst, nbytes=nbytes)
            return FaultDecision(kind=rule.kind, rule=rule)
        if total_delay > 0:
            return FaultDecision(kind="delay", delay=total_delay)
        return None

    def decide_channel(self, point: str, label: str,
                       nbytes: int = 0) -> Optional[FaultDecision]:
        """Consult channel rules at ``point`` (\"send\"/\"recv\"/
        \"connect\") for a channel tagged ``label``."""
        total_delay = 0.0
        for rule in self.rules:
            if not rule.matches_channel(point, label):
                continue
            if not self._fire(rule):
                continue
            if rule.kind == "delay":
                total_delay += rule.delay
                self.injected.append(("delay", f"{label}:{point}"))
                self.hooks.emit("fault_injected", fault="delay",
                                detail=f"{label}:{point}",
                                seconds=rule.delay)
                continue
            detail = f"{label}:{point}"
            self.injected.append((rule.kind, detail))
            self.hooks.emit("fault_injected", fault=rule.kind,
                            detail=detail, label=label, point=point,
                            nbytes=nbytes)
            return FaultDecision(kind=rule.kind, rule=rule)
        if total_delay > 0:
            return FaultDecision(kind="delay", delay=total_delay)
        return None

    # ------------------------------------------------------------------
    # payload corruption
    # ------------------------------------------------------------------

    def maybe_corrupt(self, src: str, dst: str, payload: bytes) -> bytes:
        """Apply link-level corrupt rules to ``payload`` (simnet path)."""
        for rule in self.rules:
            if rule.kind != "corrupt" or not rule.matches_link(src, dst):
                continue
            if self._fire(rule):
                detail = f"{src}->{dst}"
                self.injected.append(("corrupt", detail))
                self.hooks.emit("fault_injected", fault="corrupt",
                                detail=detail, nbytes=len(payload))
                return self.corrupt_bytes(payload)
        return payload

    def corrupt_bytes(self, payload: bytes) -> bytes:
        """Flip one deterministic byte of the payload."""
        if not payload:
            return payload
        data = bytearray(payload)
        index = self._rng.randint(0, len(data) - 1)
        data[index] ^= 0xFF
        return bytes(data)
