"""Process-level fault actions for the real-process cluster harness.

The link-level vocabulary (:mod:`repro.faults.plan`) mutates simulated
networks; these actions mutate *operating-system processes* — the
failure modes a deployed ORB actually meets.  Each factory returns a
zero-argument callable suitable for
:meth:`repro.cluster.procs.ProcRun.schedule`, so a proc chaos script
reads like a fault plan::

    run = (ProcRun(duration=6.0)
           .schedule(2.0, kill_node(cluster, "n1"), "crash n1")
           .schedule(4.0, restart_node(cluster, "n1"), "reschedule n1"))

Semantics of the three primitive faults:

``kill_node``
    ``SIGKILL`` — an un-handleable crash.  Connections die, clients see
    transport errors, and recovery is entirely the client stack's
    (failover, breakers, retry budget) problem.
``pause_node`` / ``resume_node``
    ``SIGSTOP``/``SIGCONT`` — the gray failure.  The frozen process's
    listen backlog still accepts TCP connections, so naive clients hang
    instead of failing; deadlines and hedging are what keep goodput up.
``restart_node``
    ``SIGTERM`` drain, respawn, and GP reschedule via
    ``update_reference`` — a rolling restart, the planned-maintenance
    shape of process death.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["kill_node", "pause_node", "resume_node", "restart_node",
           "pulse_pause"]


def kill_node(cluster, name: str) -> Callable[[], None]:
    """SIGKILL ``name`` when invoked (idempotent once dead)."""
    return lambda: cluster.kill(name)


def pause_node(cluster, name: str) -> Callable[[], None]:
    """SIGSTOP ``name`` when invoked."""
    return lambda: cluster.pause(name)


def resume_node(cluster, name: str) -> Callable[[], None]:
    """SIGCONT ``name`` when invoked."""
    return lambda: cluster.resume(name)


def restart_node(cluster, name: str, *,
                 grace: float = 10.0) -> Callable[[], None]:
    """Rolling-restart ``name`` when invoked (drain, respawn, rewire)."""
    return lambda: cluster.restart(name, grace=grace)


def pulse_pause(run, cluster, name: str, *, at: float,
                duration: float):
    """Schedule a SIGSTOP at ``at`` and its SIGCONT ``duration`` later
    on ``run`` — the bounded gray-failure pulse the SIGSTOP tests use.
    Returns ``run`` for chaining.
    """
    if duration <= 0:
        raise ValueError("pause duration must be positive")
    run.schedule(at, pause_node(cluster, name), f"pause {name}")
    run.schedule(at + duration, resume_node(cluster, name),
                 f"resume {name}")
    return run
