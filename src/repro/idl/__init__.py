"""Interface definition layer (tiny IDL).

Open HPC++ follows CORBA in separating *interface* from *implementation*;
the intro's motivating scenario further wants per-client *views* — "some
clients may need access to the complete server interface, others may need
access only to a subset of it" (§1).  This package provides:

* :mod:`repro.idl.types` — :class:`MethodSpec` / :class:`InterfaceSpec`
  value objects (marshallable, so interfaces can travel inside ORs);
* :mod:`repro.idl.interface` — ``@remote_interface`` / ``@remote_method``
  decorators for defining interfaces in Python, plus
  :class:`InterfaceView` for subsetting;
* :mod:`repro.idl.parser` — a parser for the small textual IDL;
* :mod:`repro.idl.stubs` — dynamic client stub classes over a
  global pointer.
"""

from repro.idl.types import InterfaceSpec, MethodSpec, ParamSpec
from repro.idl.interface import (
    InterfaceView,
    interface_of,
    remote_interface,
    remote_method,
)
from repro.idl.parser import parse_idl
from repro.idl.skeletons import make_servant_base, validate_servant
from repro.idl.stubs import make_stub_class

__all__ = [
    "InterfaceSpec",
    "MethodSpec",
    "ParamSpec",
    "remote_interface",
    "remote_method",
    "interface_of",
    "InterfaceView",
    "parse_idl",
    "make_stub_class",
    "make_servant_base",
    "validate_servant",
]
