"""Define interfaces with decorators; subset them with views.

Usage::

    @remote_interface("Weather")
    class WeatherService:
        @remote_method(returns="array")
        def get_map(self, region: str, resolution: int):
            ...

        @remote_method(oneway=True)
        def feed(self, data):
            ...

The decorator inspects each marked method's Python signature to build
:class:`~repro.idl.types.MethodSpec` entries and stores the resulting
:class:`~repro.idl.types.InterfaceSpec` on the class.  Servants are then
exported with ``context.export(WeatherService(), ...)`` and the ORB uses
the spec (or a view of it) to gate dispatch.
"""

from __future__ import annotations

import inspect
from typing import Iterable, Optional

from repro.exceptions import IdlError
from repro.idl.types import InterfaceSpec, MethodSpec, ParamSpec

__all__ = ["remote_method", "remote_interface", "interface_of",
           "InterfaceView"]

_MARK = "__hpc_remote_method__"
_SPEC_ATTR = "__hpc_interface__"

#: Map Python annotation -> IDL wire type name.
_ANNOTATION_TYPES = {
    int: "int",
    float: "float",
    str: "string",
    bytes: "bytes",
    bool: "bool",
    list: "list",
    dict: "dict",
    None: "void",
    type(None): "void",
}


def remote_method(fn=None, *, returns: str = "any", oneway: bool = False,
                  retry_safe: bool = False):
    """Mark a method for inclusion in the class's remote interface.

    ``retry_safe=True`` declares the method idempotent: the GP's retry
    layer may re-issue it even when a failed attempt might already have
    reached the servant (reads, pure functions, set-to-value writes).
    """

    def mark(func):
        setattr(func, _MARK, {"returns": returns, "oneway": oneway,
                              "retry_safe": retry_safe})
        return func

    if fn is not None:  # bare @remote_method
        return mark(fn)
    return mark


def _param_type(annotation) -> str:
    if annotation is inspect.Parameter.empty:
        return "any"
    return _ANNOTATION_TYPES.get(annotation, "any")


def _spec_for(func, name: str, meta: dict) -> MethodSpec:
    sig = inspect.signature(func)
    params = []
    for i, (pname, p) in enumerate(sig.parameters.items()):
        if i == 0 and pname in ("self", "cls"):
            continue
        if p.kind in (inspect.Parameter.VAR_POSITIONAL,
                      inspect.Parameter.VAR_KEYWORD):
            raise IdlError(
                f"remote method {name!r} cannot use *args/**kwargs")
        params.append(ParamSpec(pname, _param_type(p.annotation)))
    returns = meta["returns"]
    if returns == "any" and sig.return_annotation \
            is not inspect.Signature.empty:
        returns = _ANNOTATION_TYPES.get(sig.return_annotation, "any")
    if meta["oneway"]:
        returns = "void"
    return MethodSpec(name=name, params=tuple(params), returns=returns,
                      oneway=meta["oneway"], doc=(func.__doc__ or ""),
                      retry_safe=meta.get("retry_safe", False))


def remote_interface(name: Optional[str] = None):
    """Class decorator collecting ``@remote_method`` members."""

    def build(cls):
        methods = {}
        for attr_name, member in inspect.getmembers(
                cls, predicate=inspect.isfunction):
            meta = getattr(member, _MARK, None)
            if meta is not None:
                methods[attr_name] = _spec_for(member, attr_name, meta)
        if not methods:
            raise IdlError(
                f"{cls.__name__} declares no @remote_method members")
        spec = InterfaceSpec(name=name or cls.__name__, methods=methods)
        setattr(cls, _SPEC_ATTR, spec)
        return cls

    return build


def interface_of(obj) -> InterfaceSpec:
    """The :class:`InterfaceSpec` of a decorated class or its instance."""
    spec = getattr(obj, _SPEC_ATTR, None)
    if spec is None:
        raise IdlError(
            f"{type(obj).__name__ if not isinstance(obj, type) else obj.__name__}"
            " has no remote interface (missing @remote_interface?)")
    return spec


class InterfaceView:
    """A named subset of an interface, for restricted clients.

    Views are the library-level realization of "different kinds of
    accesses for different clients" (§1): a server exports one servant but
    hands different clients ORs carrying different views.

    >>> view = InterfaceView("ReadOnly", ["get_map"])
    """

    def __init__(self, name: str, allowed: Iterable[str]):
        self.name = name
        self.allowed = frozenset(allowed)
        if not self.allowed:
            raise IdlError("a view must expose at least one method")

    def apply(self, spec: InterfaceSpec) -> InterfaceSpec:
        return spec.subset(self.allowed, name=self.name)

    def __or__(self, other: "InterfaceView") -> "InterfaceView":
        """Union of two views."""
        return InterfaceView(f"{self.name}_or_{other.name}",
                             self.allowed | other.allowed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InterfaceView({self.name!r}, {sorted(self.allowed)})"
