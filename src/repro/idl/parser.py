"""Parser for the tiny textual IDL.

Grammar (whitespace-insensitive, ``//`` and ``/* */`` comments)::

    file      := interface*
    interface := "interface" IDENT "{" method* "}" ";"?
    method    := ["oneway"] TYPE IDENT "(" params? ")" ";"
    params    := param ("," param)*
    param     := TYPE IDENT | IDENT          # untyped params default to any
    TYPE      := one of repro.idl.types.WIRE_TYPES

Example::

    interface Weather {
        array get_map(string region, int resolution);
        oneway void feed(any data);
        int remaining_credits();
    };
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.exceptions import IdlSyntaxError
from repro.idl.types import InterfaceSpec, MethodSpec, ParamSpec, WIRE_TYPES

__all__ = ["parse_idl", "tokenize"]

_TOKEN = re.compile(r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}();,])
  | (?P<space>\s+)
  | (?P<bad>.)
""", re.VERBOSE | re.DOTALL)


def tokenize(text: str) -> List[str]:
    """Split IDL text into identifier and punctuation tokens."""
    tokens = []
    for match in _TOKEN.finditer(text):
        kind = match.lastgroup
        if kind in ("comment", "space"):
            continue
        if kind == "bad":
            raise IdlSyntaxError(
                f"unexpected character {match.group()!r} at "
                f"offset {match.start()}")
        tokens.append(match.group())
    return tokens


class _Cursor:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise IdlSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise IdlSyntaxError(f"expected {token!r}, got {got!r}")


def _parse_param(cur: _Cursor) -> ParamSpec:
    first = cur.next()
    if cur.peek() not in (",", ")"):
        # "TYPE name" form
        if first not in WIRE_TYPES:
            raise IdlSyntaxError(f"unknown parameter type {first!r}")
        return ParamSpec(cur.next(), first)
    return ParamSpec(first, "any")


def _parse_method(cur: _Cursor) -> MethodSpec:
    oneway = False
    retry_safe = False
    tok = cur.next()
    while tok in ("oneway", "idempotent"):
        if tok == "oneway":
            oneway = True
        else:
            retry_safe = True
        tok = cur.next()
    if tok not in WIRE_TYPES:
        raise IdlSyntaxError(f"unknown return type {tok!r}")
    returns = tok
    name = cur.next()
    cur.expect("(")
    params: List[ParamSpec] = []
    if cur.peek() != ")":
        params.append(_parse_param(cur))
        while cur.peek() == ",":
            cur.next()
            params.append(_parse_param(cur))
    cur.expect(")")
    cur.expect(";")
    if oneway and returns != "void":
        raise IdlSyntaxError(
            f"oneway method {name!r} must return void, not {returns!r}")
    return MethodSpec(name=name, params=tuple(params), returns=returns,
                      oneway=oneway, retry_safe=retry_safe)


def parse_idl(text: str) -> Dict[str, InterfaceSpec]:
    """Parse IDL text into ``{interface name: InterfaceSpec}``."""
    cur = _Cursor(tokenize(text))
    interfaces: Dict[str, InterfaceSpec] = {}
    while cur.peek() is not None:
        cur.expect("interface")
        name = cur.next()
        if name in interfaces:
            raise IdlSyntaxError(f"duplicate interface {name!r}")
        cur.expect("{")
        methods: Dict[str, MethodSpec] = {}
        while cur.peek() != "}":
            spec = _parse_method(cur)
            if spec.name in methods:
                raise IdlSyntaxError(
                    f"duplicate method {spec.name!r} in {name!r}")
            methods[spec.name] = spec
        cur.expect("}")
        if cur.peek() == ";":
            cur.next()
        if not methods:
            raise IdlSyntaxError(f"interface {name!r} declares no methods")
        interfaces[name] = InterfaceSpec(name=name, methods=methods)
    return interfaces
