"""Servant skeletons and servant validation.

The server-side complement of :mod:`repro.idl.stubs`:

* :func:`validate_servant` — check that an object actually implements an
  interface spec (methods present, callable, arity-compatible); used by
  ``Context.export`` to fail fast instead of at first dispatch.
* :func:`make_servant_base` — generate an ABC from a spec (for example a
  spec parsed from textual IDL) whose subclasses *must* implement every
  declared method; the generated base also carries the spec so
  ``interface_of`` works on it, closing the loop:

      specs = parse_idl(text)
      Base = make_servant_base(specs["Weather"])
      class MyWeather(Base): ...
      context.export(MyWeather())
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, Type

from repro.exceptions import IdlError
from repro.idl.interface import _SPEC_ATTR
from repro.idl.types import InterfaceSpec, MethodSpec

__all__ = ["validate_servant", "make_servant_base"]

_SKELETON_CACHE: Dict[tuple, type] = {}


def _arity_compatible(fn, spec: MethodSpec) -> bool:
    """Can ``fn`` accept ``spec.arity`` positional arguments?"""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return True  # builtins etc.: give the benefit of the doubt
    required = 0
    maximum = 0
    for p in sig.parameters.values():
        if p.kind in (inspect.Parameter.POSITIONAL_ONLY,
                      inspect.Parameter.POSITIONAL_OR_KEYWORD):
            maximum += 1
            if p.default is inspect.Parameter.empty:
                required += 1
        elif p.kind is inspect.Parameter.VAR_POSITIONAL:
            maximum = float("inf")
    return required <= spec.arity <= maximum


def validate_servant(obj, spec: InterfaceSpec) -> None:
    """Raise :class:`IdlError` unless ``obj`` implements ``spec``."""
    problems = []
    for name, method_spec in spec.methods.items():
        member = getattr(obj, name, None)
        if member is None:
            problems.append(f"missing method {name!r}")
        elif not callable(member):
            problems.append(f"{name!r} is not callable")
        elif not _arity_compatible(member, method_spec):
            problems.append(
                f"{name!r} cannot accept {method_spec.arity} argument(s)")
    if problems:
        raise IdlError(
            f"{type(obj).__name__} does not implement interface "
            f"{spec.name!r}: " + "; ".join(problems))


def _make_abstract(spec: MethodSpec):
    params = ", ".join(p.name for p in spec.params)

    def placeholder(self, *args):  # pragma: no cover - always overridden
        raise NotImplementedError(spec.name)

    placeholder.__name__ = spec.name
    placeholder.__doc__ = (spec.doc or
                           f"({params}) -> {spec.returns}"
                           + (" [oneway]" if spec.oneway else ""))
    return abc.abstractmethod(placeholder)


def make_servant_base(spec: InterfaceSpec) -> Type:
    """Generate (and cache) an abstract servant base class for ``spec``."""
    key = (spec.name, spec.version, spec.method_names())
    cached = _SKELETON_CACHE.get(key)
    if cached is not None:
        return cached
    namespace = {name: _make_abstract(ms)
                 for name, ms in spec.methods.items()}
    namespace["__doc__"] = (
        f"Abstract servant base for interface {spec.name!r}; subclasses "
        f"must implement: {', '.join(spec.method_names())}.")
    namespace[_SPEC_ATTR] = spec
    cls = abc.ABCMeta(f"{spec.name}Servant", (), namespace)
    _SKELETON_CACHE[key] = cls
    return cls
