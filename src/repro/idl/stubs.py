"""Dynamic client stub generation.

``make_stub_class(spec)`` builds a Python class whose methods forward to
the owning global pointer's ``_invoke``.  The GP's ``narrow()`` wraps
itself in a stub so application code reads like local calls::

    weather = gp.narrow()          # stub over the OR's interface
    m = weather.get_map("midwest", 4)

Arity is checked client-side against the spec (a misuse fails fast
without a round trip); oneway methods forward with ``oneway=True``.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from repro.exceptions import InterfaceError
from repro.idl.types import InterfaceSpec, MethodSpec

__all__ = ["make_stub_class", "StubBase"]

_STUB_CACHE: Dict[tuple, type] = {}


class StubBase:
    """Common base for generated stubs; holds the invoker."""

    __hpc_stub__ = True

    def __init__(self, invoker, spec: InterfaceSpec):
        # invoker: callable(method_name, args_tuple, oneway) -> result
        self._invoker = invoker
        self._spec = spec

    @property
    def interface(self) -> InterfaceSpec:
        return self._spec

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<stub {self._spec.name} methods={self._spec.method_names()}>"


def _make_method(spec: MethodSpec):
    def method(self, *args):
        if len(args) != spec.arity:
            raise InterfaceError(
                f"{spec.name}() takes {spec.arity} argument(s), "
                f"got {len(args)}")
        return self._invoker(spec.name, args, spec.oneway)

    method.__name__ = spec.name
    method.__qualname__ = spec.name
    method.__doc__ = spec.doc or (
        f"Remote method {spec.name}"
        f"({', '.join(p.name for p in spec.params)}) -> {spec.returns}")
    return method


def make_stub_class(spec: InterfaceSpec) -> Type[StubBase]:
    """Build (and cache) a stub class for ``spec``."""
    key = (spec.name, spec.version, spec.method_names(),
           tuple((m, spec.methods[m].arity, spec.methods[m].oneway)
                 for m in spec.method_names()))
    cached = _STUB_CACHE.get(key)
    if cached is not None:
        return cached
    namespace: Dict[str, Any] = {
        m: _make_method(ms) for m, ms in spec.methods.items()
    }
    namespace["__doc__"] = f"Generated stub for interface {spec.name!r}."
    cls = type(f"{spec.name}Stub", (StubBase,), namespace)
    _STUB_CACHE[key] = cls
    return cls
