"""Run-time argument checking against declared IDL types.

The tiny IDL declares parameter types (``int``, ``string``, ``array``,
...).  The ORB enforces them at dispatch: a request whose arguments do
not fit the declared signature is rejected *before* the servant runs,
with a precise :class:`~repro.exceptions.InterfaceError` — the
wire-contract behaviour a CORBA-lineage ORB owes its users.

Checking philosophy: strict on scalars, liberal on aggregates.

* ``any`` accepts anything (the default for unannotated parameters);
* ``int``/``float``/``bool``/``string``/``bytes`` must match exactly
  (with the universal numeric courtesy of ``int`` being acceptable where
  ``float`` is declared);
* ``array`` accepts numpy arrays *or* sequences; ``list`` accepts any
  sequence; ``dict`` accepts mappings; ``objref`` accepts object
  references — aggregate shapes are the application's business.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import InterfaceError
from repro.idl.types import MethodSpec

__all__ = ["check_args", "value_fits"]


def value_fits(value, wire_type: str) -> bool:
    """Does ``value`` satisfy the declared wire type?"""
    if wire_type == "any":
        return True
    if wire_type == "void":
        return value is None
    if wire_type == "bool":
        return isinstance(value, (bool, np.bool_))
    if wire_type == "int":
        return isinstance(value, (int, np.integer)) \
            and not isinstance(value, bool)
    if wire_type == "float":
        # ints are acceptable floats, as in every IDL since CORBA.
        return (isinstance(value, (float, np.floating))
                or (isinstance(value, (int, np.integer))
                    and not isinstance(value, bool)))
    if wire_type == "string":
        return isinstance(value, str)
    if wire_type == "bytes":
        return isinstance(value, (bytes, bytearray, memoryview))
    if wire_type == "array":
        return isinstance(value, (np.ndarray, list, tuple))
    if wire_type == "list":
        return isinstance(value, (list, tuple))
    if wire_type == "dict":
        return isinstance(value, dict)
    if wire_type == "objref":
        from repro.core.objref import ObjectReference

        return isinstance(value, ObjectReference)
    # Unknown declared type: be permissive (forward compatibility).
    return True


def check_args(spec: MethodSpec, args: Tuple) -> None:
    """Raise :class:`InterfaceError` unless ``args`` fits ``spec``."""
    if len(args) != spec.arity:
        raise InterfaceError(
            f"{spec.name}() takes {spec.arity} argument(s), "
            f"got {len(args)}")
    for param, value in zip(spec.params, args):
        if not value_fits(value, param.type):
            raise InterfaceError(
                f"{spec.name}() argument {param.name!r} must be "
                f"{param.type}, got {type(value).__name__}")
