"""Interface/method/parameter value objects.

These are deliberately plain data: an :class:`InterfaceSpec` can be
converted to and from a marshallable dict (``to_wire``/``from_wire``) so
that object references can carry the interface they serve, letting a
client discover a server's methods without out-of-band knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import IdlError, MethodNotExposedError

__all__ = ["ParamSpec", "MethodSpec", "InterfaceSpec", "WIRE_TYPES"]

#: Recognized (informational) wire type names for the textual IDL.
WIRE_TYPES = frozenset({
    "any", "void", "bool", "int", "float", "string", "bytes",
    "array", "list", "dict", "objref",
})


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter."""

    name: str
    type: str = "any"

    def __post_init__(self):
        if not self.name.isidentifier():
            raise IdlError(f"invalid parameter name {self.name!r}")
        if self.type not in WIRE_TYPES:
            raise IdlError(f"unknown parameter type {self.type!r}")


@dataclass(frozen=True)
class MethodSpec:
    """One remote method signature."""

    name: str
    params: Tuple[ParamSpec, ...] = ()
    returns: str = "any"
    oneway: bool = False
    doc: str = ""
    #: Declared idempotent: the retry layer may re-issue this method even
    #: when a failed attempt might have reached the servant.
    retry_safe: bool = False

    def __post_init__(self):
        if not self.name.isidentifier():
            raise IdlError(f"invalid method name {self.name!r}")
        if self.returns not in WIRE_TYPES:
            raise IdlError(f"unknown return type {self.returns!r}")
        if self.oneway and self.returns not in ("void", "any"):
            raise IdlError("oneway methods cannot declare a return value")
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise IdlError(f"duplicate parameter names in {self.name!r}")

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass(frozen=True)
class InterfaceSpec:
    """A named set of remote methods."""

    name: str
    methods: Dict[str, MethodSpec] = field(default_factory=dict)
    version: str = "1.0"

    def __post_init__(self):
        if not self.name.isidentifier():
            raise IdlError(f"invalid interface name {self.name!r}")
        for key, spec in self.methods.items():
            if key != spec.name:
                raise IdlError(
                    f"method table key {key!r} != spec name {spec.name!r}")

    def method(self, name: str) -> MethodSpec:
        try:
            return self.methods[name]
        except KeyError:
            raise MethodNotExposedError(
                f"interface {self.name!r} has no method {name!r}") from None

    def method_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.methods))

    def subset(self, allowed, name: Optional[str] = None) -> "InterfaceSpec":
        """A new interface exposing only the listed methods."""
        allowed = set(allowed)
        missing = allowed - set(self.methods)
        if missing:
            raise IdlError(
                f"cannot subset {self.name!r}: unknown {sorted(missing)}")
        return InterfaceSpec(
            name=name or f"{self.name}View",
            methods={m: s for m, s in self.methods.items() if m in allowed},
            version=self.version,
        )

    # -- wire form -----------------------------------------------------------

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "version": self.version,
            "methods": [
                {
                    "name": m.name,
                    "params": [(p.name, p.type) for p in m.params],
                    "returns": m.returns,
                    "oneway": m.oneway,
                    "retry_safe": m.retry_safe,
                }
                for m in self.methods.values()
            ],
        }

    @classmethod
    def from_wire(cls, data: dict) -> "InterfaceSpec":
        methods = {}
        for m in data["methods"]:
            spec = MethodSpec(
                name=m["name"],
                params=tuple(ParamSpec(n, t) for n, t in m["params"]),
                returns=m["returns"],
                oneway=bool(m["oneway"]),
                retry_safe=bool(m.get("retry_safe", False)),
            )
            methods[spec.name] = spec
        return cls(name=data["name"], methods=methods,
                   version=data.get("version", "1.0"))
