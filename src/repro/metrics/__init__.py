"""Metrics: aggregation over the observability hook bus.

The hook bus (:mod:`repro.core.instrumentation`) is the ORB's raw event
feed; this package is the measurement layer on top of it:

* :mod:`repro.metrics.core` — instruments (counters, gauges,
  nearest-rank histograms, time-bucketed series on a ``TimeSource``)
  and the :class:`MetricsRegistry` that snapshots them as plain dicts;
* :mod:`repro.metrics.recorder` — :class:`MetricsRecorder`, which
  subscribes to hook buses and aggregates every published event;
* :mod:`repro.metrics.curves` — :class:`DegradationCurve` and the
  :func:`assert_degradation` envelope check used by chaos tests;
* :mod:`repro.metrics.codec` — the strict kind-tagged wire codec that
  ships registry snapshots across the proc-cluster control channel.

Everything here is deterministic under simulation: same seed, same
event sequence, bit-for-bit identical snapshot.  The event → metric
contract is documented in docs/EVENTS.md.
"""

from repro.metrics.codec import decode_snapshot, encode_snapshot
from repro.metrics.core import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    nearest_rank,
)
from repro.metrics.curves import (
    CurveBucket,
    DegradationCurve,
    DegradationEnvelopeError,
    assert_degradation,
)
from repro.metrics.recorder import RECORDED_EVENTS, MetricsRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "MetricsRecorder",
    "RECORDED_EVENTS",
    "CurveBucket",
    "DegradationCurve",
    "DegradationEnvelopeError",
    "assert_degradation",
    "decode_snapshot",
    "encode_snapshot",
    "nearest_rank",
]
