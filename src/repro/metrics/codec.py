"""Wire codec for :class:`~repro.metrics.core.MetricsRegistry` snapshots.

A registry snapshot is already a plain dict of counters/gauges/
histograms/series — ``==``-comparable and free of live objects — which
makes it the natural unit of *remote* observability: a node process
serializes its snapshot once and ships it over the cluster control
channel, and the parent merges many of them into one report.

The record is kind-tagged and strict, mirroring the batch records in
:mod:`repro.serialization.marshal`: a truncated buffer, trailing
garbage, or a foreign kind tag raises :class:`MarshalError` instead of
being misread.  Snapshots must survive the trip *exactly* (the proc
chaos tests compare them with ``==``), so the payload rides the
self-describing value marshaller, which round-trips ``None``, floats,
and arbitrarily nested dicts/lists bit-for-bit.
"""

from __future__ import annotations

from repro.exceptions import MarshalError
from repro.serialization.marshal import Marshaller
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["encode_snapshot", "decode_snapshot", "SNAPSHOT_KIND"]

#: Kind tag guarding against handler cross-wiring (cf. the batch
#: records' 0xB0A0/0xB0A1).
SNAPSHOT_KIND = 0x5A90

_MARSHAL = Marshaller(XdrEncoder, XdrDecoder)

#: The four instrument sections every registry snapshot carries.
_SECTIONS = ("counters", "gauges", "histograms", "series")


def encode_snapshot(snapshot: dict) -> bytes:
    """Encode one registry snapshot as a kind-tagged wire record."""
    if not isinstance(snapshot, dict):
        raise MarshalError(
            f"snapshot must be a dict, not {type(snapshot).__name__}")
    for section in _SECTIONS:
        if section not in snapshot:
            raise MarshalError(
                f"snapshot is missing the {section!r} section")
        if not isinstance(snapshot[section], dict):
            raise MarshalError(
                f"snapshot section {section!r} must be a dict")
    enc = XdrEncoder()
    enc.pack_uint(SNAPSHOT_KIND)
    _MARSHAL.encode_value(enc, snapshot)
    return enc.getvalue()


def decode_snapshot(data) -> dict:
    """Decode :func:`encode_snapshot` bytes; strict.

    Rejects foreign kind tags, truncation, trailing garbage, and
    payloads that are not shaped like a registry snapshot.
    """
    dec = XdrDecoder(data)
    try:
        kind = dec.unpack_uint()
        if kind != SNAPSHOT_KIND:
            raise MarshalError(
                f"not a metrics snapshot record (kind 0x{kind:x}, "
                f"expected 0x{SNAPSHOT_KIND:x})")
        value = _MARSHAL.decode_value(dec)
    except MarshalError:
        raise
    except Exception as exc:  # noqa: BLE001 - underflow/struct errors
        raise MarshalError(f"truncated metrics snapshot: {exc}") from exc
    if not dec.done():
        raise MarshalError("metrics snapshot record has trailing bytes")
    if not isinstance(value, dict):
        raise MarshalError("metrics snapshot payload is not a dict")
    for section in _SECTIONS:
        if section not in value or not isinstance(value[section], dict):
            raise MarshalError(
                f"metrics snapshot payload lacks the {section!r} section")
    return value
