"""Metric instruments: counters, gauges, histograms, bucketed series.

Four instrument shapes cover everything the hook bus can tell us:

* :class:`Counter` — a monotonically increasing total (requests served,
  retries paid, faults injected);
* :class:`Gauge` — a value that goes both ways (breakers currently
  open);
* :class:`Histogram` — a value distribution answered with nearest-rank
  quantiles (request latency), the same quantile definition the hedging
  :class:`~repro.core.instrumentation.LatencyTracker` uses;
* :class:`TimeSeries` — per-time-bucket sub-histograms keyed on a
  :class:`~repro.util.timing.TimeSource`, the substrate degradation
  curves are built from.

A :class:`MetricsRegistry` names and owns instruments and exports one
**plain-dict snapshot** of everything — no live objects, so a snapshot
can be compared with ``==``, serialized, or diffed across runs.

Determinism: instruments never read a clock themselves except through
the registry's :class:`~repro.util.timing.TimeSource`, and they contain
no randomness.  Under a :class:`~repro.simnet.clock.VirtualClock` the
same event sequence therefore produces a bit-for-bit identical
snapshot, which is what lets chaos tests assert whole degradation
curves by equality.

All instruments are thread-safe (hook handlers fire from
``invoke_async`` worker threads under the wall-clock ORB).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

from repro.util.timing import TimeSource, time_source

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries",
           "MetricsRegistry", "nearest_rank"]


def nearest_rank(sorted_values: List[float], q: float) -> float:
    """Nearest-rank ``q``-quantile (``q`` in [0, 1]) of sorted values."""
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    index = min(int(q * len(sorted_values)), len(sorted_values) - 1)
    return float(sorted_values[index])


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value:g})"


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value:g})"


class _Distribution:
    """Shared accumulation for histograms and series buckets."""

    __slots__ = ("count", "total", "min", "max", "_values")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._values.append(value)

    def quantile(self, q: float) -> Optional[float]:
        if not self._values:
            return None
        return nearest_rank(sorted(self._values), q)

    def snapshot(self, quantiles=(0.5, 0.99)) -> dict:
        if self.count == 0:
            out = {"count": 0, "sum": 0.0, "mean": None,
                   "min": None, "max": None}
            out.update({_qkey(q): None for q in quantiles})
            return out
        ordered = sorted(self._values)
        out = {"count": self.count, "sum": self.total,
               "mean": self.total / self.count,
               "min": self.min, "max": self.max}
        out.update({_qkey(q): nearest_rank(ordered, q)
                    for q in quantiles})
        return out


def _qkey(q: float) -> str:
    """0.5 -> "p50", 0.99 -> "p99", 0.999 -> "p99.9"."""
    pct = q * 100.0
    if pct == int(pct):
        return f"p{int(pct)}"
    return f"p{pct:g}"


class Histogram:
    """A value distribution with nearest-rank quantiles.

    Keeps every observation (chaos runs are bounded; a long-lived
    deployment would cap this — see ``max_samples``).  When the cap is
    hit the *oldest* half is discarded, keeping tails recent.
    """

    __slots__ = ("name", "quantiles", "max_samples", "_dist", "_lock")

    def __init__(self, name: str, quantiles=(0.5, 0.99),
                 max_samples: int = 100_000):
        self.name = name
        self.quantiles = tuple(quantiles)
        self.max_samples = max_samples
        self._dist = _Distribution()
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._dist.observe(value)
            if len(self._dist._values) > self.max_samples:
                del self._dist._values[: self.max_samples // 2]

    @property
    def count(self) -> int:
        return self._dist.count

    def quantile(self, q: float) -> Optional[float]:
        with self._lock:
            return self._dist.quantile(q)

    def snapshot(self) -> dict:
        with self._lock:
            return self._dist.snapshot(self.quantiles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self._dist.count})"


class TimeSeries:
    """Per-time-bucket distributions on a :class:`TimeSource`.

    Every observation lands in bucket ``int(clock.now() //
    bucket_seconds)``; each bucket is a tiny histogram.  The snapshot
    is a list of per-bucket dicts ordered by bucket index — exactly the
    shape a degradation curve wants.
    """

    __slots__ = ("name", "clock", "bucket_seconds", "quantiles",
                 "_buckets", "_lock")

    def __init__(self, name: str, clock: TimeSource,
                 bucket_seconds: float = 1.0, quantiles=(0.5, 0.99)):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.name = name
        self.clock = clock
        self.bucket_seconds = bucket_seconds
        self.quantiles = tuple(quantiles)
        self._buckets: Dict[int, _Distribution] = {}
        self._lock = threading.Lock()

    def bucket_index(self, at: Optional[float] = None) -> int:
        at = self.clock.now() if at is None else at
        return int(at // self.bucket_seconds)

    def observe(self, value: float = 1.0,
                at: Optional[float] = None) -> None:
        index = self.bucket_index(at)
        with self._lock:
            dist = self._buckets.get(index)
            if dist is None:
                dist = _Distribution()
                self._buckets[index] = dist
            dist.observe(value)

    def bucket(self, index: int) -> Optional[dict]:
        with self._lock:
            dist = self._buckets.get(index)
            return None if dist is None else dist.snapshot(self.quantiles)

    def snapshot(self) -> List[dict]:
        with self._lock:
            indexes = sorted(self._buckets)
            out = []
            for index in indexes:
                entry = {"bucket": index,
                         "start": index * self.bucket_seconds}
                entry.update(self._buckets[index].snapshot(self.quantiles))
                out.append(entry)
            return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TimeSeries({self.name}, buckets={len(self._buckets)}, "
                f"dt={self.bucket_seconds})")


class MetricsRegistry:
    """Named instruments + one plain-dict snapshot of everything.

    ``clock`` defaults to a shared monotonic wall clock; pass the
    owning context's clock (``ctx.clock``) — or any object that *has* a
    clock, via :func:`~repro.util.timing.time_source` — so series stay
    deterministic under simulation.
    """

    def __init__(self, clock: Optional[TimeSource] = None,
                 bucket_seconds: float = 1.0, quantiles=(0.5, 0.99)):
        self.clock = clock if clock is not None else time_source(None)
        self.bucket_seconds = bucket_seconds
        self.quantiles = tuple(quantiles)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._lock = threading.Lock()

    # -- create-or-get ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(
                    name, quantiles=self.quantiles)
            return inst

    def series(self, name: str) -> TimeSeries:
        with self._lock:
            inst = self._series.get(name)
            if inst is None:
                inst = self._series[name] = TimeSeries(
                    name, self.clock, self.bucket_seconds,
                    quantiles=self.quantiles)
            return inst

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything, as plain dicts/lists/numbers (``==``-comparable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            series = dict(self._series)
        return {
            "counters": {n: c.snapshot() for n, c in sorted(counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(histograms.items())},
            "series": {n: s.snapshot() for n, s in sorted(series.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (names are re-created on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._series.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, "
                f"series={len(self._series)})")
