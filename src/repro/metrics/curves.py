"""Degradation curves and the envelope assertion API.

A :class:`DegradationCurve` is the per-time-bucket health of a workload
run: goodput (successful requests per second), error rate, latency
percentiles, and the retry/hedge volume the resilience layer paid to
keep goodput up.  It is built from a
:class:`~repro.metrics.recorder.MetricsRecorder`'s time series over a
known run window, with empty buckets filled in explicitly — a total
outage shows up as a zero-goodput bucket, not a gap.

:func:`assert_degradation` is the envelope check chaos tests gate on:
*the dip may be at most this deep, and goodput must be back within that
many seconds of the trough*.  Violations raise
:class:`DegradationEnvelopeError` (an ``AssertionError``, so plain
pytest reporting applies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CurveBucket", "DegradationCurve", "DegradationEnvelopeError",
           "assert_degradation"]


class DegradationEnvelopeError(AssertionError):
    """A degradation curve left its allowed envelope."""


@dataclass(frozen=True)
class CurveBucket:
    """One time bucket of a degradation curve."""

    index: int
    start: float
    duration: float
    requests: int            # completed invocations (ok + error)
    ok: int
    errors: int
    goodput: float           # successful requests / second
    error_rate: float        # errors / completed (0.0 when idle)
    p50: Optional[float]     # latency quantiles of successful requests
    p99: Optional[float]
    retries: int
    hedges: int
    faults: int              # injected faults landing in this bucket

    def to_dict(self) -> dict:
        return {
            "index": self.index, "start": self.start,
            "duration": self.duration, "requests": self.requests,
            "ok": self.ok, "errors": self.errors,
            "goodput": self.goodput, "error_rate": self.error_rate,
            "p50": self.p50, "p99": self.p99, "retries": self.retries,
            "hedges": self.hedges, "faults": self.faults,
        }


@dataclass
class DegradationCurve:
    """Bucketed health of one run, gap-free over the run window."""

    bucket_seconds: float
    buckets: List[CurveBucket] = field(default_factory=list)

    @classmethod
    def from_recorder(cls, recorder, *, t_start: float,
                      t_end: float) -> "DegradationCurve":
        """Build the curve for the window ``[t_start, t_end]`` from a
        recorder's ``requests``/``errors``/``latency``/``retries``/
        ``hedges``/``faults`` series."""
        reg = recorder.registry
        dt = reg.bucket_seconds
        series = {name: {b["bucket"]: b
                         for b in reg.series(name).snapshot()}
                  for name in ("requests", "errors", "latency",
                               "retries", "hedges", "faults")}
        first = int(t_start // dt)
        last = max(first, int(t_end // dt))
        buckets = []
        for index in range(first, last + 1):
            ok = series["requests"].get(index, {}).get("count", 0)
            errors = series["errors"].get(index, {}).get("count", 0)
            latency = series["latency"].get(index, {})
            completed = ok + errors
            # Edge buckets are only partially covered by the run window;
            # goodput is normalized by covered time so a run ending
            # mid-bucket does not fake a throughput collapse.
            covered = (min((index + 1) * dt, t_end)
                       - max(index * dt, t_start))
            if covered <= 0 and completed == 0 and index > first:
                continue
            covered = max(covered, dt * 1e-9)
            buckets.append(CurveBucket(
                index=index,
                start=index * dt,
                duration=covered,
                requests=completed,
                ok=ok,
                errors=errors,
                goodput=ok / covered,
                error_rate=(errors / completed) if completed else 0.0,
                p50=latency.get("p50"),
                p99=latency.get("p99"),
                retries=series["retries"].get(index, {}).get("count", 0),
                hedges=series["hedges"].get(index, {}).get("count", 0),
                faults=series["faults"].get(index, {}).get("count", 0),
            ))
        return cls(bucket_seconds=dt, buckets=buckets)

    # -- views ------------------------------------------------------------

    def goodputs(self) -> List[float]:
        return [b.goodput for b in self.buckets]

    def error_rates(self) -> List[float]:
        return [b.error_rate for b in self.buckets]

    def to_dicts(self) -> List[dict]:
        """Plain-dict buckets (``==``-comparable across runs)."""
        return [b.to_dict() for b in self.buckets]

    def __len__(self) -> int:
        return len(self.buckets)

    def format_table(self) -> str:
        """Human-readable bucket table (used by the chaos benchmark)."""
        lines = [f"{'t':>6}  {'good/s':>7}  {'err%':>5}  {'p50 ms':>7}  "
                 f"{'p99 ms':>7}  {'retry':>5}  {'hedge':>5}  {'fault':>5}"]
        for b in self.buckets:
            p50 = "-" if b.p50 is None else f"{b.p50 * 1e3:.2f}"
            p99 = "-" if b.p99 is None else f"{b.p99 * 1e3:.2f}"
            lines.append(
                f"{b.start:>6.1f}  {b.goodput:>7.1f}  "
                f"{b.error_rate * 100:>5.1f}  {p50:>7}  {p99:>7}  "
                f"{b.retries:>5}  {b.hedges:>5}  {b.faults:>5}")
        return "\n".join(lines)


def assert_degradation(curve: DegradationCurve, *,
                       max_dip: Optional[float] = None,
                       recover_within: Optional[float] = None,
                       recovered_fraction: float = 0.8,
                       baseline_buckets: int = 1) -> dict:
    """Assert ``curve`` stays inside a degradation envelope.

    ``baseline_buckets``
        goodput baseline = mean of the first N buckets (run the first
        phase of a chaos plan fault-free so the baseline is honest);
    ``max_dip``
        deepest allowed relative dip: the worst bucket's goodput must
        stay >= ``baseline * (1 - max_dip)``;
    ``recover_within``
        seconds after the trough bucket's start by which some bucket
        must climb back to ``recovered_fraction * baseline``.

    Returns a summary dict (baseline, trough, dip, recovery time) for
    reporting; raises :class:`DegradationEnvelopeError` on violation.
    """
    if not curve.buckets:
        raise DegradationEnvelopeError("empty degradation curve")
    if not 1 <= baseline_buckets <= len(curve.buckets):
        raise ValueError("baseline_buckets out of range")
    head = curve.buckets[:baseline_buckets]
    baseline = sum(b.goodput for b in head) / len(head)
    if baseline <= 0:
        raise DegradationEnvelopeError(
            "baseline goodput is zero — nothing to degrade from "
            f"(first {baseline_buckets} bucket(s))")
    trough = min(curve.buckets, key=lambda b: b.goodput)
    dip = 1.0 - trough.goodput / baseline
    if max_dip is not None and dip > max_dip:
        raise DegradationEnvelopeError(
            f"goodput dipped {dip:.1%} below baseline at t={trough.start}"
            f" (allowed {max_dip:.1%}): {trough.goodput:.2f}/s vs "
            f"baseline {baseline:.2f}/s")
    recovery_at: Optional[float] = None
    threshold = recovered_fraction * baseline
    for bucket in curve.buckets:
        if bucket.start >= trough.start and bucket.goodput >= threshold:
            recovery_at = bucket.start
            break
    if recover_within is not None:
        deadline = trough.start + recover_within
        if recovery_at is None or recovery_at > deadline:
            where = "never" if recovery_at is None else \
                f"at t={recovery_at}"
            raise DegradationEnvelopeError(
                f"goodput did not recover to {recovered_fraction:.0%} of "
                f"baseline ({threshold:.2f}/s) within {recover_within}s "
                f"of the trough at t={trough.start} (recovered {where})")
    return {"baseline": baseline, "trough_start": trough.start,
            "trough_goodput": trough.goodput, "dip": dip,
            "recovered_at": recovery_at}
