"""MetricsRecorder: aggregate the hook bus into a metrics registry.

The hook bus (:mod:`repro.core.instrumentation`) publishes raw events;
this module turns them into counters, latency histograms, and
time-bucketed series — the observing half of Open Implementation with
aggregation, so a test or an operator can read "error rate in bucket
7" instead of replaying a callback trail.

The event → metric contract implemented here is **documented in
docs/EVENTS.md** and enforced by ``tests/docs/test_events_doc.py``;
change one, change both.

Attachment: a recorder can attach to any number of
:class:`~repro.core.instrumentation.HookBus`es (each GP has one, fault
plans have one, plus the global bus).  Attaching twice to the same bus
is a no-op, so fan-in over many GPs cannot double-count.  **Do not**
attach one recorder to both a GP's bus and ``GLOBAL_HOOKS`` — the GP
publishes every event to both, so that *would* double-count.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.core.instrumentation import HookBus, HookEvent
from repro.metrics.core import MetricsRegistry
from repro.util.timing import TimeSource

__all__ = ["MetricsRecorder", "RECORDED_EVENTS"]

#: Every hook-bus event the recorder aggregates (the full vocabulary
#: emitted anywhere in ``src/repro`` — see docs/EVENTS.md).
RECORDED_EVENTS = (
    "selection",
    "request",
    "moved",
    "migration",
    "retry",
    "failover",
    "breaker_open",
    "breaker_close",
    "budget_exhausted",
    "hedge",
    "hedge_win",
    "hedge_loss",
    "batch_flush",
    "batch_fallback",
    "fault_injected",
    "fault_phase",
    "admit",
    "shed",
    "limit_change",
    "proc_spawn",
    "proc_exit",
    "proc_pause",
    "leader_elected",
    "lease_expired",
    "quorum_write",
    "cache_invalidate",
    "directory_miss",
)


class MetricsRecorder:
    """Subscribe to hook buses; expose aggregated, snapshottable metrics.

    >>> from repro.core.instrumentation import HookBus
    >>> bus = HookBus()
    >>> rec = MetricsRecorder().attach(bus)
    >>> bus.emit("request", method="m", proto_id="nexus",
    ...          outcome="ok", duration=0.004)
    >>> rec.snapshot()["counters"]["requests_ok"]
    1.0
    """

    def __init__(self, *, clock: Optional[TimeSource] = None,
                 bucket_seconds: float = 1.0,
                 registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else \
            MetricsRegistry(clock=clock, bucket_seconds=bucket_seconds)
        self._attached: Dict[int, Tuple[HookBus, List[tuple]]] = {}
        self._lock = threading.Lock()

    # -- wiring -----------------------------------------------------------

    def attach(self, bus: HookBus) -> "MetricsRecorder":
        """Subscribe to every recorded event on ``bus`` (idempotent)."""
        with self._lock:
            if id(bus) in self._attached:
                return self
            handlers = []
            for kind in RECORDED_EVENTS:
                handler = self._handle        # one shared bound method
                bus.on(kind, handler)
                handlers.append((kind, handler))
            self._attached[id(bus)] = (bus, handlers)
        return self

    def detach(self, bus: Optional[HookBus] = None) -> None:
        """Unsubscribe from ``bus``, or from every attached bus."""
        with self._lock:
            if bus is not None:
                targets = [id(bus)] if id(bus) in self._attached else []
            else:
                targets = list(self._attached)
            for key in targets:
                attached_bus, handlers = self._attached.pop(key)
                for kind, handler in handlers:
                    attached_bus.off(kind, handler)

    @property
    def attached_buses(self) -> int:
        return len(self._attached)

    # -- aggregation ------------------------------------------------------

    def _handle(self, event: HookEvent) -> None:
        reg = self.registry
        kind = event.kind
        data = event.data
        if kind == "request":
            reg.counter("requests_total").inc()
            if data.get("outcome") == "ok":
                reg.counter("requests_ok").inc()
                duration = data.get("duration")
                if duration is not None:
                    reg.histogram("request_latency_seconds").observe(duration)
                    reg.series("latency").observe(duration)
                reg.series("requests").observe(1.0)
            else:
                reg.counter("requests_error").inc()
                reg.series("errors").observe(1.0)
        elif kind == "retry":
            reg.counter("retries_total").inc()
            reg.series("retries").observe(1.0)
        elif kind == "failover":
            reg.counter("failovers_total").inc()
        elif kind == "breaker_open":
            reg.counter("breaker_open_total").inc()
            reg.gauge("breakers_open").inc()
        elif kind == "breaker_close":
            reg.counter("breaker_close_total").inc()
            reg.gauge("breakers_open").dec()
        elif kind == "budget_exhausted":
            reg.counter("budget_exhausted_total").inc()
        elif kind == "hedge":
            reg.counter("hedges_total").inc()
            reg.series("hedges").observe(1.0)
        elif kind == "hedge_win":
            reg.counter("hedge_wins_total").inc()
        elif kind == "hedge_loss":
            reg.counter("hedge_losses_total").inc()
        elif kind == "batch_flush":
            reg.counter("batch_flushes_total").inc()
            size = data.get("size")
            if size:
                reg.counter("batched_calls_total").inc(size)
                reg.histogram("batch_size").observe(float(size))
            nbytes = data.get("nbytes")
            if nbytes is not None:
                reg.histogram("batch_bytes").observe(float(nbytes))
        elif kind == "batch_fallback":
            reg.counter("batch_fallbacks_total").inc()
        elif kind == "fault_injected":
            reg.counter("faults_injected_total").inc()
            fault = data.get("fault")
            if fault:
                reg.counter(f"faults_injected.{fault}").inc()
            reg.series("faults").observe(1.0)
        elif kind == "fault_phase":
            reg.counter("fault_phases_total").inc()
        elif kind == "admit":
            reg.counter("admits_total").inc()
            depth = data.get("depth")
            if depth is not None:
                reg.gauge("admission_queue_depth").set(float(depth))
        elif kind == "shed":
            reg.counter("sheds_total").inc()
            reason = data.get("reason")
            if reason:
                reg.counter(f"sheds.{reason}").inc()
            reg.series("sheds").observe(1.0)
            depth = data.get("depth")
            if depth is not None:
                reg.gauge("admission_queue_depth").set(float(depth))
        elif kind == "limit_change":
            reg.counter("limit_changes_total").inc()
            limit = data.get("limit")
            if limit is not None:
                reg.gauge("concurrency_limit").set(float(limit))
        elif kind == "proc_spawn":
            reg.counter("proc_spawns_total").inc()
            reg.gauge("procs_alive").inc()
        elif kind == "proc_exit":
            reg.counter("proc_exits_total").inc()
            reg.gauge("procs_alive").dec()
            how = data.get("how")
            if how:
                reg.counter(f"proc_exits.{how}").inc()
        elif kind == "proc_pause":
            reg.counter("proc_pauses_total").inc()
            action = data.get("action")
            if action:
                reg.counter(f"proc_pauses.{action}").inc()
        elif kind == "leader_elected":
            reg.counter("leader_elections_total").inc()
            term = data.get("term")
            if term is not None:
                reg.gauge("directory_term").set(float(term))
        elif kind == "lease_expired":
            reg.counter("lease_expirations_total").inc()
        elif kind == "quorum_write":
            reg.counter("quorum_writes_total").inc()
            op = data.get("op")
            if op:
                reg.counter(f"quorum_writes.{op}").inc()
        elif kind == "cache_invalidate":
            reg.counter("cache_invalidates_total").inc()
            reason = data.get("reason")
            if reason:
                reg.counter(f"cache_invalidates.{reason}").inc()
        elif kind == "directory_miss":
            reg.counter("directory_misses_total").inc()
        elif kind == "selection":
            reg.counter("selections_total").inc()
        elif kind == "moved":
            reg.counter("moved_total").inc()
        elif kind == "migration":
            reg.counter("migrations_total").inc()

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict snapshot of every aggregated metric."""
        return self.registry.snapshot()

    def counter_value(self, name: str) -> float:
        return self.registry.counter(name).value

    def series_snapshot(self, name: str) -> list:
        return self.registry.series(name).snapshot()

    def reset(self) -> None:
        """Clear aggregates; subscriptions stay attached."""
        self.registry.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"MetricsRecorder(buses={len(self._attached)}, "
                f"registry={self.registry!r})")
