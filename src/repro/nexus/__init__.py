"""Nexus-like communication layer: startpoints, endpoints, RSRs.

The paper builds its proto-objects over Nexus [Foster/Kesselman/Tuecke],
whose model is: a *startpoint* names a remote *endpoint*; issuing a
*remote service request* (RSR) on a startpoint runs a named handler on
the endpoint's context.  This package recreates that model over our
transports:

* :mod:`repro.nexus.rsr` — the RSR wire format (XDR header + opaque
  payload) and its request/reply/error framing.
* :mod:`repro.nexus.endpoint` — :class:`Endpoint` (handler table +
  service loops) and :class:`Startpoint` (synchronous ``call``).
* :mod:`repro.nexus.multimethod` — :class:`MultiMethodServer`: one
  endpoint attached to several transports simultaneously (Nexus's
  multi-method communication), publishing one address per transport.

Real transports are served by daemon threads; simulated transports are
served inline through the channel callbacks, keeping virtual time
deterministic.
"""

from repro.nexus.rsr import RsrFlags, RsrMessage
from repro.nexus.endpoint import Endpoint, Startpoint
from repro.nexus.multimethod import MultiMethodServer

__all__ = [
    "RsrFlags",
    "RsrMessage",
    "Endpoint",
    "Startpoint",
    "MultiMethodServer",
]
