"""Endpoints (servers) and startpoints (clients) for RSR traffic.

An :class:`Endpoint` owns a table of named handlers
(``name -> callable(payload: bytes) -> bytes``).  It can serve:

* **threaded** — ``serve_listener`` starts a daemon accept loop; each
  accepted channel gets a daemon service loop.  Used for the real
  transports (inproc/shm/tcp).
* **inline** — ``serve_sim_listener`` installs callbacks on a simulated
  listener so requests dispatch synchronously inside the sender's
  ``send`` call, keeping virtual time single-threaded.

A :class:`Startpoint` wraps one connected channel and provides
synchronous ``call``; each call writes one request and reads messages
until its own reply arrives (replies can only interleave when the
application multiplexes one startpoint across threads, which the lock
serializes anyway).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.exceptions import (
    ChannelClosedError,
    HpcError,
    RemoteException,
    RemoteInvocationError,
)
from repro.nexus.rsr import RsrMessage
from repro.serialization.marshal import dumps, loads
from repro.transport.base import Channel, Listener
from repro.util.ids import IdGenerator

__all__ = ["Endpoint", "Startpoint"]

Handler = Callable[[bytes], bytes]


class Endpoint:
    """Named-handler dispatch target."""

    def __init__(self, name: str = ""):
        self.name = name or "endpoint"
        self._handlers: Dict[str, Handler] = {}
        self._threads: list[threading.Thread] = []
        self._listeners: list[Listener] = []
        self._channels: list[Channel] = []
        self._stopping = False
        self._lock = threading.Lock()

    # -- handler table -------------------------------------------------------

    def register(self, handler_name: str, fn: Handler) -> None:
        if not handler_name:
            raise ValueError("handler name must be non-empty")
        with self._lock:
            self._handlers[handler_name] = fn

    def unregister(self, handler_name: str) -> None:
        with self._lock:
            self._handlers.pop(handler_name, None)

    def handlers(self) -> list[str]:
        with self._lock:
            return sorted(self._handlers)

    # -- dispatch ------------------------------------------------------------

    def handle_message(self, data: bytes, channel: Channel) -> None:
        """Decode one inbound message and act on it."""
        message = RsrMessage.decode(data)
        if not message.is_request():
            # A stray reply at an endpoint: drop (matches Nexus, which
            # treats unsolicited replies as protocol noise).
            return
        try:
            with self._lock:
                handler = self._handlers.get(message.handler)
            if handler is None:
                raise RemoteInvocationError(
                    f"endpoint {self.name!r} has no handler "
                    f"{message.handler!r}")
            result = handler(message.payload)
            if result is None:
                result = b""
        except Exception as exc:  # noqa: BLE001 - marshalled to the peer
            if not message.is_oneway():
                err = dumps((type(exc).__name__, str(exc)))
                self._send_reply(channel,
                                 RsrMessage.error(message.request_id, err))
            return
        if not message.is_oneway():
            self._send_reply(channel,
                             RsrMessage.reply(message.request_id, result))

    @staticmethod
    def _send_reply(channel: Channel, reply: RsrMessage) -> None:
        """Send a reply, annotating transport failures with the fact the
        request already ran — the client-side retry layer must not treat
        a lost *reply* as an undispatched request."""
        try:
            channel.send(reply.encode())
        except HpcError as exc:
            exc.request_dispatched = True
            raise

    # -- threaded service (real transports) -----------------------------------

    def serve_channel(self, channel: Channel) -> None:
        """Blocking per-channel service loop (run in a thread)."""
        with self._lock:
            self._channels.append(channel)
        try:
            while not self._stopping:
                try:
                    data = channel.recv(timeout=0.5)
                except ChannelClosedError:
                    break
                except HpcError:
                    continue  # timeout: poll the stop flag
                try:
                    self.handle_message(data, channel)
                except ChannelClosedError:
                    # The peer hung up between request and reply (a
                    # closed GP, an evicted hedge loser): an orderly
                    # disconnect, not a server error.
                    break
        finally:
            channel.close()

    def serve_listener(self, listener: Listener) -> None:
        """Start the daemon accept loop for a real-transport listener."""
        with self._lock:
            self._listeners.append(listener)

        def accept_loop():
            while not self._stopping:
                try:
                    channel = listener.accept(timeout=0.5)
                except ChannelClosedError:
                    break
                except HpcError:
                    continue
                worker = threading.Thread(
                    target=self.serve_channel, args=(channel,),
                    name=f"{self.name}-serve", daemon=True)
                worker.start()
                with self._lock:
                    self._threads.append(worker)

        acceptor = threading.Thread(target=accept_loop,
                                    name=f"{self.name}-accept", daemon=True)
        acceptor.start()
        with self._lock:
            self._threads.append(acceptor)

    # -- inline service (simulated transport) ---------------------------------

    def serve_sim_listener(self, listener) -> None:
        """Install inline dispatch on a simulated listener."""
        with self._lock:
            self._listeners.append(listener)

        def on_connect(channel):
            channel.on_message = self.handle_message

        listener.on_connect = on_connect
        # Adopt any connections that raced in before we were installed.
        while listener.pending:
            on_connect(listener.pending.popleft())

    # -- lifecycle -------------------------------------------------------------

    def stop(self) -> None:
        self._stopping = True
        with self._lock:
            listeners = list(self._listeners)
            channels = list(self._channels)
            threads = list(self._threads)
        for listener in listeners:
            listener.close()
        for channel in channels:
            channel.close()
        for thread in threads:
            thread.join(timeout=2.0)


class Startpoint:
    """Client handle: synchronous RSR calls over one channel."""

    _ids = IdGenerator("rsr", start=1)

    def __init__(self, channel: Channel, timeout: Optional[float] = 30.0):
        self.channel = channel
        self.timeout = timeout
        self._lock = threading.Lock()

    def call(self, handler: str, payload: bytes,
             oneway: bool = False) -> Optional[bytes]:
        """Issue one RSR; returns the reply payload (``None`` if oneway).

        Raises :class:`RemoteException` if the handler raised remotely.
        """
        request_id = self._ids.next_int()
        message = RsrMessage.request(request_id, handler, payload,
                                     oneway=oneway)
        with self._lock:
            self.channel.send(message.encode())
            if oneway:
                return None
            while True:
                try:
                    reply = RsrMessage.decode(
                        self.channel.recv(self.timeout))
                except HpcError as exc:
                    # The request left this host; whether it reached
                    # dispatch is unknown.  The retry layer uses this
                    # flag to refuse non-idempotent auto-retries.
                    if not getattr(exc, "request_dispatched", False):
                        exc.request_sent = True
                    raise
                if not reply.is_reply() or reply.request_id != request_id:
                    continue  # stale or foreign message: skip
                if reply.is_error():
                    remote_type, remote_msg = loads(reply.payload)
                    raise RemoteException(remote_type, remote_msg)
                return reply.payload

    def close(self) -> None:
        self.channel.close()
