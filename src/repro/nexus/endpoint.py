"""Endpoints (servers) and startpoints (clients) for RSR traffic.

An :class:`Endpoint` owns a table of named handlers
(``name -> callable(payload: bytes) -> bytes``).  It can serve:

* **threaded** — ``serve_listener`` starts a daemon accept loop; each
  accepted channel gets a daemon service loop.  Used for the real
  transports (inproc/shm/tcp).
* **inline** — ``serve_sim_listener`` installs callbacks on a simulated
  listener so requests dispatch synchronously inside the sender's
  ``send`` call, keeping virtual time single-threaded.

A :class:`Startpoint` wraps one connected channel and provides
synchronous ``call``; each call writes one request and reads messages
until its own reply arrives (replies can only interleave when the
application multiplexes one startpoint across threads, which the lock
serializes anyway).

A :class:`PipelinedStartpoint` lifts that lock-step restriction: a
dedicated demux thread routes replies to waiters by request id
(correlation), so any number of callers may have requests outstanding
on *one* connection at once — the channel is pipelined instead of
request/reply ping-pong.  Real transports use it by default; the
synchronous simulated world keeps the plain startpoint (one virtual
event at a time makes pipelining meaningless there).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.exceptions import (
    ChannelClosedError,
    HpcError,
    OverloadError,
    RemoteException,
    RemoteInvocationError,
    TransportError,
)
from repro.nexus.rsr import RsrMessage
from repro.serialization.marshal import (
    decode_overload_info,
    dumps,
    encode_overload_info,
    loads,
)
from repro.transport.base import Channel, Listener
from repro.util.ids import IdGenerator
from repro.util.timing import WallClock

__all__ = ["Endpoint", "Startpoint", "PipelinedStartpoint"]

Handler = Callable[[bytes], bytes]

_WALL = WallClock()

#: Sentinel: derive the dispatch deadline from the message itself (the
#: admission path passes the expiry computed at *arrival* instead, so
#: queueing time is not silently refunded to the budget).
_DERIVE = object()


def _raise_overload(reply: RsrMessage) -> None:
    """Raise the OverloadError carried by a pushback reply."""
    info = decode_overload_info(reply.payload)
    raise OverloadError(
        f"server shed request ({info['reason']}, queue depth "
        f"{info['depth']}); retry after {info['retry_after']:.3f}s",
        retry_after=info["retry_after"], reason=info["reason"])


class Endpoint:
    """Named-handler dispatch target."""

    #: Cap on concurrently dispatching two-way requests per endpoint.
    DISPATCH_WORKERS = 16

    def __init__(self, name: str = ""):
        self.name = name or "endpoint"
        self._handlers: Dict[str, Handler] = {}
        self._threads: list[threading.Thread] = []
        self._listeners: list[Listener] = []
        self._channels: list[Channel] = []
        self._stopping = False
        self._stopped = False
        self._stop_mutex = threading.Lock()
        self._ready = threading.Event()
        self._lock = threading.Lock()
        self._pool = None
        #: Admission controller (set by the owning context); None or an
        #: inactive controller means the legacy fixed-pool path.
        self.admission = None
        #: The owning context's TimeSource; wall clock until wired.
        self.clock = None
        self._admission_workers: list[threading.Thread] = []

    def _now(self) -> float:
        return (self.clock or _WALL).now()

    # -- handler table -------------------------------------------------------

    def register(self, handler_name: str, fn: Handler) -> None:
        if not handler_name:
            raise ValueError("handler name must be non-empty")
        with self._lock:
            self._handlers[handler_name] = fn

    def unregister(self, handler_name: str) -> None:
        with self._lock:
            self._handlers.pop(handler_name, None)

    def handlers(self) -> list[str]:
        with self._lock:
            return sorted(self._handlers)

    # -- dispatch ------------------------------------------------------------

    def handle_message(self, data: bytes, channel: Channel) -> None:
        """Decode one inbound message and act on it (inline)."""
        if self._stopping:
            # A stopped endpoint is a dead process to its callers:
            # sever the channel instead of serving, so a simulated
            # crash (inline dispatch) refuses exactly like a real
            # transport whose serve loops have exited.
            channel.close()
            return
        self._run_request(RsrMessage.decode(data), channel)

    def _run_request(self, message: RsrMessage, channel: Channel,
                     expires_at=_DERIVE) -> None:
        if not message.is_request():
            # A stray reply at an endpoint: drop (matches Nexus, which
            # treats unsolicited replies as protocol noise).
            return
        if expires_at is _DERIVE:
            expires_at = None if message.deadline is None \
                else self._now() + message.deadline
        if expires_at is not None and self._now() > expires_at:
            # The caller's budget is gone; a reply could only be late.
            if not message.is_oneway():
                self._send_reply(channel, RsrMessage.overload(
                    message.request_id,
                    encode_overload_info(0.0, "deadline")))
            return
        try:
            with self._lock:
                handler = self._handlers.get(message.handler)
            if handler is None:
                raise RemoteInvocationError(
                    f"endpoint {self.name!r} has no handler "
                    f"{message.handler!r}")
            from repro.admission.deadline import deadline_scope

            with deadline_scope(expires_at):
                result = handler(message.payload)
            if result is None:
                result = b""
        except Exception as exc:  # noqa: BLE001 - marshalled to the peer
            if not message.is_oneway():
                err = dumps((type(exc).__name__, str(exc)))
                self._send_reply(channel,
                                 RsrMessage.error(message.request_id, err))
            return
        if not message.is_oneway():
            self._send_reply(channel,
                             RsrMessage.reply(message.request_id, result))

    @staticmethod
    def _send_reply(channel: Channel, reply: RsrMessage) -> None:
        """Send a reply, annotating transport failures with the fact the
        request already ran — the client-side retry layer must not treat
        a lost *reply* as an undispatched request."""
        try:
            channel.send(reply.encode())
        except HpcError as exc:
            exc.request_dispatched = True
            raise

    # -- threaded service (real transports) -----------------------------------

    def _dispatch_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.DISPATCH_WORKERS,
                    thread_name_prefix=f"{self.name}-dispatch")
            return self._pool

    def _run_pooled(self, message: RsrMessage, channel: Channel,
                    expires_at=_DERIVE) -> None:
        try:
            self._run_request(message, channel, expires_at)
        except ChannelClosedError:
            # Peer hung up between request and reply: orderly, not an
            # error (the service loop notices the dead channel itself).
            pass

    # -- admission-controlled dispatch ----------------------------------------

    def _offer_admission(self, message: RsrMessage, channel: Channel,
                         admission) -> None:
        """Offer one two-way request to the admission controller; a
        shed answers the peer with an RSR OVERLOAD pushback reply."""

        def reject(retry_after: float, reason: str) -> None:
            payload = encode_overload_info(retry_after, reason,
                                           admission.queue.depth)
            try:
                self._send_reply(channel, RsrMessage.overload(
                    message.request_id, payload))
            except HpcError:
                pass  # peer already gone: nothing to push back to

        self._ensure_admission_workers(admission)
        admission.submit(
            (message, channel), priority=message.priority,
            deadline_remaining=message.deadline,
            cost=admission.classify(message.handler, message.payload),
            reject=reject)

    def _ensure_admission_workers(self, admission) -> None:
        with self._lock:
            if self._stopping:
                return
            while len(self._admission_workers) < admission.policy.max_workers:
                worker = threading.Thread(
                    target=self._admission_worker,
                    name=f"{self.name}-admit", daemon=True)
                self._admission_workers.append(worker)
                self._threads.append(worker)
                worker.start()

    def _admission_worker(self) -> None:
        """Draw admitted work while the limiter grants a slot; service
        latency (queueing excluded) feeds the adaptive limit back."""
        while not self._stopping:
            admission = self.admission
            if admission is None:
                return
            item = admission.pop(timeout=0.5)
            if item is None:
                continue
            message, channel = item.work
            started = self._now()
            try:
                self._run_pooled(message, channel,
                                 expires_at=item.expires_at)
            finally:
                admission.finish(item, self._now() - started)

    def serve_channel(self, channel: Channel) -> None:
        """Blocking per-channel service loop (run in a thread).

        Two-way requests dispatch on a bounded worker pool so a
        pipelined client really does get multiple requests *executing*
        concurrently on one connection; replies carry correlation ids,
        so completion order is free to differ from arrival order.
        Oneway requests stay inline: a client thread never waits on
        them, so arrival-order execution is the only ordering anyone
        can observe — and it is preserved.
        """
        with self._lock:
            self._channels.append(channel)
        inflight: list = []
        try:
            while not self._stopping:
                try:
                    data = channel.recv(timeout=0.5)
                except ChannelClosedError:
                    break
                except HpcError:
                    continue  # timeout: poll the stop flag
                try:
                    message = RsrMessage.decode(data)
                except HpcError:
                    continue  # undecodable: protocol noise, skip
                inflight = [(f, m) for f, m in inflight if not f.done()]
                try:
                    if message.is_request() and not message.is_oneway():
                        admission = self.admission
                        if admission is not None and admission.active:
                            self._offer_admission(message, channel,
                                                  admission)
                        else:
                            inflight.append((self._dispatch_pool().submit(
                                self._run_pooled, message, channel),
                                message))
                    else:
                        self._run_request(message, channel)
                except ChannelClosedError:
                    # The peer hung up between request and reply (a
                    # closed GP, an evicted hedge loser): an orderly
                    # disconnect, not a server error.
                    break
                except RuntimeError:
                    break  # pool shut down mid-stop
        finally:
            # Drain before closing: every request consumed off the
            # channel must get its reply out, even when the peer's
            # close sentinel raced ahead of the pooled handler — a
            # client that half-closed (eviction) may still be blocked
            # waiting for a reply the queue already delivered it.  A
            # future the stopping pool *cancelled* still owes its peer
            # an answer: fail it explicitly instead of leaving the
            # client to discover the drop by timeout.
            for future, message in inflight:
                if future.cancelled():
                    try:
                        err = dumps(("HpcError",
                                     "endpoint stopped before dispatching "
                                     "request"))
                        self._send_reply(channel, RsrMessage.error(
                            message.request_id, err))
                    except HpcError:
                        pass  # peer already gone
                    continue
                try:
                    future.result(timeout=5.0)
                except Exception:  # noqa: BLE001 - timeout/handler error
                    pass
            channel.close()

    def serve_listener(self, listener: Listener) -> None:
        """Start the daemon accept loop for a real-transport listener."""
        with self._lock:
            self._listeners.append(listener)

        def accept_loop():
            # Readiness means "the accept loop is live": the listener's
            # socket already has a bound address, but only now is someone
            # draining its backlog.  A worker process signals ready to
            # its parent off this event.
            self._ready.set()
            while not self._stopping:
                try:
                    channel = listener.accept(timeout=0.5)
                except ChannelClosedError:
                    break
                except HpcError:
                    continue
                worker = threading.Thread(
                    target=self.serve_channel, args=(channel,),
                    name=f"{self.name}-serve", daemon=True)
                worker.start()
                with self._lock:
                    self._threads.append(worker)

        acceptor = threading.Thread(target=accept_loop,
                                    name=f"{self.name}-accept", daemon=True)
        acceptor.start()
        with self._lock:
            self._threads.append(acceptor)

    # -- inline service (simulated transport) ---------------------------------

    def serve_sim_listener(self, listener) -> None:
        """Install inline dispatch on a simulated listener."""
        with self._lock:
            self._listeners.append(listener)

        def on_connect(channel):
            channel.on_message = self.handle_message

        listener.on_connect = on_connect
        # Adopt any connections that raced in before we were installed.
        while listener.pending:
            on_connect(listener.pending.popleft())
        self._ready.set()  # inline dispatch serves as soon as installed

    # -- lifecycle -------------------------------------------------------------

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until a serve loop is live (accept loop running, or
        inline sim dispatch installed).  Returns ``False`` on timeout.

        A parent that spawned this endpoint's process must not hand its
        address to clients before this — a bound-but-unserved listener
        accepts connections into the kernel backlog and then strands
        them, which reads as a gray failure rather than a clean refusal.
        """
        return self._ready.wait(timeout)

    @property
    def stopping(self) -> bool:
        return self._stopping

    def request_stop(self) -> None:
        """Flag the endpoint to stop without doing any teardown.

        This is the *only* stop entry safe inside a signal handler: it
        takes no locks and joins nothing — it flips one flag, which
        every serve/accept/admission loop polls at least twice a second.
        The handler (or the code it unwinds into) then calls
        :meth:`stop` from normal context to reap threads and close
        channels.
        """
        self._stopping = True

    def stop(self) -> None:
        """Stop serving.  Ordering matters: channels stay open until the
        serve threads have drained, so queued two-way requests that the
        stopping pool cancelled (or the admission controller shed) get
        an explicit error/pushback reply instead of silently vanishing —
        a pipelined peer must never hang until its own timeout.

        Idempotent and re-entrant: a second call (including one from a
        signal handler that interrupted the first mid-teardown on this
        very thread) returns immediately instead of double-closing or
        deadlocking, and stop-before-start simply pins the endpoint in
        the stopped state.
        """
        self._stopping = True
        if not self._stop_mutex.acquire(blocking=False):
            # Teardown already running — possibly in an outer frame of
            # this same thread (signal handler re-entry), where blocking
            # would self-deadlock.  The flag is set; that is enough.
            return
        try:
            if self._stopped:
                return
            with self._lock:
                listeners = list(self._listeners)
                threads = list(self._threads)
                pool, self._pool = self._pool, None
            for listener in listeners:
                listener.close()
            if self.admission is not None:
                self.admission.stop()
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            current = threading.current_thread()
            for thread in threads:
                if thread is current:
                    continue  # a serve thread stopping its own endpoint
                thread.join(timeout=2.0)
            with self._lock:
                channels = list(self._channels)
            for channel in channels:
                channel.close()
            self._stopped = True
        finally:
            self._stop_mutex.release()


class Startpoint:
    """Client handle: synchronous RSR calls over one channel."""

    _ids = IdGenerator("rsr", start=1)

    def __init__(self, channel: Channel, timeout: Optional[float] = 30.0):
        self.channel = channel
        self.timeout = timeout
        self._lock = threading.Lock()

    def call(self, handler: str, payload: bytes, oneway: bool = False,
             priority: int = 0,
             deadline: Optional[float] = None) -> Optional[bytes]:
        """Issue one RSR; returns the reply payload (``None`` if oneway).

        ``priority``/``deadline`` are the admission hints carried in the
        RSR META trailer (``deadline`` is *remaining* seconds).  Raises
        :class:`RemoteException` if the handler raised remotely, or
        :class:`OverloadError` if the server shed the request — an
        overload is a pushback, not a dispatch, so neither
        ``request_sent`` nor ``request_dispatched`` is set and the retry
        layer stays free to retry after the hinted pause.
        """
        request_id = self._ids.next_int()
        message = RsrMessage.request(request_id, handler, payload,
                                     oneway=oneway, priority=priority,
                                     deadline=deadline)
        with self._lock:
            self.channel.send(message.encode())
            if oneway:
                return None
            while True:
                try:
                    reply = RsrMessage.decode(
                        self.channel.recv(self.timeout))
                except HpcError as exc:
                    # The request left this host; whether it reached
                    # dispatch is unknown.  The retry layer uses this
                    # flag to refuse non-idempotent auto-retries.
                    if not getattr(exc, "request_dispatched", False):
                        exc.request_sent = True
                    raise
                if not reply.is_reply() or reply.request_id != request_id:
                    continue  # stale or foreign message: skip
                if reply.is_overload():
                    _raise_overload(reply)
                if reply.is_error():
                    remote_type, remote_msg = loads(reply.payload)
                    raise RemoteException(remote_type, remote_msg)
                return reply.payload

    def close(self) -> None:
        self.channel.close()


class _ReplyWaiter:
    """One outstanding request's rendezvous slot."""

    __slots__ = ("event", "reply", "error")

    def __init__(self):
        self.event = threading.Event()
        self.reply: Optional[RsrMessage] = None
        self.error: Optional[Exception] = None

    def resolve(self, reply: RsrMessage) -> None:
        self.reply = reply
        self.event.set()

    def fail(self, error: Exception) -> None:
        self.error = error
        self.event.set()


class PipelinedStartpoint(Startpoint):
    """Client handle with multiple outstanding requests per channel.

    ``call`` registers a waiter under its request id, sends, and blocks
    on the waiter; a dedicated demux thread reads the channel and routes
    each reply to its waiter by correlation id.  N threads therefore
    share *one* connection with N requests in flight instead of queueing
    behind a per-call channel lock — the transport-level half of the
    batching/pipelining hot path.

    Failure semantics match the plain startpoint: a reply that never
    arrives (timeout or channel death after the send) surfaces a
    transport error flagged ``request_sent``, so the GP's idempotence
    guard still refuses to blind-retry non-retry-safe methods.
    """

    #: Demux poll interval; bounds close() latency, not call latency.
    POLL_S = 0.2

    def __init__(self, channel: Channel, timeout: Optional[float] = 30.0):
        super().__init__(channel, timeout)
        self._pending: Dict[int, _ReplyWaiter] = {}
        self._state = threading.Lock()
        self._reader: Optional[threading.Thread] = None
        self._closed = False
        self._broken: Optional[Exception] = None

    # -- the demux thread ----------------------------------------------------

    def _ensure_reader(self) -> None:
        """Start the demux thread on first use (callers hold _state)."""
        if self._reader is None or not self._reader.is_alive():
            self._reader = threading.Thread(
                target=self._read_loop, name="rsr-demux", daemon=True)
            self._reader.start()

    def _read_loop(self) -> None:
        while True:
            with self._state:
                if self._closed:
                    return
            try:
                data = self.channel.recv(timeout=self.POLL_S)
            except ChannelClosedError as exc:
                self._fail_all(exc)
                return
            except HpcError as exc:
                if getattr(self.channel, "closed", False):
                    # e.g. a mid-frame timeout made the channel unusable.
                    self._fail_all(exc)
                    return
                continue  # idle poll tick
            try:
                reply = RsrMessage.decode(data)
            except HpcError:
                continue  # undecodable message: protocol noise, skip
            if not reply.is_reply():
                continue
            with self._state:
                waiter = self._pending.pop(reply.request_id, None)
            if waiter is not None:
                waiter.resolve(reply)
            # no waiter: a timed-out or cancelled request's late reply —
            # dropped, never cross-delivered to another request.

    def _fail_all(self, cause: Exception) -> None:
        with self._state:
            self._broken = cause
            victims = list(self._pending.values())
            self._pending.clear()
        for waiter in victims:
            error = ChannelClosedError(
                f"channel died with request in flight: {cause}")
            error.request_sent = True
            waiter.fail(error)

    @property
    def inflight(self) -> int:
        """Outstanding request count (observability/tests)."""
        with self._state:
            return len(self._pending)

    # -- calls ---------------------------------------------------------------

    def call(self, handler: str, payload: bytes, oneway: bool = False,
             priority: int = 0,
             deadline: Optional[float] = None) -> Optional[bytes]:
        request_id = self._ids.next_int()
        message = RsrMessage.request(request_id, handler, payload,
                                     oneway=oneway, priority=priority,
                                     deadline=deadline)
        if oneway:
            with self._lock:
                self.channel.send(message.encode())
            return None
        waiter = _ReplyWaiter()
        with self._state:
            if self._closed:
                raise ChannelClosedError("call on closed startpoint")
            if self._broken is not None:
                raise ChannelClosedError(
                    f"channel already failed: {self._broken}")
            self._pending[request_id] = waiter
            self._ensure_reader()
        try:
            with self._lock:       # serializes *sends*, not round trips
                self.channel.send(message.encode())
        except Exception:
            with self._state:
                self._pending.pop(request_id, None)
            raise
        if not waiter.event.wait(self.timeout):
            with self._state:
                self._pending.pop(request_id, None)
            exc = TransportError(
                f"request {request_id} timed out after {self.timeout}s "
                "with no reply")
            # The request left this host; dispatch status is unknown.
            exc.request_sent = True
            raise exc
        if waiter.error is not None:
            raise waiter.error
        reply = waiter.reply
        if reply.is_overload():
            _raise_overload(reply)
        if reply.is_error():
            remote_type, remote_msg = loads(reply.payload)
            raise RemoteException(remote_type, remote_msg)
        return reply.payload

    def close(self) -> None:
        with self._state:
            if self._closed:
                return
            self._closed = True
            reader = self._reader
        self.channel.close()
        self._fail_all(ChannelClosedError("startpoint closed"))
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=2.0)
