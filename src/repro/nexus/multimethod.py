"""Multi-method serving: one endpoint, many transports.

Nexus's "multimethod communication" lets a single communication target be
reachable over several media at once.  :class:`MultiMethodServer` owns an
:class:`~repro.nexus.endpoint.Endpoint` and binds it to any number of
transports; each binding yields a transport-specific address, and the set
of addresses is what a server context publishes in its object references
(one protocol-table entry per medium, §3.1).
"""

from __future__ import annotations

from typing import Optional

from repro.nexus.endpoint import Endpoint
from repro.transport.base import Transport
from repro.transport.simtransport import SimTransport

__all__ = ["MultiMethodServer"]


class MultiMethodServer:
    """An endpoint bound to several transports simultaneously."""

    def __init__(self, name: str = ""):
        self.endpoint = Endpoint(name)
        self._bindings: list[tuple[str, dict]] = []

    def bind(self, transport: Transport,
             address: Optional[dict] = None) -> dict:
        """Listen on ``transport``; returns the bound address.

        Simulated transports are served inline; everything else gets a
        threaded accept loop.
        """
        listener = transport.listen(address)
        if isinstance(transport, SimTransport):
            self.endpoint.serve_sim_listener(listener)
        else:
            self.endpoint.serve_listener(listener)
        bound = dict(listener.address)
        self._bindings.append((transport.name, bound))
        return bound

    @property
    def addresses(self) -> list[dict]:
        """All bound addresses, in binding order (= preference order)."""
        return [dict(addr) for _name, addr in self._bindings]

    def register(self, handler_name: str, fn) -> None:
        self.endpoint.register(handler_name, fn)

    def stop(self) -> None:
        self.endpoint.stop()
