"""Remote service request wire format.

An RSR message is an XDR stream::

    uint    flags        (request/reply/error/oneway bits)
    uhyper  request_id
    string  handler      (empty in replies)
    opaque  payload

The payload is opaque at this layer — protocol objects put marshalled
argument tuples in it, and the glue protocol puts *capability-processed*
bytes in it, which is exactly the layering Figure 2 draws.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import MarshalError
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["RsrFlags", "RsrMessage"]


class RsrFlags(enum.IntFlag):
    """Message-kind bits."""

    REQUEST = 0x1
    REPLY = 0x2
    ERROR = 0x4      # reply carrying a marshalled remote exception
    ONEWAY = 0x8     # request not expecting a reply


@dataclass(frozen=True)
class RsrMessage:
    """One RSR on the wire."""

    flags: RsrFlags
    request_id: int
    handler: str
    payload: bytes

    def is_request(self) -> bool:
        return bool(self.flags & RsrFlags.REQUEST)

    def is_reply(self) -> bool:
        return bool(self.flags & RsrFlags.REPLY)

    def is_error(self) -> bool:
        return bool(self.flags & RsrFlags.ERROR)

    def is_oneway(self) -> bool:
        return bool(self.flags & RsrFlags.ONEWAY)

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(int(self.flags))
        enc.pack_uhyper(self.request_id)
        enc.pack_string(self.handler)
        enc.pack_opaque(self.payload)
        return enc.getvalue()

    @classmethod
    def decode(cls, data) -> "RsrMessage":
        dec = XdrDecoder(data)
        flags = RsrFlags(dec.unpack_uint())
        request_id = dec.unpack_uhyper()
        handler = dec.unpack_string()
        payload = bytes(dec.unpack_opaque())
        if not (flags & (RsrFlags.REQUEST | RsrFlags.REPLY)):
            raise MarshalError("RSR is neither request nor reply")
        return cls(flags=flags, request_id=request_id, handler=handler,
                   payload=payload)

    # -- constructors --------------------------------------------------------

    @classmethod
    def request(cls, request_id: int, handler: str, payload: bytes,
                oneway: bool = False) -> "RsrMessage":
        flags = RsrFlags.REQUEST | (RsrFlags.ONEWAY if oneway
                                    else RsrFlags(0))
        return cls(flags=flags, request_id=request_id, handler=handler,
                   payload=payload)

    @classmethod
    def reply(cls, request_id: int, payload: bytes) -> "RsrMessage":
        return cls(flags=RsrFlags.REPLY, request_id=request_id,
                   handler="", payload=payload)

    @classmethod
    def error(cls, request_id: int, payload: bytes) -> "RsrMessage":
        return cls(flags=RsrFlags.REPLY | RsrFlags.ERROR,
                   request_id=request_id, handler="", payload=payload)
