"""Remote service request wire format.

An RSR message is an XDR stream::

    uint    flags        (request/reply/error/oneway/meta/overload bits)
    uhyper  request_id
    string  handler      (empty in replies)
    opaque  payload
    [uint   priority     -- present iff META
     bool   has_deadline
     double deadline]    -- remaining seconds, relative (see below)

The payload is opaque at this layer — protocol objects put marshalled
argument tuples in it, and the glue protocol puts *capability-processed*
bytes in it, which is exactly the layering Figure 2 draws.

The META trailer carries admission-control hints.  ``priority`` is the
request's admission class ordinal (0 = interactive); ``deadline`` is the
*remaining* time budget in seconds — relative, not an absolute
timestamp, so it survives the sender and receiver disagreeing about
what time it is.  Requests without hints omit the trailer entirely, so
pre-admission peers and recorded wire goldens decode unchanged.

An OVERLOAD reply is the server's pushback: the request was shed before
dispatch and the payload is an
:func:`~repro.serialization.marshal.encode_overload_info` record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import MarshalError
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["RsrFlags", "RsrMessage"]


class RsrFlags(enum.IntFlag):
    """Message-kind bits."""

    REQUEST = 0x1
    REPLY = 0x2
    ERROR = 0x4      # reply carrying a marshalled remote exception
    ONEWAY = 0x8     # request not expecting a reply
    META = 0x10      # request carrying a priority/deadline trailer
    OVERLOAD = 0x20  # reply: request shed by admission control


@dataclass(frozen=True)
class RsrMessage:
    """One RSR on the wire."""

    flags: RsrFlags
    request_id: int
    handler: str
    payload: bytes
    #: Admission class ordinal (0 = interactive); wire-present iff META.
    priority: int = 0
    #: Remaining time budget in seconds (relative), or None.
    deadline: Optional[float] = None

    def is_request(self) -> bool:
        return bool(self.flags & RsrFlags.REQUEST)

    def is_reply(self) -> bool:
        return bool(self.flags & RsrFlags.REPLY)

    def is_error(self) -> bool:
        return bool(self.flags & RsrFlags.ERROR)

    def is_oneway(self) -> bool:
        return bool(self.flags & RsrFlags.ONEWAY)

    def is_overload(self) -> bool:
        return bool(self.flags & RsrFlags.OVERLOAD)

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.pack_uint(int(self.flags))
        enc.pack_uhyper(self.request_id)
        enc.pack_string(self.handler)
        enc.pack_opaque(self.payload)
        if self.flags & RsrFlags.META:
            enc.pack_uint(self.priority)
            enc.pack_bool(self.deadline is not None)
            enc.pack_double(0.0 if self.deadline is None else self.deadline)
        return enc.getvalue()

    @classmethod
    def decode(cls, data) -> "RsrMessage":
        dec = XdrDecoder(data)
        flags = RsrFlags(dec.unpack_uint())
        request_id = dec.unpack_uhyper()
        handler = dec.unpack_string()
        payload = bytes(dec.unpack_opaque())
        priority = 0
        deadline: Optional[float] = None
        if flags & RsrFlags.META:
            priority = dec.unpack_uint()
            has_deadline = dec.unpack_bool()
            value = dec.unpack_double()
            deadline = value if has_deadline else None
        if not (flags & (RsrFlags.REQUEST | RsrFlags.REPLY)):
            raise MarshalError("RSR is neither request nor reply")
        return cls(flags=flags, request_id=request_id, handler=handler,
                   payload=payload, priority=priority, deadline=deadline)

    # -- constructors --------------------------------------------------------

    @classmethod
    def request(cls, request_id: int, handler: str, payload: bytes,
                oneway: bool = False, priority: int = 0,
                deadline: Optional[float] = None) -> "RsrMessage":
        flags = RsrFlags.REQUEST | (RsrFlags.ONEWAY if oneway
                                    else RsrFlags(0))
        if priority != 0 or deadline is not None:
            flags |= RsrFlags.META
        return cls(flags=flags, request_id=request_id, handler=handler,
                   payload=payload, priority=priority, deadline=deadline)

    @classmethod
    def reply(cls, request_id: int, payload: bytes) -> "RsrMessage":
        return cls(flags=RsrFlags.REPLY, request_id=request_id,
                   handler="", payload=payload)

    @classmethod
    def error(cls, request_id: int, payload: bytes) -> "RsrMessage":
        return cls(flags=RsrFlags.REPLY | RsrFlags.ERROR,
                   request_id=request_id, handler="", payload=payload)

    @classmethod
    def overload(cls, request_id: int, payload: bytes) -> "RsrMessage":
        """A pushback reply; the payload is an overload-info record."""
        return cls(flags=RsrFlags.REPLY | RsrFlags.ERROR | RsrFlags.OVERLOAD,
                   request_id=request_id, handler="", payload=payload)
