"""Security substrate backing the encryption/authentication capabilities.

The paper's motivating example (§1) wants per-client security policy: WAN
clients authenticate and encrypt, LAN clients do neither, commercial
clients get metered access.  The capability objects that enforce those
policies are built on the primitives here — all implemented from scratch
(the 1999 system would have carried its own DES/MD5; we carry equivalents
whose speed we can also *model* for the simulator's cost accounting):

* :mod:`repro.security.prng` — xorshift128+ and PCG32 deterministic PRNGs
* :mod:`repro.security.stream_cipher` — keystream XOR cipher, vectorized
* :mod:`repro.security.block_cipher` — XTEA in CTR mode, vectorized
* :mod:`repro.security.hmac_md` — HMAC-SHA256 message authentication
* :mod:`repro.security.dh` — finite-field Diffie-Hellman key agreement
* :mod:`repro.security.keys` — key store and principal registry
* :mod:`repro.security.acl` — access-control lists over principals
"""

from repro.security.prng import Pcg32, XorShift128
from repro.security.stream_cipher import StreamCipher
from repro.security.block_cipher import XteaCtr
from repro.security.hmac_md import hmac_sign, hmac_verify
from repro.security.dh import DhParams, DhPrivateKey, DEFAULT_DH_PARAMS
from repro.security.keys import KeyStore, Principal
from repro.security.acl import AccessControlList, Permission

__all__ = [
    "Pcg32",
    "XorShift128",
    "StreamCipher",
    "XteaCtr",
    "hmac_sign",
    "hmac_verify",
    "DhParams",
    "DhPrivateKey",
    "DEFAULT_DH_PARAMS",
    "KeyStore",
    "Principal",
    "AccessControlList",
    "Permission",
]
