"""Access-control lists over principals and methods.

Implements the intro's "some clients may need access to the complete
server interface, others to a subset": an :class:`AccessControlList` maps
principals (or the wildcard) to sets of permitted method names, and the
server-side dispatch asks it before invoking a servant method when an
authenticated principal is attached to the request.
"""

from __future__ import annotations

import enum
import fnmatch
import threading
from typing import Iterable

from repro.security.keys import Principal

__all__ = ["Permission", "AccessControlList"]


class Permission(enum.Enum):
    """Coarse permission classes attachable alongside method patterns."""

    INVOKE = "invoke"
    MIGRATE = "migrate"
    ADMIN = "admin"


class AccessControlList:
    """Principal -> permitted method patterns (fnmatch style).

    An entry for ``None`` is the anonymous/default rule.  Deny-by-default:
    an unknown principal with no default rule is refused.

    >>> acl = AccessControlList()
    >>> acl.grant(Principal("alice"), ["get_*", "run"])
    >>> acl.allows(Principal("alice"), "get_map")
    True
    >>> acl.allows(Principal("bob"), "get_map")
    False
    """

    def __init__(self):
        self._rules: dict[Principal | None, set[str]] = {}
        self._perms: dict[Principal | None, set[Permission]] = {}
        self._lock = threading.Lock()

    def grant(self, principal: Principal | None,
              method_patterns: Iterable[str],
              permissions: Iterable[Permission] = (Permission.INVOKE,)
              ) -> None:
        with self._lock:
            self._rules.setdefault(principal, set()).update(method_patterns)
            self._perms.setdefault(principal, set()).update(permissions)

    def revoke(self, principal: Principal | None) -> None:
        with self._lock:
            self._rules.pop(principal, None)
            self._perms.pop(principal, None)

    def allows(self, principal: Principal | None, method: str) -> bool:
        with self._lock:
            for who in (principal, None):
                patterns = self._rules.get(who)
                if patterns and any(fnmatch.fnmatchcase(method, p)
                                    for p in patterns):
                    return True
        return False

    def has_permission(self, principal: Principal | None,
                       permission: Permission) -> bool:
        with self._lock:
            for who in (principal, None):
                if permission in self._perms.get(who, ()):
                    return True
        return False

    def principals(self) -> list[Principal | None]:
        with self._lock:
            return list(self._rules)
