"""XTEA block cipher in counter (CTR) mode, numpy-vectorized.

A genuine (if dated) block cipher to sit alongside the keystream cipher:
XTEA is the 64-bit-block, 128-bit-key Feistel network of Needham &
Wheeler.  In CTR mode the cipher encrypts a counter sequence to produce
keystream, so *all blocks are independent* — which lets the 32 Feistel
rounds run vectorized across every block of the message at once instead
of per-block Python loops.

This is the "expensive, serious crypto" option for the encryption
capability (``cipher="xtea"``), roughly 5-10x slower per byte than the
xorshift keystream — a realistic stand-in for 1999 software DES, and the
cost model the simulator charges for the security capability mirrors that
ratio.
"""

from __future__ import annotations

import numpy as np

__all__ = ["XteaCtr"]

_DELTA = np.uint32(0x9E3779B9)
_ROUNDS = 32
_MASK32 = np.uint32(0xFFFFFFFF)


class XteaCtr:
    """XTEA-CTR over a 16-byte key.

    ``apply(data, nonce)`` encrypts or decrypts (CTR is symmetric).
    """

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("XTEA key must be exactly 16 bytes")
        self._k = np.frombuffer(key, dtype=">u4").astype(np.uint32)

    def _keystream_blocks(self, nonce: int, nblocks: int) -> np.ndarray:
        """Encrypt counter blocks [nonce, nonce+1, ...); returns uint32
        array of shape (nblocks, 2) — the (v0, v1) halves of each block."""
        counters = (np.uint64(nonce & 0xFFFFFFFFFFFFFFFF)
                    + np.arange(nblocks, dtype=np.uint64))
        v0 = (counters >> np.uint64(32)).astype(np.uint32)
        v1 = (counters & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        k = self._k
        total = np.uint32(0)
        with np.errstate(over="ignore"):
            for _ in range(_ROUNDS):
                v0 = v0 + ((((v1 << np.uint32(4)) ^ (v1 >> np.uint32(5)))
                            + v1) ^ (total + k[int(total & np.uint32(3))]))
                total = total + _DELTA
                v1 = v1 + ((((v0 << np.uint32(4)) ^ (v0 >> np.uint32(5)))
                            + v0) ^ (total + k[int((total >> np.uint32(11))
                                                   & np.uint32(3))]))
        return np.stack([v0, v1], axis=1)

    def keystream(self, nonce: int, nbytes: int) -> np.ndarray:
        nblocks = (nbytes + 7) // 8
        blocks = self._keystream_blocks(nonce, nblocks)
        # big-endian serialization of each 32-bit half
        raw = blocks.astype(">u4").tobytes()
        return np.frombuffer(raw, dtype=np.uint8)[:nbytes]

    def apply(self, data, nonce: int) -> bytes:
        buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
        if len(buf) == 0:
            return b""
        ks = self.keystream(nonce, len(buf))
        return (buf ^ ks).tobytes()

    encrypt = apply
    decrypt = apply

    # -- reference single-block primitives (used by tests) -----------------

    def encrypt_block(self, v0: int, v1: int) -> tuple[int, int]:
        """Scalar one-block XTEA encryption (reference implementation)."""
        k = [int(x) for x in self._k]
        total = 0
        delta = 0x9E3779B9
        for _ in range(_ROUNDS):
            v0 = (v0 + (((((v1 << 4) & 0xFFFFFFFF) ^ (v1 >> 5)) + v1)
                        ^ (total + k[total & 3]))) & 0xFFFFFFFF
            total = (total + delta) & 0xFFFFFFFF
            v1 = (v1 + (((((v0 << 4) & 0xFFFFFFFF) ^ (v0 >> 5)) + v0)
                        ^ (total + k[(total >> 11) & 3]))) & 0xFFFFFFFF
        return v0, v1

    def decrypt_block(self, v0: int, v1: int) -> tuple[int, int]:
        """Scalar one-block XTEA decryption (reference implementation)."""
        k = [int(x) for x in self._k]
        delta = 0x9E3779B9
        total = (delta * _ROUNDS) & 0xFFFFFFFF
        for _ in range(_ROUNDS):
            v1 = (v1 - (((((v0 << 4) & 0xFFFFFFFF) ^ (v0 >> 5)) + v0)
                        ^ (total + k[(total >> 11) & 3]))) & 0xFFFFFFFF
            total = (total - delta) & 0xFFFFFFFF
            v0 = (v0 - (((((v1 << 4) & 0xFFFFFFFF) ^ (v1 >> 5)) + v1)
                        ^ (total + k[total & 3]))) & 0xFFFFFFFF
        return v0, v1
