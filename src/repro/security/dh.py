"""Finite-field Diffie-Hellman key agreement.

When an encryption capability is created without an explicit pre-shared
key, the client and server glue halves run a DH exchange at capability
registration time to derive one (see
:class:`repro.core.capabilities.encryption.EncryptionCapability`).  Python
integers make the modular exponentiation a one-liner (``pow``), so this is
a complete, working implementation of the protocol, not a mock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.security.prng import Pcg32

__all__ = ["DhParams", "DhPrivateKey", "DEFAULT_DH_PARAMS"]


@dataclass(frozen=True)
class DhParams:
    """A DH group: safe prime modulus ``p`` and generator ``g``."""

    p: int
    g: int

    def __post_init__(self):
        if self.p < 5 or self.g < 2:
            raise ValueError("degenerate DH parameters")


# RFC 3526 group 5 (1536-bit MODP) — the smallest group the RFC still
# lists; ample for a reproduction and fast in Python.
_MODP_1536_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF"
)

DEFAULT_DH_PARAMS = DhParams(p=int(_MODP_1536_HEX, 16), g=2)


class DhPrivateKey:
    """One party's half of a DH exchange.

    >>> a = DhPrivateKey(seed=1)
    >>> b = DhPrivateKey(seed=2)
    >>> a.shared_secret(b.public) == b.shared_secret(a.public)
    True
    """

    def __init__(self, params: DhParams = DEFAULT_DH_PARAMS,
                 seed: int | None = None):
        self.params = params
        rng = Pcg32(seed if seed is not None else id(self) ^ 0x5DEECE66D)
        # 256 bits of private exponent is plenty for the 1536-bit group.
        exponent = 0
        for _ in range(8):
            exponent = (exponent << 32) | rng.next_u32()
        self._x = (exponent % (params.p - 3)) + 2
        self.public = pow(params.g, self._x, params.p)

    def shared_secret(self, other_public: int) -> int:
        if not 2 <= other_public <= self.params.p - 2:
            raise ValueError("peer public value out of range")
        return pow(other_public, self._x, self.params.p)

    def derive_key(self, other_public: int, nbytes: int = 16) -> bytes:
        """Hash the shared secret down to a symmetric key."""
        secret = self.shared_secret(other_public)
        raw = secret.to_bytes((self.params.p.bit_length() + 7) // 8, "big")
        digest = hashlib.sha256(raw).digest()
        while len(digest) < nbytes:
            digest += hashlib.sha256(digest).digest()
        return digest[:nbytes]
