"""Message authentication: HMAC over SHA-256.

Used by the authentication capability (per-request client authentication,
as the Figure 3 scenario demands for off-LAN clients) and by the integrity
capability's MAC mode.  ``hashlib`` provides the compression function; the
HMAC construction itself (ipad/opad keying, RFC 2104) is written out here
rather than taken from :mod:`hmac` so the whole wire transformation chain
is visible in this codebase.
"""

from __future__ import annotations

import hashlib

__all__ = ["hmac_sign", "hmac_verify", "constant_time_eq", "DIGEST_SIZE"]

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
DIGEST_SIZE = 32

_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))


def _prepare_key(key: bytes) -> bytes:
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    return key.ljust(_BLOCK_SIZE, b"\x00")


def hmac_sign(key: bytes, message) -> bytes:
    """RFC 2104 HMAC-SHA256 of ``message`` under ``key`` (32 bytes)."""
    k = _prepare_key(key)
    inner_key = bytes(a ^ b for a, b in zip(k, _IPAD))
    outer_key = bytes(a ^ b for a, b in zip(k, _OPAD))
    inner = hashlib.sha256(inner_key)
    inner.update(message)
    outer = hashlib.sha256(outer_key)
    outer.update(inner.digest())
    return outer.digest()


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Length-then-XOR-accumulate comparison; no early exit on mismatch."""
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


def hmac_verify(key: bytes, message, tag: bytes) -> bool:
    """Verify ``tag`` authenticates ``message`` under ``key``."""
    return constant_time_eq(hmac_sign(key, message), bytes(tag))
