"""Key store and principals.

The authentication capability identifies clients by *principal* — the
(name, realm) identity the national-lab scenario of §1 would assign to
each collaborating site.  A :class:`KeyStore` holds the shared secrets the
server uses to verify request MACs, keyed by principal name.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.exceptions import AuthenticationError
from repro.security.prng import Pcg32

__all__ = ["Principal", "KeyStore"]


@dataclass(frozen=True)
class Principal:
    """A named identity within a realm (e.g. ``alice@lab.gov``)."""

    name: str
    realm: str = "default"

    def __str__(self) -> str:
        return f"{self.name}@{self.realm}"

    @classmethod
    def parse(cls, text: str) -> "Principal":
        if "@" in text:
            name, realm = text.split("@", 1)
            return cls(name, realm)
        return cls(text)


class KeyStore:
    """Thread-safe map from principal to shared secret key.

    Server contexts own one; the authentication capability consults it on
    every request.  ``generate`` mints a fresh random key so tests and
    examples don't hand-roll key material.
    """

    def __init__(self, seed: int = 0x5EED):
        self._keys: dict[Principal, bytes] = {}
        self._lock = threading.Lock()
        self._rng = Pcg32(seed)

    def install(self, principal: Principal, key: bytes) -> None:
        if not key:
            raise ValueError("empty key")
        with self._lock:
            self._keys[principal] = bytes(key)

    def generate(self, principal: Principal, nbytes: int = 16) -> bytes:
        with self._lock:
            key = self._rng.bytes(nbytes)
            self._keys[principal] = key
            return key

    def lookup(self, principal: Principal) -> bytes:
        with self._lock:
            try:
                return self._keys[principal]
            except KeyError:
                raise AuthenticationError(
                    f"no key installed for principal {principal}") from None

    def revoke(self, principal: Principal) -> None:
        with self._lock:
            self._keys.pop(principal, None)

    def known_principals(self) -> list[Principal]:
        with self._lock:
            return list(self._keys)

    def __contains__(self, principal: Principal) -> bool:
        with self._lock:
            return principal in self._keys
