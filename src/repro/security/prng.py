"""Deterministic pseudo-random number generators.

Two classic generators, implemented from scratch:

* :class:`XorShift128` — Marsaglia xorshift128+, used to derive keystream
  blocks for the stream cipher (fast, vectorizable state-free expansion).
* :class:`Pcg32` — PCG-XSH-RR 32, used wherever the library needs
  reproducible randomness that must be independent of numpy's global state
  (nonce generation, synthetic workload draws).

These are *not* cryptographically secure — neither was 1999-era exportable
crypto; the capability layer cares about the mechanics (key agreement,
per-connection policy, wire transformation), which these primitives
exercise faithfully.
"""

from __future__ import annotations

import numpy as np

__all__ = ["XorShift128", "Pcg32", "splitmix64_stream"]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64_stream(seed: int, nbytes: int) -> np.ndarray:
    """Counter-mode SplitMix64 keystream: byte ``8k..8k+7`` comes from
    ``splitmix64(seed + k)``.

    Unlike a stateful generator, every 64-bit block depends only on
    ``(seed, k)``, so the whole stream is one vectorized numpy pass —
    this is the cipher-grade fast path (hundreds of MB/s in Python).
    """
    if nbytes <= 0:
        return np.empty(0, dtype=np.uint8)
    nwords = (nbytes + 7) // 8
    z = (np.uint64(seed & _MASK64)
         + np.arange(nwords, dtype=np.uint64)
         * np.uint64(0x9E3779B97F4A7C15))
    with np.errstate(over="ignore"):
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z.view(np.uint8)[:nbytes]


class XorShift128:
    """xorshift128+ with 64-bit outputs.

    ``fill_block`` produces a numpy byte block, used as cipher keystream.
    """

    def __init__(self, seed: int):
        if seed < 0:
            raise ValueError("seed must be non-negative")
        # SplitMix64 expansion of the seed into two nonzero state words.
        s = (seed + 0x9E3779B97F4A7C15) & _MASK64
        self.s0 = self._splitmix(s)
        self.s1 = self._splitmix((s + 0x9E3779B97F4A7C15) & _MASK64)
        if self.s0 == 0 and self.s1 == 0:
            self.s1 = 1

    @staticmethod
    def _splitmix(z: int) -> int:
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
        z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def next_u64(self) -> int:
        s1, s0 = self.s0, self.s1
        self.s0 = s0
        s1 ^= (s1 << 23) & _MASK64
        self.s1 = (s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26)) & _MASK64
        return (self.s1 + s0) & _MASK64

    def fill_block(self, nbytes: int) -> np.ndarray:
        """Return ``nbytes`` of keystream as a uint8 array.

        The state advances by ``ceil(nbytes / 8)`` steps.
        """
        nwords = (nbytes + 7) // 8
        words = np.empty(nwords, dtype=np.uint64)
        for i in range(nwords):
            words[i] = self.next_u64()
        return words.view(np.uint8)[:nbytes]


class Pcg32:
    """PCG-XSH-RR: 64-bit state, 32-bit output, selectable stream."""

    _MULT = 6364136223846793005

    def __init__(self, seed: int, stream: int = 0):
        self.state = 0
        self.inc = ((stream << 1) | 1) & _MASK64
        self.next_u32()
        self.state = (self.state + (seed & _MASK64)) & _MASK64
        self.next_u32()

    def next_u32(self) -> int:
        old = self.state
        self.state = (old * self._MULT + self.inc) & _MASK64
        xorshifted = (((old >> 18) ^ old) >> 27) & 0xFFFFFFFF
        rot = old >> 59
        return ((xorshifted >> rot) | (xorshifted << ((-rot) & 31))) \
            & 0xFFFFFFFF

    def uniform(self) -> float:
        """Uniform float in [0, 1)."""
        return self.next_u32() / 4294967296.0

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] via rejection-free modulo (biased by
        at most 2**-32 * (hi-lo), fine for workload synthesis)."""
        if hi < lo:
            raise ValueError("hi must be >= lo")
        span = hi - lo + 1
        return lo + self.next_u32() % span

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed sample with the given rate."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        u = max(self.uniform(), 2.0 ** -33)
        return -np.log(u) / rate

    def choice(self, seq):
        if not seq:
            raise ValueError("choice from empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def bytes(self, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            out += self.next_u32().to_bytes(4, "little")
        return bytes(out[:n])
