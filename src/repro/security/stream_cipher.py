"""Keystream XOR stream cipher (fully vectorized).

The encryption capability needs a symmetric cipher whose cost scales
linearly in message size — like the software DES the 1999 testbed would
have run — while staying fast enough in Python that multi-megabyte
benchmark payloads are practical.  The keystream is counter-mode
SplitMix64 over a seed derived from ``(key, nonce)``
(:func:`repro.security.prng.splitmix64_stream`), so both the keystream
generation and the XOR are single numpy passes — hundreds of MB/s.

Security note: this construction is a toy by modern standards (it is a
synchronous stream cipher without authentication; pair it with the HMAC
integrity capability for tamper detection, which is exactly how the glue
protocol stacks capabilities).
"""

from __future__ import annotations

import numpy as np

from repro.security.prng import splitmix64_stream

__all__ = ["StreamCipher"]


def _mix_key_nonce(key: bytes, nonce: int) -> int:
    """Fold an arbitrary-length key and a 64-bit nonce into a seed."""
    acc = 0xCBF29CE484222325  # FNV-1a offset basis
    for b in key:
        acc ^= b
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    acc ^= nonce & 0xFFFFFFFFFFFFFFFF
    acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


class StreamCipher:
    """Symmetric keystream cipher over ``(key, nonce)``.

    Encryption and decryption are the same operation.  A fresh ``nonce``
    must be used per message; the encryption capability sends it in clear
    in its sub-header.
    """

    def __init__(self, key: bytes):
        if not key:
            raise ValueError("key must be non-empty")
        self.key = bytes(key)

    def keystream(self, nonce: int, nbytes: int) -> np.ndarray:
        return splitmix64_stream(_mix_key_nonce(self.key, nonce), nbytes)

    def apply(self, data, nonce: int) -> bytes:
        """XOR ``data`` with the keystream for ``nonce``; returns bytes."""
        buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
        if len(buf) == 0:
            return b""
        ks = self.keystream(nonce, len(buf))
        return (buf ^ ks).tobytes()

    # Aliases that read naturally at call sites.
    encrypt = apply
    decrypt = apply
