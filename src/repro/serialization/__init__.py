"""Wire-format substrate: XDR and CDR codecs plus a value marshaller.

The paper's proto-objects each own a data encoding — "there could be a TCP
based proto-object that uses XDR for data encoding" (§3.1).  This package
supplies two interchangeable encodings and a typed marshaller on top:

* :mod:`repro.serialization.xdr` — big-endian, 4-byte-aligned XDR
  (RFC 1832 subset), the encoding Nexus-era systems actually used.
* :mod:`repro.serialization.cdr` — little-endian CDR-style variant with
  natural alignment, standing in for CORBA IIOP's encoding, so the
  multi-protocol machinery has genuinely different wire formats to choose
  between.
* :mod:`repro.serialization.marshal` — self-describing value marshalling
  (ints, floats, strings, sequences, mappings, numpy arrays) over either
  codec, with a zero-copy fast path for large contiguous arrays.
"""

from repro.serialization.typecodes import TypeCode
from repro.serialization.xdr import XdrDecoder, XdrEncoder
from repro.serialization.cdr import CdrDecoder, CdrEncoder
from repro.serialization.marshal import (
    Marshaller,
    dumps,
    loads,
)

__all__ = [
    "TypeCode",
    "XdrEncoder",
    "XdrDecoder",
    "CdrEncoder",
    "CdrDecoder",
    "Marshaller",
    "dumps",
    "loads",
]
