"""CDR-style encoder/decoder: little-endian with natural alignment.

CORBA GIOP messages use Common Data Representation — sender-chosen byte
order with every primitive aligned to its own size.  This module implements
the little-endian flavour so the library has a second, genuinely different
wire format next to XDR: a proto-object built over CDR and one built over
XDR can coexist in the same protocol table, which is exactly the
"multiple concurrent protocols" configuration of §3.2.

The class interface intentionally mirrors :mod:`repro.serialization.xdr`
(``pack_int``/``unpack_int``...), so the marshaller treats codecs as
interchangeable duck types.
"""

from __future__ import annotations

import struct

from repro.exceptions import MarshalError
from repro.util.bytesbuf import ByteBuffer, ByteReader

__all__ = ["CdrEncoder", "CdrDecoder"]

_S_INT = struct.Struct("<i")
_S_UINT = struct.Struct("<I")
_S_HYPER = struct.Struct("<q")
_S_UHYPER = struct.Struct("<Q")
_S_FLOAT = struct.Struct("<f")
_S_DOUBLE = struct.Struct("<d")

INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1
INT64_MIN = -(2 ** 63)
INT64_MAX = 2 ** 63 - 1

_ZEROS = b"\x00" * 8


class CdrEncoder:
    """Streaming little-endian CDR encoder with natural alignment.

    Alignment is tracked against the start of the encapsulation (offset 0
    of this encoder's buffer), per CORBA encapsulation rules.
    """

    name = "cdr"
    byteorder = "little"

    def __init__(self, buffer: ByteBuffer | None = None):
        self.buffer = buffer if buffer is not None else ByteBuffer()

    def _align(self, size: int) -> None:
        r = len(self.buffer) % size
        if r:
            self.buffer.write(_ZEROS[: size - r])

    # -- integers ----------------------------------------------------------

    def pack_int(self, value: int) -> "CdrEncoder":
        if not INT32_MIN <= value <= INT32_MAX:
            raise MarshalError(f"int32 out of range: {value}")
        self._align(4)
        self.buffer.write(_S_INT.pack(value))
        return self

    def pack_uint(self, value: int) -> "CdrEncoder":
        if not 0 <= value <= 0xFFFFFFFF:
            raise MarshalError(f"uint32 out of range: {value}")
        self._align(4)
        self.buffer.write(_S_UINT.pack(value))
        return self

    def pack_hyper(self, value: int) -> "CdrEncoder":
        if not INT64_MIN <= value <= INT64_MAX:
            raise MarshalError(f"int64 out of range: {value}")
        self._align(8)
        self.buffer.write(_S_HYPER.pack(value))
        return self

    def pack_uhyper(self, value: int) -> "CdrEncoder":
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise MarshalError(f"uint64 out of range: {value}")
        self._align(8)
        self.buffer.write(_S_UHYPER.pack(value))
        return self

    def pack_bool(self, value: bool) -> "CdrEncoder":
        # CDR booleans are single octets, no alignment.
        self.buffer.write(b"\x01" if value else b"\x00")
        return self

    # -- floats ------------------------------------------------------------

    def pack_float(self, value: float) -> "CdrEncoder":
        self._align(4)
        self.buffer.write(_S_FLOAT.pack(value))
        return self

    def pack_double(self, value: float) -> "CdrEncoder":
        self._align(8)
        self.buffer.write(_S_DOUBLE.pack(value))
        return self

    # -- opaque / strings ----------------------------------------------------

    def pack_fixed_opaque(self, data) -> "CdrEncoder":
        """Raw octet sequence: no alignment, no padding, no length."""
        self.buffer.write(data)
        return self

    def pack_opaque(self, data) -> "CdrEncoder":
        self.pack_uint(len(data))
        return self.pack_fixed_opaque(data)

    def pack_string(self, value: str) -> "CdrEncoder":
        return self.pack_opaque(value.encode("utf-8"))

    # -- arrays --------------------------------------------------------------

    def pack_array(self, items, pack_item) -> "CdrEncoder":
        items = list(items)
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)
        return self

    def getvalue(self) -> bytes:
        return self.buffer.getvalue()


class CdrDecoder:
    """Streaming little-endian CDR decoder."""

    name = "cdr"
    byteorder = "little"

    def __init__(self, data):
        self.reader = data if isinstance(data, ByteReader) else ByteReader(data)

    def _align(self, size: int) -> None:
        r = self.reader.position % size
        if r:
            self.reader.skip(size - r)

    # -- integers ----------------------------------------------------------

    def unpack_int(self) -> int:
        self._align(4)
        return _S_INT.unpack(self.reader.read(4))[0]

    def unpack_uint(self) -> int:
        self._align(4)
        return _S_UINT.unpack(self.reader.read(4))[0]

    def unpack_hyper(self) -> int:
        self._align(8)
        return _S_HYPER.unpack(self.reader.read(8))[0]

    def unpack_uhyper(self) -> int:
        self._align(8)
        return _S_UHYPER.unpack(self.reader.read(8))[0]

    def unpack_bool(self) -> bool:
        v = self.reader.read(1)[0]
        if v not in (0, 1):
            raise MarshalError(f"CDR bool must be 0 or 1, got {v}")
        return bool(v)

    # -- floats ------------------------------------------------------------

    def unpack_float(self) -> float:
        self._align(4)
        return _S_FLOAT.unpack(self.reader.read(4))[0]

    def unpack_double(self) -> float:
        self._align(8)
        return _S_DOUBLE.unpack(self.reader.read(8))[0]

    # -- opaque / strings ----------------------------------------------------

    def unpack_fixed_opaque(self, n: int) -> memoryview:
        return self.reader.read(n)

    def unpack_opaque(self) -> memoryview:
        n = self.unpack_uint()
        return self.unpack_fixed_opaque(n)

    def unpack_string(self) -> str:
        return bytes(self.unpack_opaque()).decode("utf-8")

    # -- arrays --------------------------------------------------------------

    def unpack_array(self, unpack_item) -> list:
        n = self.unpack_uint()
        return [unpack_item() for _ in range(n)]

    def done(self) -> bool:
        return self.reader.remaining == 0
