"""Self-describing value marshaller over an XDR or CDR codec.

This is the layer the ORB uses to turn Python method arguments into wire
bytes.  Supported values: ``None``, ``bool``, ``int`` (any size), ``float``,
``complex``, ``str``, ``bytes``/``bytearray``/``memoryview``, ``list``,
``tuple``, ``set``, ``dict``, numpy ``ndarray``, and — via the pluggable
hook — :class:`repro.core.objref.ObjectReference` so global pointers can be
passed as arguments (how capabilities travel between processes, §4).

Zero-copy discipline
--------------------
Large contiguous numpy arrays are encoded as a small header plus the raw
buffer, which the underlying :class:`~repro.util.bytesbuf.ByteBuffer`
stores *by reference*; decoding wraps the incoming ``memoryview`` with
``np.frombuffer``.  Hence a 4 MB array argument crosses the codec with no
byte-level copies in either direction — the property §3.2 demands of
proto-object implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MarshalError, TypeCodeError
from repro.serialization.typecodes import ARRAY_DTYPES, DTYPE_CODES, TypeCode
from repro.serialization.xdr import XdrDecoder, XdrEncoder

__all__ = ["Marshaller", "dumps", "loads", "set_objref_hooks",
           "BatchRequest", "BatchReply", "peek_batch_count",
           "encode_overload_info", "decode_overload_info"]

# Pluggable ObjectReference (de)serialization, installed by repro.core.objref
# at import time to avoid a circular dependency: the marshaller must encode
# ORs, and ORs carry protocol tables that are themselves marshalled.
_OBJREF_HOOKS: Optional[tuple[Callable[[Any], bool],
                              Callable[[Any], bytes],
                              Callable[[bytes], Any]]] = None


def set_objref_hooks(is_objref: Callable[[Any], bool],
                     to_bytes: Callable[[Any], bytes],
                     from_bytes: Callable[[bytes], Any]) -> None:
    """Install the ObjectReference marshalling hooks (called by core)."""
    global _OBJREF_HOOKS
    _OBJREF_HOOKS = (is_objref, to_bytes, from_bytes)


class Marshaller:
    """Encode/decode arbitrary supported values over a codec pair.

    ``encoder_cls``/``decoder_cls`` default to XDR; pass the CDR classes to
    obtain a CDR marshaller.  Instances are stateless and thread-safe.
    """

    def __init__(self, encoder_cls=XdrEncoder, decoder_cls=XdrDecoder):
        self.encoder_cls = encoder_cls
        self.decoder_cls = decoder_cls

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def dumps(self, value: Any) -> bytes:
        enc = self.encoder_cls()
        self.encode_value(enc, value)
        return enc.getvalue()

    def dumps_many(self, values) -> bytes:
        """Encode a fixed-arity sequence without a length prefix."""
        enc = self.encoder_cls()
        for value in values:
            self.encode_value(enc, value)
        return enc.getvalue()

    def encode_value(self, enc, value: Any) -> None:
        if value is None:
            enc.pack_uint(TypeCode.NONE)
        elif isinstance(value, bool):
            enc.pack_uint(TypeCode.BOOL)
            enc.pack_bool(value)
        elif isinstance(value, int):
            self._encode_int(enc, value)
        elif isinstance(value, float):
            enc.pack_uint(TypeCode.FLOAT64)
            enc.pack_double(value)
        elif isinstance(value, complex):
            enc.pack_uint(TypeCode.COMPLEX128)
            enc.pack_double(value.real)
            enc.pack_double(value.imag)
        elif isinstance(value, str):
            enc.pack_uint(TypeCode.STRING)
            enc.pack_string(value)
        elif isinstance(value, (bytes, bytearray, memoryview)):
            enc.pack_uint(TypeCode.BYTES)
            enc.pack_opaque(value)
        elif isinstance(value, np.ndarray):
            self._encode_ndarray(enc, value)
        elif isinstance(value, list):
            enc.pack_uint(TypeCode.LIST)
            enc.pack_array(value, lambda v: self.encode_value(enc, v))
        elif isinstance(value, tuple):
            enc.pack_uint(TypeCode.TUPLE)
            enc.pack_array(value, lambda v: self.encode_value(enc, v))
        elif isinstance(value, (set, frozenset)):
            enc.pack_uint(TypeCode.SET)
            enc.pack_array(sorted(value, key=repr),
                           lambda v: self.encode_value(enc, v))
        elif isinstance(value, dict):
            enc.pack_uint(TypeCode.DICT)
            enc.pack_uint(len(value))
            for k, v in value.items():
                self.encode_value(enc, k)
                self.encode_value(enc, v)
        elif _OBJREF_HOOKS is not None and _OBJREF_HOOKS[0](value):
            enc.pack_uint(TypeCode.OBJREF)
            enc.pack_opaque(_OBJREF_HOOKS[1](value))
        elif isinstance(value, np.generic):
            # numpy scalar: degrade to the matching Python scalar.
            self.encode_value(enc, value.item())
        else:
            raise MarshalError(
                f"cannot marshal value of type {type(value).__name__}")

    def _encode_int(self, enc, value: int) -> None:
        if -(2 ** 31) <= value < 2 ** 31:
            enc.pack_uint(TypeCode.INT32)
            enc.pack_int(value)
        elif -(2 ** 63) <= value < 2 ** 63:
            enc.pack_uint(TypeCode.INT64)
            enc.pack_hyper(value)
        else:
            enc.pack_uint(TypeCode.BIGINT)
            nbytes = (value.bit_length() + 8) // 8  # +8 keeps the sign bit
            enc.pack_opaque(value.to_bytes(nbytes, "big", signed=True))

    def _encode_ndarray(self, enc, arr: np.ndarray) -> None:
        code = DTYPE_CODES.get(_canonical_dtype_str(arr.dtype))
        if code is None:
            raise MarshalError(f"unsupported ndarray dtype {arr.dtype}")
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        # Payload bytes are always little-endian on the wire regardless of
        # the codec's integer byte order (the header says so via the dtype
        # code table); byteswap only if the source array is big-endian.
        if arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        enc.pack_uint(TypeCode.NDARRAY)
        enc.pack_uint(code)
        enc.pack_uint(arr.ndim)
        for dim in arr.shape:
            enc.pack_uhyper(dim)
        data = arr.reshape(-1).view(np.uint8).data  # zero-copy memoryview
        enc.pack_opaque(data)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def loads(self, data) -> Any:
        dec = self.decoder_cls(data)
        value = self.decode_value(dec)
        return value

    def loads_many(self, data, count: int) -> list:
        """Decode a fixed-arity sequence encoded by :meth:`dumps_many`."""
        dec = self.decoder_cls(data)
        return [self.decode_value(dec) for _ in range(count)]

    def decode_value(self, dec) -> Any:
        tag = dec.unpack_uint()
        try:
            code = TypeCode(tag)
        except ValueError as exc:
            raise TypeCodeError(f"unknown typecode {tag}") from exc
        if code is TypeCode.NONE:
            return None
        if code is TypeCode.BOOL:
            return dec.unpack_bool()
        if code is TypeCode.INT32:
            return dec.unpack_int()
        if code is TypeCode.INT64:
            return dec.unpack_hyper()
        if code is TypeCode.BIGINT:
            return int.from_bytes(bytes(dec.unpack_opaque()), "big",
                                  signed=True)
        if code is TypeCode.FLOAT64:
            return dec.unpack_double()
        if code is TypeCode.FLOAT32:
            return dec.unpack_float()
        if code is TypeCode.COMPLEX128:
            return complex(dec.unpack_double(), dec.unpack_double())
        if code is TypeCode.STRING:
            return dec.unpack_string()
        if code is TypeCode.BYTES:
            return bytes(dec.unpack_opaque())
        if code is TypeCode.NDARRAY:
            return self._decode_ndarray(dec)
        if code is TypeCode.LIST:
            return dec.unpack_array(lambda: self.decode_value(dec))
        if code is TypeCode.TUPLE:
            return tuple(dec.unpack_array(lambda: self.decode_value(dec)))
        if code is TypeCode.SET:
            return set(dec.unpack_array(lambda: self.decode_value(dec)))
        if code is TypeCode.DICT:
            n = dec.unpack_uint()
            out = {}
            for _ in range(n):
                k = self.decode_value(dec)
                out[k] = self.decode_value(dec)
            return out
        if code is TypeCode.EXCEPTION:
            remote_type = dec.unpack_string()
            message = dec.unpack_string()
            return (remote_type, message)
        if code is TypeCode.OBJREF:
            if _OBJREF_HOOKS is None:
                raise MarshalError("OBJREF seen but no hooks installed")
            return _OBJREF_HOOKS[2](bytes(dec.unpack_opaque()))
        raise TypeCodeError(f"unhandled typecode {code!r}")

    def _decode_ndarray(self, dec) -> np.ndarray:
        dtype_code = dec.unpack_uint()
        dtype_str = ARRAY_DTYPES.get(dtype_code)
        if dtype_str is None:
            raise TypeCodeError(f"unknown ndarray dtype code {dtype_code}")
        ndim = dec.unpack_uint()
        shape = tuple(dec.unpack_uhyper() for _ in range(ndim))
        raw = dec.unpack_opaque()
        dtype = np.dtype(dtype_str)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if len(raw) != expected:
            raise MarshalError(
                f"ndarray payload is {len(raw)} bytes, expected {expected}")
        # frombuffer is zero-copy; the result aliases the receive buffer and
        # is read-only, matching in-argument semantics.
        arr = np.frombuffer(raw, dtype=dtype)
        return arr.reshape(shape)


def _canonical_dtype_str(dtype: np.dtype) -> str:
    """Map a dtype to the explicit-little-endian key used in DTYPE_CODES."""
    if dtype == np.bool_:
        return "|b1"
    kind_char = dtype.kind + str(dtype.itemsize)
    return "<" + kind_char


_DEFAULT = Marshaller()


def dumps(value: Any) -> bytes:
    """Marshal ``value`` with the default (XDR) marshaller."""
    return _DEFAULT.dumps(value)


def loads(data) -> Any:
    """Unmarshal bytes produced by :func:`dumps`."""
    return _DEFAULT.loads(data)


# ---------------------------------------------------------------------------
# Multi-request batch records
# ---------------------------------------------------------------------------

#: Wire discriminators so a request record can never be mis-decoded as a
#: reply (or vice versa) after a framing desync.
_BATCH_REQUEST_KIND = 0xB0A0
_BATCH_REPLY_KIND = 0xB0A1

#: Hard cap on sub-requests per record: a corrupted count must fail fast
#: instead of driving a multi-gigabyte allocation loop.
MAX_BATCH_ITEMS = 65536


def _encode_batch(kind: int, items) -> bytes:
    enc = XdrEncoder()
    enc.pack_uint(kind)
    enc.pack_uint(len(items))
    for sub_id, payload in items:
        enc.pack_uhyper(sub_id)
        enc.pack_opaque(payload)
    return enc.getvalue()


def _decode_batch(kind: int, what: str, data) -> Tuple[Tuple[int, bytes], ...]:
    dec = XdrDecoder(data)
    try:
        seen_kind = dec.unpack_uint()
        if seen_kind != kind:
            raise MarshalError(
                f"not a {what} record (kind 0x{seen_kind:x}, "
                f"expected 0x{kind:x})")
        count = dec.unpack_uint()
        if count > MAX_BATCH_ITEMS:
            raise MarshalError(
                f"{what} claims {count} items (cap {MAX_BATCH_ITEMS})")
        items = tuple((dec.unpack_uhyper(), bytes(dec.unpack_opaque()))
                      for _ in range(count))
    except MarshalError:
        raise
    except Exception as exc:  # noqa: BLE001 - underflow/struct errors
        raise MarshalError(f"truncated {what} record: {exc}") from exc
    if not dec.done():
        raise MarshalError(f"{what} record has trailing bytes")
    return items


@dataclass(frozen=True)
class BatchRequest:
    """One multi-request wire record: ``(sub_id, payload)`` pairs.

    The payloads are opaque at this layer — the invoke path puts encoded
    invocations in them; the glue path capability-processes the whole
    encoded record *once*, amortising crypto/compression/integrity cost
    across every sub-request it carries.  ``sub_id`` is the in-batch
    correlation id: replies may come back in any order and are matched
    by id, never by position.
    """

    items: Tuple[Tuple[int, bytes], ...]

    @classmethod
    def of(cls, payloads: Sequence[bytes]) -> "BatchRequest":
        """Wrap ``payloads`` with their positions as sub ids."""
        return cls(tuple((i, bytes(p)) for i, p in enumerate(payloads)))

    def to_bytes(self) -> bytes:
        return _encode_batch(_BATCH_REQUEST_KIND, self.items)

    @classmethod
    def from_bytes(cls, data) -> "BatchRequest":
        return cls(_decode_batch(_BATCH_REQUEST_KIND, "BatchRequest", data))

    def __len__(self) -> int:
        return len(self.items)


def peek_batch_count(data) -> Optional[int]:
    """The member count of a :class:`BatchRequest` record, or ``None``
    when ``data`` is not one.

    Admission control needs the *cost* of an opaque payload before
    dispatch; the batch record's fixed ``(kind, count)`` header makes
    that a two-word peek instead of a full decode.
    """
    try:
        dec = XdrDecoder(data)
        if dec.unpack_uint() != _BATCH_REQUEST_KIND:
            return None
        count = dec.unpack_uint()
    except Exception:  # noqa: BLE001 - truncated/foreign payload
        return None
    if count > MAX_BATCH_ITEMS:
        return None
    return count


def encode_overload_info(retry_after: float, reason: str = "overload",
                         depth: int = 0) -> bytes:
    """Encode the payload of an overload (pushback) reply::

        XDR: double retry_after    (seconds; the server's backoff hint)
             string reason         ("queue_full" | "deadline" | ...)
             uint   depth          (queue depth at shed time, diagnostics)
    """
    enc = XdrEncoder()
    enc.pack_double(float(retry_after))
    enc.pack_string(reason)
    enc.pack_uint(max(int(depth), 0))
    return enc.getvalue()


def decode_overload_info(data) -> dict:
    """Decode :func:`encode_overload_info` bytes into a plain dict."""
    try:
        dec = XdrDecoder(data)
        return {"retry_after": dec.unpack_double(),
                "reason": dec.unpack_string(),
                "depth": dec.unpack_uint()}
    except Exception as exc:  # noqa: BLE001 - underflow/struct errors
        raise MarshalError(f"malformed overload info: {exc}") from exc


@dataclass(frozen=True)
class BatchReply:
    """The reply record mirroring :class:`BatchRequest`.

    Each payload is an ordinary reply envelope (OK / EXCEPTION / MOVED),
    so one failed sub-request never poisons its batch-mates — partial
    failure is per-item by construction.
    """

    items: Tuple[Tuple[int, bytes], ...]

    def to_bytes(self) -> bytes:
        return _encode_batch(_BATCH_REPLY_KIND, self.items)

    @classmethod
    def from_bytes(cls, data) -> "BatchReply":
        return cls(_decode_batch(_BATCH_REPLY_KIND, "BatchReply", data))

    def in_order(self, count: int) -> list:
        """The reply payloads for sub ids ``0..count-1``, in id order.

        Raises :class:`MarshalError` when an id is missing or duplicated
        — a server that drops or double-answers a sub-request must not
        silently cross-deliver results.
        """
        by_id = {}
        for sub_id, payload in self.items:
            if sub_id in by_id:
                raise MarshalError(f"duplicate sub id {sub_id} in batch "
                                   "reply")
            by_id[sub_id] = payload
        try:
            return [by_id[i] for i in range(count)]
        except KeyError as exc:
            raise MarshalError(
                f"batch reply is missing sub id {exc.args[0]} "
                f"(got {sorted(by_id)})") from None

    def __len__(self) -> int:
        return len(self.items)
