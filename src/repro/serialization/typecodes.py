"""Typecode tags for the self-describing marshaller.

Every marshalled value is prefixed by a one-byte :class:`TypeCode` so the
receiving side can decode without out-of-band schema.  The numeric values
are part of the wire format — append, never renumber.
"""

from __future__ import annotations

import enum

__all__ = ["TypeCode", "ARRAY_DTYPES", "DTYPE_CODES"]


class TypeCode(enum.IntEnum):
    """One-byte wire tags for marshalled values."""

    NONE = 0
    BOOL = 1
    INT32 = 2
    INT64 = 3
    BIGINT = 4          # arbitrary precision, two's-complement opaque
    FLOAT64 = 5
    STRING = 6          # UTF-8
    BYTES = 7
    LIST = 8
    TUPLE = 9
    DICT = 10
    NDARRAY = 11        # numpy array: dtype code + shape + raw buffer
    SET = 12
    COMPLEX128 = 13
    EXCEPTION = 14      # remote exception envelope: (type name, message)
    OBJREF = 15         # nested object reference (marshalled descriptor)
    FLOAT32 = 16


#: dtype-code <-> numpy dtype string for NDARRAY payloads.  Codes are wire
#: format; append only.  All dtypes are explicit-endian so a heterogeneous
#: pairing (XDR big-endian vs CDR little-endian hosts) stays well-defined.
ARRAY_DTYPES = {
    0: "<i1",
    1: "<i2",
    2: "<i4",
    3: "<i8",
    4: "<u1",
    5: "<u2",
    6: "<u4",
    7: "<u8",
    8: "<f4",
    9: "<f8",
    10: "<c8",
    11: "<c16",
    12: "|b1",
}

DTYPE_CODES = {v: k for k, v in ARRAY_DTYPES.items()}
