"""XDR (External Data Representation) encoder/decoder — RFC 1832 subset.

XDR is the encoding the paper's reference proto-object uses ("a TCP based
proto-object that uses XDR for data encoding", §3.1).  Properties:

* big-endian integers and IEEE-754 floats,
* every item padded to a 4-byte boundary,
* variable-length opaque/string = 4-byte length + bytes + pad.

Implemented from scratch on :class:`repro.util.bytesbuf.ByteBuffer` /
:class:`~repro.util.bytesbuf.ByteReader`; opaque bodies ride the buffer's
zero-copy path so a multi-megabyte array argument is never copied by the
codec itself.
"""

from __future__ import annotations

import struct

from repro.exceptions import MarshalError
from repro.util.bytesbuf import ByteBuffer, ByteReader

__all__ = ["XdrEncoder", "XdrDecoder"]

_PAD = b"\x00\x00\x00"

_S_INT = struct.Struct(">i")
_S_UINT = struct.Struct(">I")
_S_HYPER = struct.Struct(">q")
_S_UHYPER = struct.Struct(">Q")
_S_FLOAT = struct.Struct(">f")
_S_DOUBLE = struct.Struct(">d")

INT32_MIN = -(2 ** 31)
INT32_MAX = 2 ** 31 - 1
INT64_MIN = -(2 ** 63)
INT64_MAX = 2 ** 63 - 1


def _padding(n: int) -> bytes:
    r = n & 3
    return _PAD[: (4 - r) & 3] if r else b""


class XdrEncoder:
    """Streaming XDR encoder.

    All ``pack_*`` methods return ``self`` so encodings chain fluently::

        enc = XdrEncoder()
        enc.pack_uint(3).pack_string("add").pack_double(2.5)
        wire = enc.getvalue()
    """

    #: Short stable name used in protocol descriptors.
    name = "xdr"
    byteorder = "big"

    def __init__(self, buffer: ByteBuffer | None = None):
        self.buffer = buffer if buffer is not None else ByteBuffer()

    # -- integers ----------------------------------------------------------

    def pack_int(self, value: int) -> "XdrEncoder":
        if not INT32_MIN <= value <= INT32_MAX:
            raise MarshalError(f"int32 out of range: {value}")
        self.buffer.write(_S_INT.pack(value))
        return self

    def pack_uint(self, value: int) -> "XdrEncoder":
        if not 0 <= value <= 0xFFFFFFFF:
            raise MarshalError(f"uint32 out of range: {value}")
        self.buffer.write(_S_UINT.pack(value))
        return self

    def pack_hyper(self, value: int) -> "XdrEncoder":
        if not INT64_MIN <= value <= INT64_MAX:
            raise MarshalError(f"int64 out of range: {value}")
        self.buffer.write(_S_HYPER.pack(value))
        return self

    def pack_uhyper(self, value: int) -> "XdrEncoder":
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise MarshalError(f"uint64 out of range: {value}")
        self.buffer.write(_S_UHYPER.pack(value))
        return self

    def pack_bool(self, value: bool) -> "XdrEncoder":
        return self.pack_uint(1 if value else 0)

    # -- floats ------------------------------------------------------------

    def pack_float(self, value: float) -> "XdrEncoder":
        self.buffer.write(_S_FLOAT.pack(value))
        return self

    def pack_double(self, value: float) -> "XdrEncoder":
        self.buffer.write(_S_DOUBLE.pack(value))
        return self

    # -- opaque / strings ----------------------------------------------------

    def pack_fixed_opaque(self, data) -> "XdrEncoder":
        """Fixed-length opaque: bytes + pad, no length prefix."""
        self.buffer.write(data)
        self.buffer.write(_padding(len(data)))
        return self

    def pack_opaque(self, data) -> "XdrEncoder":
        """Variable-length opaque: uint32 length + bytes + pad."""
        self.pack_uint(len(data))
        return self.pack_fixed_opaque(data)

    def pack_string(self, value: str) -> "XdrEncoder":
        return self.pack_opaque(value.encode("utf-8"))

    # -- arrays --------------------------------------------------------------

    def pack_array(self, items, pack_item) -> "XdrEncoder":
        """Variable-length array: uint32 count then each item."""
        items = list(items)
        self.pack_uint(len(items))
        for item in items:
            pack_item(item)
        return self

    def getvalue(self) -> bytes:
        return self.buffer.getvalue()


class XdrDecoder:
    """Streaming XDR decoder over a zero-copy :class:`ByteReader`."""

    name = "xdr"
    byteorder = "big"

    def __init__(self, data):
        self.reader = data if isinstance(data, ByteReader) else ByteReader(data)

    def _skip_pad(self, n: int) -> None:
        r = n & 3
        if r:
            self.reader.skip(4 - r)

    # -- integers ----------------------------------------------------------

    def unpack_int(self) -> int:
        return _S_INT.unpack(self.reader.read(4))[0]

    def unpack_uint(self) -> int:
        return _S_UINT.unpack(self.reader.read(4))[0]

    def unpack_hyper(self) -> int:
        return _S_HYPER.unpack(self.reader.read(8))[0]

    def unpack_uhyper(self) -> int:
        return _S_UHYPER.unpack(self.reader.read(8))[0]

    def unpack_bool(self) -> bool:
        v = self.unpack_uint()
        if v not in (0, 1):
            raise MarshalError(f"XDR bool must be 0 or 1, got {v}")
        return bool(v)

    # -- floats ------------------------------------------------------------

    def unpack_float(self) -> float:
        return _S_FLOAT.unpack(self.reader.read(4))[0]

    def unpack_double(self) -> float:
        return _S_DOUBLE.unpack(self.reader.read(8))[0]

    # -- opaque / strings ----------------------------------------------------

    def unpack_fixed_opaque(self, n: int) -> memoryview:
        out = self.reader.read(n)
        self._skip_pad(n)
        return out

    def unpack_opaque(self) -> memoryview:
        n = self.unpack_uint()
        return self.unpack_fixed_opaque(n)

    def unpack_string(self) -> str:
        return bytes(self.unpack_opaque()).decode("utf-8")

    # -- arrays --------------------------------------------------------------

    def unpack_array(self, unpack_item) -> list:
        n = self.unpack_uint()
        return [unpack_item() for _ in range(n)]

    def done(self) -> bool:
        return self.reader.remaining == 0
