"""Deterministic network simulator.

This package replaces the paper's physical testbed (Sun Ultra-10
workstations on 10 Mbps Ethernet and 155 Mbps ATM, §5) with a virtual-time
model:

* :mod:`repro.simnet.linktypes` — link cost models (latency + bandwidth)
  and the CPU cost model used to charge capability processing time,
  calibrated to 1999-era hardware.
* :mod:`repro.simnet.clock` — the virtual clock.
* :mod:`repro.simnet.topology` — machines, LANs, sites, links, and routes.
* :mod:`repro.simnet.simulator` — event queue plus synchronous transfer
  accounting; every byte that crosses the simulated network is charged
  wire time, and every capability transformation is charged CPU time.
* :mod:`repro.simnet.presets` — ready-made topologies, including the
  paper's Figure 4 testbed.
* :mod:`repro.simnet.stats` — per-link transfer statistics.

Design note: the *data* always really moves (transports hand actual bytes
to the peer); the simulator only decides how much virtual time that
movement costs.  This keeps the full marshalling/capability code path
honest while making the Figure 5 bandwidth curves deterministic.
"""

from repro.simnet.clock import VirtualClock
from repro.simnet.linktypes import (
    ATM_155,
    CpuModel,
    ETHERNET_10,
    ETHERNET_100,
    LinkModel,
    SHARED_MEMORY,
    ULTRA10_CPU,
    WAN_T3,
)
from repro.simnet.topology import LAN, Machine, Site, Topology
from repro.simnet.simulator import NetworkSimulator
from repro.simnet.presets import paper_testbed, two_machine_lan
from repro.simnet.stats import LinkStats, TransferRecord

__all__ = [
    "VirtualClock",
    "LinkModel",
    "CpuModel",
    "ETHERNET_10",
    "ETHERNET_100",
    "ATM_155",
    "WAN_T3",
    "SHARED_MEMORY",
    "ULTRA10_CPU",
    "Machine",
    "LAN",
    "Site",
    "Topology",
    "NetworkSimulator",
    "paper_testbed",
    "two_machine_lan",
    "LinkStats",
    "TransferRecord",
]
