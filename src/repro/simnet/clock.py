"""Virtual clock for the network simulator.

Implements the same ``now()`` protocol as
:class:`repro.util.timing.WallClock`, so time-dependent components (the
lease capability, the load monitor) run unchanged under simulation.
"""

from __future__ import annotations

from repro.exceptions import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic virtual time in seconds; advanced explicitly."""

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("start time must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by {dt} (< 0)")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Jump forward to absolute time ``t`` (no-op if in the past is
        requested — the event queue may deliver same-time events)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(t={self._now:.9f})"
