"""Link and CPU cost models, calibrated to the paper's 1999 testbed.

The paper ran on Sun Ultra-10 workstations (SunOS 5.6) over 10 Mbps
Ethernet and 155 Mbps ATM (§5).  A :class:`LinkModel` charges each message

    ``latency + nbytes / bandwidth``

seconds of virtual wire time, with an optional fixed per-message software
overhead standing in for the OS/protocol-stack cost that dominates small
messages (and which is why the paper's bandwidth curves climb over four
decades of message size before saturating).

The :class:`CpuModel` charges virtual seconds for the byte-touching work a
request path performs *besides* the wire: serialization copies,
encryption, MAC computation, compression.  Calibration: link models carry
the *end-to-end achievable* rates of the era (user-space TCP over OC-3 ATM
on SunOS delivered well under line rate once the ORB stack is included —
the paper's own curves saturate far below 155 Mbps), and the crypto
constants match exportable-grade software crypto on a 300 MHz
UltraSPARC-IIi (stream scrambler ≈ 80 MB/s, MD5-class digest ≈ 45 MB/s,
memcpy ≈ 180 MB/s).  With these numbers the paper's central observation —
network overhead dominates capability overhead even on ATM, §5 — emerges
from the model rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkModel",
    "CpuModel",
    "ETHERNET_10",
    "ETHERNET_100",
    "ATM_155",
    "WAN_T3",
    "GIGABIT_1000",
    "TCP_LOOPBACK",
    "SHARED_MEMORY",
    "ULTRA10_CPU",
]


@dataclass(frozen=True)
class LinkModel:
    """Cost model for one link class.

    Attributes
    ----------
    name:
        Human-readable identifier, also used in stats tables.
    bandwidth_bps:
        Payload bandwidth in bits per second.
    latency_s:
        One-way propagation plus switching latency per message.
    per_message_s:
        Fixed software overhead charged per message on top of latency
        (system-call, interrupt, and protocol-stack costs).
    """

    name: str
    bandwidth_bps: float
    latency_s: float
    per_message_s: float = 0.0

    def __post_init__(self):
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0 or self.per_message_s < 0:
            raise ValueError("latencies must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Virtual seconds to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (self.latency_s + self.per_message_s
                + (nbytes * 8.0) / self.bandwidth_bps)

    def effective_bandwidth_mbps(self, nbytes: int) -> float:
        """Achieved Mbps for a message of ``nbytes`` (the figure-5 metric)."""
        t = self.transfer_time(nbytes)
        return (nbytes * 8.0) / t / 1e6 if t > 0 else float("inf")


# -- The paper's physical media -------------------------------------------

#: 10 Mbps shared Ethernet, the campus workhorse of 1999.
ETHERNET_10 = LinkModel("ethernet-10", bandwidth_bps=10e6,
                        latency_s=0.4e-3, per_message_s=0.6e-3)

#: 100 Mbps switched Ethernet (not in the paper; useful for ablations).
ETHERNET_100 = LinkModel("ethernet-100", bandwidth_bps=100e6,
                         latency_s=0.15e-3, per_message_s=0.35e-3)

#: 155 Mbps ATM (OC-3), the paper's fast network.  80 Mbps is the
#: end-to-end payload rate a user-space TCP/XDR stack achieved through
#: AAL5 on this hardware — the rate the paper's curves saturate at.
ATM_155 = LinkModel("atm-155", bandwidth_bps=80e6,
                    latency_s=0.2e-3, per_message_s=0.5e-3)

#: A 45 Mbps T3 WAN hop with real propagation delay, for the
#: cross-country client of the motivating scenario.
WAN_T3 = LinkModel("wan-t3", bandwidth_bps=45e6,
                   latency_s=30e-3, per_message_s=0.5e-3)

#: Forward-looking gigabit-class fabric (end-to-end achievable), used by
#: the fabric-sweep ablation to ask where the paper's "capabilities are
#: nearly free" claim stops holding as networks outpace CPUs.
GIGABIT_1000 = LinkModel("gigabit-1000", bandwidth_bps=600e6,
                         latency_s=0.05e-3, per_message_s=0.15e-3)

#: TCP through the loopback stack on one machine: memcpy-bound but still
#: paying protocol-stack costs — used when a *network* protocol happens
#: to connect two contexts on the same machine.
TCP_LOOPBACK = LinkModel("tcp-loopback", bandwidth_bps=400e6,
                         latency_s=0.15e-3, per_message_s=0.25e-3)

#: Same-machine "link": a memcpy through a shared segment.  ~180 MB/s
#: copy bandwidth and tens of microseconds of synchronization — more than
#: an order of magnitude above the network links, matching Figure 5's
#: shared-memory curve.
SHARED_MEMORY = LinkModel("shared-memory", bandwidth_bps=180e6 * 8,
                          latency_s=15e-6, per_message_s=25e-6)


@dataclass(frozen=True)
class CpuModel:
    """Per-byte CPU costs (seconds/byte) plus per-operation setup costs.

    ``speed_factor`` scales every cost: a machine with ``speed_factor=2``
    is twice as fast as the reference Ultra-10.
    """

    name: str
    memcpy_per_byte: float
    cipher_per_byte: float        # keystream-class cipher (DES-era)
    block_cipher_per_byte: float  # heavier block cipher
    digest_per_byte: float        # MD5/SHA-class digest
    compress_per_byte: float      # dictionary compressor
    per_op_s: float               # fixed setup per operation
    speed_factor: float = 1.0

    def scaled(self, speed_factor: float) -> "CpuModel":
        """A copy of this model for a machine of a different speed."""
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        return CpuModel(
            name=f"{self.name}x{speed_factor:g}",
            memcpy_per_byte=self.memcpy_per_byte,
            cipher_per_byte=self.cipher_per_byte,
            block_cipher_per_byte=self.block_cipher_per_byte,
            digest_per_byte=self.digest_per_byte,
            compress_per_byte=self.compress_per_byte,
            per_op_s=self.per_op_s,
            speed_factor=speed_factor,
        )

    def _cost(self, per_byte: float, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return (self.per_op_s + per_byte * nbytes) / self.speed_factor

    def memcpy_cost(self, nbytes: int) -> float:
        return self._cost(self.memcpy_per_byte, nbytes)

    def cipher_cost(self, nbytes: int) -> float:
        return self._cost(self.cipher_per_byte, nbytes)

    def block_cipher_cost(self, nbytes: int) -> float:
        return self._cost(self.block_cipher_per_byte, nbytes)

    def digest_cost(self, nbytes: int) -> float:
        return self._cost(self.digest_per_byte, nbytes)

    def compress_cost(self, nbytes: int) -> float:
        return self._cost(self.compress_per_byte, nbytes)


#: Reference CPU: 300 MHz UltraSPARC-IIi (Ultra-10).
#: memcpy ≈ 180 MB/s, exportable stream scrambler ≈ 80 MB/s,
#: DES-class block cipher ≈ 10 MB/s, MD5 ≈ 45 MB/s, LZ ≈ 4 MB/s.
ULTRA10_CPU = CpuModel(
    name="ultra10",
    memcpy_per_byte=1.0 / 180e6,
    cipher_per_byte=1.0 / 80e6,
    block_cipher_per_byte=1.0 / 10e6,
    digest_per_byte=1.0 / 45e6,
    compress_per_byte=1.0 / 4e6,
    per_op_s=40e-6,
)
