"""Ready-made topologies, including the paper's Figure 4 testbed.

:func:`paper_testbed` reproduces the experimental setup of §5 / Figure 4:

* client context on machine **M0**;
* server object starts on **M1**, then "pseudo-migrates" to **M2**, **M3**,
  and finally **M0** itself;
* the logical structure makes a different protocol win at each stop:

  - M1 sits at a *different site*, so both the security and timeout
    capabilities are applicable → glue(timeout+security) is selected;
  - M2 is on the *same site but a different LAN* (same campus — "do not
    need to use secure communication"), so only timeout applies →
    glue(timeout);
  - M3 is on the *same LAN* as M0, so no capability applies, and shared
    memory is inapplicable (different machines) → plain Nexus/TCP;
  - M0 is the *same machine* → shared memory.

* physically, all four machines are plugged into the same network fabric
  (the experiments ran once over Ethernet, once over ATM), so the
  `fabric` argument picks the link model used for every non-loopback hop,
  exactly as the paper re-ran one experiment per medium.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simnet.linktypes import ATM_155, ETHERNET_10, LinkModel
from repro.simnet.topology import Machine, Topology

__all__ = ["PaperTestbed", "paper_testbed", "two_machine_lan"]


@dataclass(frozen=True)
class PaperTestbed:
    """The Figure 4 machines plus their topology."""

    topology: Topology
    m0: Machine  # client machine (and final migration target S4)
    m1: Machine  # S1: remote site
    m2: Machine  # S2: same site, different LAN
    m3: Machine  # S3: same LAN as the client

    @property
    def machines(self):
        return (self.m0, self.m1, self.m2, self.m3)


def paper_testbed(fabric: LinkModel = ATM_155) -> PaperTestbed:
    """Build the §5 experimental topology over the given physical fabric."""
    topo = Topology()
    campus = topo.add_site("campus")
    remote_site = topo.add_site("remote-lab")

    lan_client = topo.add_lan("campus-lan-1", campus, fabric)
    lan_campus2 = topo.add_lan("campus-lan-2", campus, fabric)
    lan_remote = topo.add_lan("remote-lan", remote_site, fabric)

    # One fabric link between each pair of LANs (same physical medium).
    topo.connect(lan_client, lan_campus2, fabric)
    topo.connect(lan_client, lan_remote, fabric)
    topo.connect(lan_campus2, lan_remote, fabric)

    m0 = topo.add_machine("M0", lan_client)
    m3 = topo.add_machine("M3", lan_client)
    m2 = topo.add_machine("M2", lan_campus2)
    m1 = topo.add_machine("M1", lan_remote)
    return PaperTestbed(topology=topo, m0=m0, m1=m1, m2=m2, m3=m3)


def two_machine_lan(fabric: LinkModel = ETHERNET_10) -> Topology:
    """Minimal topology: two machines on one LAN (unit-test workhorse)."""
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, fabric)
    topo.add_machine("A", lan)
    topo.add_machine("B", lan)
    return topo
