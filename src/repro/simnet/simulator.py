"""The network simulator: event queue + synchronous transfer accounting.

Two usage styles, both over the same :class:`VirtualClock`:

* **Synchronous** (what the RPC path uses): :meth:`NetworkSimulator.transfer`
  charges the clock for one message immediately and returns its duration.
  A remote invocation is request-transfer, server CPU, reply-transfer —
  executed inline, with virtual time accumulating.

* **Event-driven** (what the cluster workload harness uses):
  :meth:`~NetworkSimulator.schedule` posts a callback at a future virtual
  time and :meth:`~NetworkSimulator.run` drains the queue in timestamp
  order; :meth:`~NetworkSimulator.post_message` is transfer-as-an-event.

CPU cost accounting (:meth:`~NetworkSimulator.charge_cpu`) lives here as
well: capabilities report "I digested N bytes" and the simulator converts
that to virtual seconds using the *acting machine's* CPU model.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.exceptions import DeliveryError, SimulationError
from repro.simnet.clock import VirtualClock
from repro.simnet.stats import TransferLog, TransferRecord
from repro.simnet.topology import Machine, Topology

__all__ = ["NetworkSimulator"]


class NetworkSimulator:
    """Virtual-time message delivery over a :class:`Topology`.

    ``congestion=True`` enables the queueing model: each link tracks its
    recent utilization (busy seconds, exponentially decayed over
    ``congestion_window`` virtual seconds) and messages crossing a
    loaded link are delayed by the M/M/1-flavoured factor
    ``1 / (1 - min(rho, 0.9))``.  Deterministic, like everything else —
    the same message sequence always produces the same delays."""

    def __init__(self, topology: Topology, clock: VirtualClock | None = None,
                 keep_records: int = 10_000, congestion: bool = False,
                 congestion_window: float = 1.0, fault_plan=None):
        self.topology = topology
        self.clock = clock if clock is not None else VirtualClock()
        self.log = TransferLog(keep_records=keep_records)
        #: Optional :class:`repro.faults.plan.FaultPlan` consulted on
        #: every transfer; settable at any time (including mid-run).
        self.fault_plan = fault_plan
        self._queue: list = []
        self._seq = itertools.count()
        self.cpu_seconds = 0.0
        self.congestion = congestion
        if congestion_window <= 0:
            raise SimulationError("congestion window must be positive")
        self.congestion_window = congestion_window
        # link name -> (decayed busy seconds, last update time)
        self._link_busy: dict = {}

    # ------------------------------------------------------------------
    # congestion accounting
    # ------------------------------------------------------------------

    def link_utilization(self, link_name: str) -> float:
        """Recent utilization of a link in [0, 1] (0 without congestion
        accounting or traffic)."""
        busy, last = self._link_busy.get(link_name, (0.0, 0.0))
        now = self.clock.now()
        if now > last:
            busy *= 2.0 ** (-(now - last) / self.congestion_window)
        return min(busy / self.congestion_window, 1.0)

    def _congestion_factor(self, link) -> float:
        rho = min(self.link_utilization(link.name), 0.9)
        return 1.0 / (1.0 - rho)

    def _record_busy(self, link, seconds: float) -> None:
        busy, last = self._link_busy.get(link.name, (0.0, 0.0))
        now = self.clock.now()
        if now > last:
            busy *= 2.0 ** (-(now - last) / self.congestion_window)
        self._link_busy[link.name] = (busy + seconds, now)

    # ------------------------------------------------------------------
    # synchronous accounting (RPC path)
    # ------------------------------------------------------------------

    def _route(self, src: Machine, dst: Machine, loopback=None):
        """Route for a message; a same-machine message may override the
        default loopback model (e.g. a network protocol talking to itself
        pays TCP-loopback cost, not raw shared-memory cost)."""
        if loopback is not None and src.name == dst.name:
            return [loopback]
        return self.topology.route(src, dst)

    def transfer_duration(self, src: Machine, dst: Machine,
                          nbytes: int, loopback=None) -> float:
        """Virtual seconds for one ``nbytes`` message, store-and-forward
        across each link on the route (including any congestion delay at
        current utilization)."""
        links = self._route(src, dst, loopback)
        if not self.congestion:
            return sum(link.transfer_time(nbytes) for link in links)
        return sum(link.transfer_time(nbytes)
                   * self._congestion_factor(link) for link in links)

    def _consult_faults(self, src: Machine, dst: Machine,
                        nbytes: int) -> float:
        """Ask the fault plan about one transfer.

        Returns extra delay seconds; raises :class:`DeliveryError` for a
        dropped (or partitioned, or disconnected) message.  The clock is
        *not* advanced here — callers fold the delay into the message
        duration so the loss shows up in the transfer accounting.
        """
        if self.fault_plan is None:
            return 0.0
        decision = self.fault_plan.decide_link(src.name, dst.name, nbytes)
        if decision is None:
            return 0.0
        if decision.kind == "delay":
            return decision.delay
        # drop / disconnect / partition: the bytes never arrive.
        raise DeliveryError(
            f"injected {decision.kind}: {src.name} -> {dst.name} "
            f"({nbytes} bytes lost)")

    def transfer(self, src: Machine, dst: Machine, nbytes: int,
                 loopback=None) -> float:
        """Charge the clock for one message now; returns its duration."""
        links = tuple(self._route(src, dst, loopback))
        duration = self._consult_faults(src, dst, nbytes)
        for link in links:
            base = link.transfer_time(nbytes)
            if self.congestion:
                base *= self._congestion_factor(link)
                self._record_busy(link, base)
            duration += base
        record = TransferRecord(
            src=src.name, dst=dst.name, nbytes=nbytes,
            start_time=self.clock.now(), duration=duration, links=links)
        self.clock.advance(duration)
        self.log.add(record)
        return duration

    def charge_cpu(self, machine: Machine, seconds: float) -> float:
        """Charge ``seconds`` of CPU work on ``machine`` to the clock.

        The machine's ``cpu.speed_factor`` is already applied by the
        CpuModel cost methods; this just advances time and keeps a
        cumulative counter for reporting.
        """
        if seconds < 0:
            raise SimulationError("negative CPU charge")
        self.clock.advance(seconds)
        self.cpu_seconds += seconds
        return seconds

    # ------------------------------------------------------------------
    # event-driven mode
    # ------------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past")
        heapq.heappush(self._queue,
                       (self.clock.now() + delay, next(self._seq), action))

    def post_message(self, src: Machine, dst: Machine, nbytes: int,
                     on_delivered: Callable[[TransferRecord], None]) -> None:
        """Deliver a message as an event: ``on_delivered(record)`` fires
        after the route's transfer time elapses.

        A fault-plan drop raises :class:`DeliveryError` immediately (the
        poster finds out synchronously, like a failed enqueue); injected
        delay stretches the delivery time.
        """
        links = tuple(self.topology.route(src, dst))
        duration = self._consult_faults(src, dst, nbytes)
        for link in links:
            base = link.transfer_time(nbytes)
            if self.congestion:
                base *= self._congestion_factor(link)
                self._record_busy(link, base)
            duration += base
        record = TransferRecord(
            src=src.name, dst=dst.name, nbytes=nbytes,
            start_time=self.clock.now(), duration=duration, links=links)

        def deliver():
            self.log.add(record)
            on_delivered(record)

        self.schedule(duration, deliver)

    def run(self, until: Optional[float] = None,
            max_events: int = 1_000_000) -> int:
        """Drain the event queue in timestamp order.

        Stops when the queue empties, virtual time would pass ``until``,
        or ``max_events`` have fired (guard against runaway self-scheduling
        workloads).  Returns the number of events processed.
        """
        processed = 0
        while self._queue and processed < max_events:
            t, _seq, action = self._queue[0]
            if until is not None and t > until:
                break
            heapq.heappop(self._queue)
            self.clock.advance_to(t)
            action()
            processed += 1
        if until is not None:
            # Simulated time always reaches the horizon, whether or not
            # events remain beyond it.
            self.clock.advance_to(until)
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)
