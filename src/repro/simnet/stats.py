"""Transfer statistics for the simulator.

Every simulated message leaves a :class:`TransferRecord`; aggregated
:class:`LinkStats` feed the benchmark reports and the load monitor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.stats import OnlineStats

__all__ = ["TransferRecord", "LinkStats", "TransferLog"]


@dataclass(frozen=True)
class TransferRecord:
    """One simulated message delivery."""

    src: str
    dst: str
    nbytes: int
    start_time: float
    duration: float
    links: tuple

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    @property
    def bandwidth_mbps(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.nbytes * 8.0 / self.duration / 1e6


@dataclass
class LinkStats:
    """Aggregate per-link counters."""

    name: str
    messages: int = 0
    bytes: int = 0
    busy_seconds: float = 0.0

    def record(self, nbytes: int, duration: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.busy_seconds += duration


class TransferLog:
    """Bounded log of transfers plus per-link aggregates.

    ``keep_records=0`` disables the per-record log (aggregates are always
    maintained), which the long-running load-balancing benchmarks use.
    """

    def __init__(self, keep_records: int = 10_000):
        self.keep_records = keep_records
        self.records: List[TransferRecord] = []
        self.per_link: Dict[str, LinkStats] = {}
        self.total_messages = 0
        self.total_bytes = 0
        self.durations = OnlineStats()

    def add(self, record: TransferRecord) -> None:
        self.total_messages += 1
        self.total_bytes += record.nbytes
        self.durations.add(record.duration)
        if self.keep_records and len(self.records) < self.keep_records:
            self.records.append(record)
        for link in record.links:
            stats = self.per_link.get(link.name)
            if stats is None:
                stats = self.per_link[link.name] = LinkStats(link.name)
            stats.record(record.nbytes, record.duration)

    def clear(self) -> None:
        self.records.clear()
        self.per_link.clear()
        self.total_messages = 0
        self.total_bytes = 0
        self.durations = OnlineStats()
