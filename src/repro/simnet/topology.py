"""Simulated topology: machines, LANs, sites, links, and routing.

The granularity matches what the paper's applicability predicates care
about (§4.3): *same machine*, *same LAN*, *same site* (campus), or
farther.  Machines belong to LANs, LANs belong to sites.  Links connect
LANs (intra-LAN traffic uses the LAN's own link model; the loopback
"link" for same-machine traffic is the shared-memory model).

Routing is shortest-path by hop count over the LAN graph (plain BFS — the
topologies of interest are a handful of LANs, so this needs no external
graph library).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import TopologyError
from repro.simnet.linktypes import (
    CpuModel,
    LinkModel,
    SHARED_MEMORY,
    ULTRA10_CPU,
)

__all__ = ["Machine", "LAN", "Site", "Topology"]


@dataclass(frozen=True)
class Site:
    """An administrative site (campus); the trust boundary of §4.3."""

    name: str


@dataclass(frozen=True)
class LAN:
    """A local-area network segment within a site."""

    name: str
    site: Site
    link: LinkModel

    def __post_init__(self):
        if not self.name:
            raise TopologyError("LAN needs a name")


@dataclass(frozen=True)
class Machine:
    """A host: the unit object migration moves servants between."""

    name: str
    lan: LAN
    cpu: CpuModel = ULTRA10_CPU

    @property
    def site(self) -> Site:
        return self.lan.site

    def locality_to(self, other: "Machine") -> str:
        """Classify the relationship: ``same-machine`` / ``same-lan`` /
        ``same-site`` / ``remote``.  This string is what applicability
        predicates dispatch on."""
        if self.name == other.name:
            return "same-machine"
        if self.lan.name == other.lan.name:
            return "same-lan"
        if self.site.name == other.site.name:
            return "same-site"
        return "remote"


class Topology:
    """Mutable registry of sites/LANs/machines plus the inter-LAN graph."""

    def __init__(self):
        self.sites: Dict[str, Site] = {}
        self.lans: Dict[str, LAN] = {}
        self.machines: Dict[str, Machine] = {}
        # adjacency: lan name -> [(peer lan name, link model)]
        self._links: Dict[str, List[Tuple[str, LinkModel]]] = {}
        self.loopback: LinkModel = SHARED_MEMORY

    # -- construction -------------------------------------------------------

    def add_site(self, name: str) -> Site:
        if name in self.sites:
            raise TopologyError(f"site {name!r} already exists")
        site = Site(name)
        self.sites[name] = site
        return site

    def add_lan(self, name: str, site: Site, link: LinkModel) -> LAN:
        if name in self.lans:
            raise TopologyError(f"LAN {name!r} already exists")
        if site.name not in self.sites:
            raise TopologyError(f"unknown site {site.name!r}")
        lan = LAN(name, site, link)
        self.lans[name] = lan
        self._links.setdefault(name, [])
        return lan

    def add_machine(self, name: str, lan: LAN,
                    cpu: CpuModel = ULTRA10_CPU) -> Machine:
        if name in self.machines:
            raise TopologyError(f"machine {name!r} already exists")
        if lan.name not in self.lans:
            raise TopologyError(f"unknown LAN {lan.name!r}")
        machine = Machine(name, lan, cpu)
        self.machines[name] = machine
        return machine

    def connect(self, lan_a: LAN, lan_b: LAN, link: LinkModel) -> None:
        """Join two LANs with a bidirectional link."""
        for lan in (lan_a, lan_b):
            if lan.name not in self.lans:
                raise TopologyError(f"unknown LAN {lan.name!r}")
        if lan_a.name == lan_b.name:
            raise TopologyError("cannot connect a LAN to itself")
        self._links[lan_a.name].append((lan_b.name, link))
        self._links[lan_b.name].append((lan_a.name, link))

    # -- queries -------------------------------------------------------------

    def machine(self, name: str) -> Machine:
        try:
            return self.machines[name]
        except KeyError:
            raise TopologyError(f"unknown machine {name!r}") from None

    def route(self, src: Machine, dst: Machine) -> List[LinkModel]:
        """The ordered links a message crosses from ``src`` to ``dst``.

        Same machine -> ``[loopback]``.  Same LAN -> ``[lan.link]``.
        Otherwise BFS over the inter-LAN graph; each inter-LAN hop
        contributes its connecting link, plus the source and destination
        LAN segments themselves.
        """
        if src.name not in self.machines or dst.name not in self.machines:
            raise TopologyError("route between unregistered machines")
        if src.name == dst.name:
            return [self.loopback]
        if src.lan.name == dst.lan.name:
            return [src.lan.link]

        # BFS over LANs, tracking the links crossed.
        start, goal = src.lan.name, dst.lan.name
        frontier = deque([start])
        came_from: Dict[str, Tuple[str, LinkModel]] = {start: (start, None)}
        while frontier:
            here = frontier.popleft()
            if here == goal:
                break
            for peer, link in self._links.get(here, ()):
                if peer not in came_from:
                    came_from[peer] = (here, link)
                    frontier.append(peer)
        if goal not in came_from:
            raise TopologyError(
                f"no route from LAN {start!r} to LAN {goal!r}")
        hops: List[LinkModel] = []
        node = goal
        while node != start:
            node, link = came_from[node]
            hops.append(link)
        hops.reverse()
        # Source and destination LAN segments carry the message too.
        return [src.lan.link, *hops, dst.lan.link]

    def locality(self, src_name: str, dst_name: str) -> str:
        return self.machine(src_name).locality_to(self.machine(dst_name))
