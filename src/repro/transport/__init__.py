"""Byte-moving transports underneath the protocol objects.

A *transport* turns an address into a duplex, message-framed
:class:`~repro.transport.base.Channel`.  Four implementations:

* :mod:`repro.transport.inproc` — queue pair inside one process; the
  baseline used by unit tests and the wall-clock benchmarks.
* :mod:`repro.transport.shm` — single-producer/single-consumer byte ring
  with blocking semantics, modelling a shared-memory segment between two
  contexts on one machine.
* :mod:`repro.transport.tcp` — real TCP sockets (loopback), with the
  length-prefixed framing of :mod:`repro.transport.framing`.
* :mod:`repro.transport.simtransport` — delivery through the
  :class:`~repro.simnet.simulator.NetworkSimulator`: bytes arrive intact
  and instantly, but each message charges virtual wire time for the
  route between the two machines.

Transports register by name in :data:`repro.transport.base.TRANSPORTS` so
protocol descriptors can reference them portably.
"""

from repro.transport.base import (
    Channel,
    Listener,
    Transport,
    TRANSPORTS,
    get_transport,
    register_transport,
)
from repro.transport.framing import read_frame, write_frame
from repro.transport.inproc import InProcTransport
from repro.transport.shm import ShmRing, ShmTransport
from repro.transport.tcp import TcpTransport
from repro.transport.simtransport import (
    SimChannel,
    SimShmTransport,
    SimTransport,
)

__all__ = [
    "Channel",
    "Listener",
    "Transport",
    "TRANSPORTS",
    "get_transport",
    "register_transport",
    "read_frame",
    "write_frame",
    "InProcTransport",
    "ShmRing",
    "ShmTransport",
    "TcpTransport",
    "SimChannel",
    "SimTransport",
    "SimShmTransport",
]
