"""Transport abstractions: channels, listeners, transports, registry.

A :class:`Channel` is duplex and **message-oriented**: ``send`` delivers a
whole message; ``recv`` returns a whole message.  Framing over stream
media is the transport's job, not the caller's.

Addresses are plain dicts (the proto-data of §3.1 is deliberately
schemaless — each proto-class knows its own address shape); they must be
marshallable because they travel inside object references.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.exceptions import TransportError

__all__ = [
    "Channel",
    "Listener",
    "Transport",
    "TRANSPORTS",
    "register_transport",
    "get_transport",
]


class Channel(abc.ABC):
    """Duplex message pipe between two parties."""

    @abc.abstractmethod
    def send(self, data) -> None:
        """Send one message (bytes-like).  Raises ``ChannelClosedError``
        if the channel is closed."""

    @abc.abstractmethod
    def recv(self, timeout: Optional[float] = None) -> bytes:
        """Block for the next message.  ``timeout`` in seconds; ``None``
        blocks indefinitely.  Raises ``ChannelClosedError`` when the peer
        has closed and no data remains, ``TransportError`` on timeout."""

    @abc.abstractmethod
    def close(self) -> None:
        """Close both directions; idempotent."""

    @property
    @abc.abstractmethod
    def closed(self) -> bool:
        ...

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener(abc.ABC):
    """Server-side accept point."""

    @abc.abstractmethod
    def accept(self, timeout: Optional[float] = None) -> Channel:
        """Block for the next inbound connection."""

    @abc.abstractmethod
    def close(self) -> None:
        ...

    @property
    @abc.abstractmethod
    def address(self) -> dict:
        """The address clients should ``connect`` to (marshallable)."""


class Transport(abc.ABC):
    """Factory for listeners and outbound channels."""

    #: Registry key; also referenced from protocol descriptors.
    name: str = ""

    @abc.abstractmethod
    def listen(self, address: Optional[dict] = None) -> Listener:
        """Open an accept point; ``address`` may be partial (e.g. port 0)."""

    @abc.abstractmethod
    def connect(self, address: dict) -> Channel:
        """Open a channel to a listener's address."""


TRANSPORTS: Dict[str, Transport] = {}


def register_transport(transport: Transport,
                       replace: bool = False) -> Transport:
    if not transport.name:
        raise ValueError("transport must define a name")
    if transport.name in TRANSPORTS and not replace:
        raise ValueError(f"transport {transport.name!r} already registered")
    TRANSPORTS[transport.name] = transport
    return transport


def get_transport(name: str) -> Transport:
    try:
        return TRANSPORTS[name]
    except KeyError:
        raise TransportError(f"unknown transport {name!r}") from None
