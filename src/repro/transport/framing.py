"""Length-prefixed framing for stream transports.

Frame layout (all integers big-endian)::

    0      2      3      4          8         10
    +------+------+------+----------+----------+---------...---+
    | 'HF' | ver  | flag | length   | hdr csum | payload       |
    +------+------+------+----------+----------+---------------+

``hdr csum`` is the Fletcher-16 of the first 8 bytes, so a desynchronized
stream is detected immediately instead of misreading a gigantic bogus
length and stalling.  Payload integrity is the business of the integrity
capability, not the framing layer — 1999 wisdom and modern wisdom agree
the wire CRC belongs to the layer that owns the failure semantics.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.exceptions import ChannelClosedError, FramingError
from repro.util.checksums import fletcher16

__all__ = ["write_frame", "read_frame", "read_frame_ex", "MAX_FRAME",
           "HEADER", "FLAG_BATCH", "buffer_read_exact"]

MAGIC = b"HF"
VERSION = 1
HEADER = struct.Struct(">2sBBI")
CSUM = struct.Struct(">H")

#: Frame-flag bit: the payload is a multi-request batch record
#: (:class:`repro.serialization.marshal.BatchRequest` /
#: ``BatchReply``) rather than a single message.  Readers that predate
#: the bit still reject such frames cleanly — the record's own kind tag
#: fails their payload decode — but flag-aware readers can route batch
#: frames without touching the payload.
FLAG_BATCH = 0x01

#: Refuse frames above 256 MiB — far beyond any benchmark payload and a
#: hard stop against desync-induced giant allocations.
MAX_FRAME = 256 * 1024 * 1024


def write_frame(write: Callable[[bytes], None], payload_chunks,
                flags: int = 0) -> int:
    """Emit one frame via ``write``; returns total bytes written.

    ``payload_chunks`` is an iterable of bytes-likes (a gather list from
    :meth:`repro.util.bytesbuf.ByteBuffer.chunks`) or a single bytes-like.
    ``flags`` rides in the header's flag byte (e.g. :data:`FLAG_BATCH`)
    and is covered by the header checksum.
    """
    if isinstance(payload_chunks, (bytes, bytearray, memoryview)):
        payload_chunks = [payload_chunks]
    if not 0 <= flags <= 0xFF:
        raise FramingError(f"frame flags {flags:#x} do not fit one byte")
    chunks = list(payload_chunks)
    length = sum(len(c) for c in chunks)
    if length > MAX_FRAME:
        raise FramingError(f"frame of {length} bytes exceeds MAX_FRAME")
    header = HEADER.pack(MAGIC, VERSION, flags, length)
    write(header + CSUM.pack(fletcher16(header)))
    for chunk in chunks:
        write(chunk)
    return HEADER.size + CSUM.size + length


def read_frame_ex(read_exact: Callable[[int], bytes]) -> tuple[int, bytes]:
    """Read one frame via ``read_exact(n)`` (which must return exactly
    ``n`` bytes or raise).  Returns ``(flags, payload)``."""
    header = read_exact(HEADER.size)
    (csum,) = CSUM.unpack(read_exact(CSUM.size))
    if fletcher16(header) != csum:
        raise FramingError("frame header checksum mismatch (desync?)")
    magic, version, flags, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise FramingError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise FramingError(f"unsupported frame version {version}")
    if length > MAX_FRAME:
        raise FramingError(f"frame length {length} exceeds MAX_FRAME")
    return flags, (read_exact(length) if length else b"")


def read_frame(read_exact: Callable[[int], bytes]) -> bytes:
    """Read one frame, dropping the flag byte (legacy single-message
    callers)."""
    return read_frame_ex(read_exact)[1]


def buffer_read_exact(data) -> Callable[[int], bytes]:
    """A ``read_exact`` over an in-memory buffer that raises
    :class:`FramingError` on truncation — the strict reader batch
    decoding and the property tests use to reject cut-off frames."""
    view = memoryview(data)
    pos = 0

    def read_exact(n: int) -> bytes:
        nonlocal pos
        if pos + n > len(view):
            raise FramingError(
                f"truncated frame: wanted {n} bytes at offset {pos}, "
                f"buffer holds {len(view)}")
        out = bytes(view[pos:pos + n])
        pos += n
        return out

    return read_exact


def sock_read_exact(sock, on_bytes=None) -> Callable[[int], bytes]:
    """Build a ``read_exact`` over a socket object.

    ``on_bytes(n)`` (optional) is called for every chunk actually
    consumed, *before* any timeout can strike — callers use it to learn
    whether a timed-out read left the stream mid-frame (bytes consumed,
    position unknown) or at a clean frame boundary (nothing consumed).
    """

    def read_exact(n: int) -> bytes:
        parts = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ChannelClosedError("peer closed mid-frame"
                                         if parts or remaining != n
                                         else "peer closed")
            if on_bytes is not None:
                on_bytes(len(chunk))
            parts.append(chunk)
            remaining -= len(chunk)
        return b"".join(parts)

    return read_exact
