"""In-process transport: a pair of thread-safe queues per channel.

The fastest *real* (wall-clock) transport; contexts in the same Python
process talk through it with no serialization shortcuts — messages are
still the same bytes every other transport carries, so the full
marshalling path is exercised.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Optional

from repro.exceptions import ChannelClosedError, TransportError
from repro.transport.base import Channel, Listener, Transport

__all__ = ["InProcTransport", "InProcChannel"]

_CLOSE = object()  # sentinel pushed into the queue on close


class InProcChannel(Channel):
    """One endpoint of a queue pair."""

    def __init__(self, send_q: queue.Queue, recv_q: queue.Queue):
        self._send_q = send_q
        self._recv_q = recv_q
        self._closed = False
        self._peer_closed = False

    def send(self, data) -> None:
        if self._closed:
            raise ChannelClosedError("send on closed channel")
        self._send_q.put(bytes(data))

    def recv(self, timeout: Optional[float] = None) -> bytes:
        if self._closed:
            raise ChannelClosedError("recv on closed channel")
        if self._peer_closed:
            raise ChannelClosedError("peer closed")
        try:
            item = self._recv_q.get(timeout=timeout)
        except queue.Empty:
            raise TransportError(f"recv timed out after {timeout}s") \
                from None
        if item is _CLOSE:
            # Half-close: the peer will send no more, but everything it
            # queued before closing was already delivered (FIFO), and
            # our own send side stays usable until close() — so a
            # server that consumed a request before the peer's close
            # sentinel can still flush the reply.
            self._peer_closed = True
            raise ChannelClosedError("peer closed")
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            # Always echo the sentinel, even when the peer closed
            # first: a caller blocked in recv on the other side (an
            # evicted client waiting for its reply) must wake with
            # ChannelClosedError, not hang.
            self._send_q.put(_CLOSE)

    @property
    def closed(self) -> bool:
        return self._closed or self._peer_closed


class _InProcListener(Listener):
    def __init__(self, transport: "InProcTransport", key: str):
        self._transport = transport
        self._key = key
        self._pending: queue.Queue = queue.Queue()
        self._closed = False

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed:
            raise ChannelClosedError("accept on closed listener")
        try:
            item = self._pending.get(timeout=timeout)
        except queue.Empty:
            raise TransportError("accept timed out") from None
        if item is _CLOSE:
            raise ChannelClosedError("listener closed")
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._transport._listeners.pop(self._key, None)
            self._pending.put(_CLOSE)

    @property
    def address(self) -> dict:
        return {"transport": self._transport.name, "key": self._key}


class InProcTransport(Transport):
    """Registry of in-process listeners keyed by string."""

    name = "inproc"

    def __init__(self):
        self._listeners: dict[str, _InProcListener] = {}
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def listen(self, address: Optional[dict] = None) -> Listener:
        with self._lock:
            key = (address or {}).get("key") or f"ep-{next(self._counter)}"
            if key in self._listeners:
                raise TransportError(f"inproc key {key!r} already bound")
            listener = _InProcListener(self, key)
            self._listeners[key] = listener
            return listener

    def connect(self, address: dict) -> Channel:
        key = address.get("key")
        listener = self._listeners.get(key)
        if listener is None or listener._closed:
            raise TransportError(f"no inproc listener at {key!r}")
        a_to_b: queue.Queue = queue.Queue()
        b_to_a: queue.Queue = queue.Queue()
        client = InProcChannel(a_to_b, b_to_a)
        server = InProcChannel(b_to_a, a_to_b)
        listener._pending.put(server)
        return client
