"""Shared-memory-style transport: SPSC byte rings with blocking semantics.

Models the paper's shared-memory protocol ("applicable only for clients
and servers running on the same machine", §4.3).  Each direction of a
channel is a :class:`ShmRing` — a fixed-capacity circular byte buffer
with a single producer and single consumer, the classic shm-segment
construction: writers block when the ring is full, readers when empty,
and messages are length-prefixed inside the ring exactly as they would be
in a real segment.

The ring is deliberately implemented at the byte level (not a queue of
Python objects) so its capacity pressure, wrap-around handling, and
partial-write behaviour are real and testable.
"""

from __future__ import annotations

import itertools
import struct
import threading
from typing import Optional

from repro.exceptions import ChannelClosedError, FramingError, TransportError
from repro.transport.base import Channel, Listener, Transport

__all__ = ["ShmRing", "ShmChannel", "ShmTransport"]

_LEN = struct.Struct(">I")


class ShmRing:
    """Single-producer single-consumer circular byte buffer.

    ``write(data)`` appends raw bytes, blocking while full;
    ``read(n)`` removes exactly ``n`` bytes, blocking while empty.
    Message boundaries are the caller's concern (:class:`ShmChannel`
    length-prefixes).
    """

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 8:
            raise ValueError("ring capacity must be at least 8 bytes")
        self.capacity = capacity
        self._buf = bytearray(capacity)
        self._head = 0          # read position
        self._size = 0          # bytes currently stored
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    @property
    def size(self) -> int:
        with self._lock:
            return self._size

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def write(self, data, timeout: Optional[float] = None) -> None:
        """Append all of ``data``, blocking in chunks while the ring is
        full.  Chunked writes let messages larger than the ring capacity
        stream through, as they would through a real segment."""
        view = memoryview(data)
        offset = 0
        with self._not_full:
            while offset < len(view):
                while self._size == self.capacity and not self._closed:
                    if not self._not_full.wait(timeout):
                        raise TransportError("ring write timed out")
                if self._closed:
                    raise ChannelClosedError("ring closed during write")
                take = min(len(view) - offset, self.capacity - self._size)
                tail = (self._head + self._size) % self.capacity
                first = min(take, self.capacity - tail)
                self._buf[tail:tail + first] = view[offset:offset + first]
                if take > first:
                    self._buf[: take - first] = \
                        view[offset + first:offset + take]
                self._size += take
                offset += take
                self._not_empty.notify()

    def read(self, n: int, timeout: Optional[float] = None) -> bytes:
        """Remove exactly ``n`` bytes, blocking while fewer are stored."""
        if n < 0:
            raise ValueError("read size must be non-negative")
        out = bytearray(n)
        offset = 0
        with self._not_empty:
            while offset < n:
                while self._size == 0 and not self._closed:
                    if not self._not_empty.wait(timeout):
                        raise TransportError("ring read timed out")
                if self._size == 0 and self._closed:
                    raise ChannelClosedError("ring closed during read")
                take = min(n - offset, self._size)
                first = min(take, self.capacity - self._head)
                out[offset:offset + first] = \
                    self._buf[self._head:self._head + first]
                if take > first:
                    out[offset + first:offset + take] = \
                        self._buf[: take - first]
                self._head = (self._head + take) % self.capacity
                self._size -= take
                offset += take
                self._not_full.notify()
        return bytes(out)


class ShmChannel(Channel):
    """Duplex channel over two rings, with length-prefixed messages."""

    def __init__(self, send_ring: ShmRing, recv_ring: ShmRing):
        self._send_ring = send_ring
        self._recv_ring = recv_ring
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()

    def send(self, data) -> None:
        payload = memoryview(data)
        with self._send_lock:
            # Header and payload must be adjacent in the ring: hold the
            # sender lock across both writes.
            self._send_ring.write(_LEN.pack(len(payload)))
            self._send_ring.write(payload)

    def recv(self, timeout: Optional[float] = None) -> bytes:
        with self._recv_lock:
            header = self._recv_ring.read(_LEN.size, timeout)
            (length,) = _LEN.unpack(header)
            if length > (1 << 31):
                raise FramingError("implausible shm message length")
            return self._recv_ring.read(length, timeout)

    def close(self) -> None:
        self._send_ring.close()
        self._recv_ring.close()

    @property
    def closed(self) -> bool:
        return self._send_ring.closed or self._recv_ring.closed


class _ShmListener(Listener):
    def __init__(self, transport: "ShmTransport", key: str,
                 ring_capacity: int):
        import queue as _queue

        self._transport = transport
        self._key = key
        self._ring_capacity = ring_capacity
        self._pending: "_queue.Queue" = _queue.Queue()
        self._closed = False

    def accept(self, timeout: Optional[float] = None) -> Channel:
        import queue as _queue

        if self._closed:
            raise ChannelClosedError("accept on closed listener")
        try:
            item = self._pending.get(timeout=timeout)
        except _queue.Empty:
            raise TransportError("accept timed out") from None
        if item is None:
            raise ChannelClosedError("listener closed")
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._transport._listeners.pop(self._key, None)
            self._pending.put(None)

    @property
    def address(self) -> dict:
        return {"transport": self._transport.name, "key": self._key}


class ShmTransport(Transport):
    """Shared-memory transport; channels are ring pairs."""

    name = "shm"

    def __init__(self, ring_capacity: int = 1 << 16):
        self.ring_capacity = ring_capacity
        self._listeners: dict[str, _ShmListener] = {}
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def listen(self, address: Optional[dict] = None) -> Listener:
        with self._lock:
            key = (address or {}).get("key") or f"seg-{next(self._counter)}"
            if key in self._listeners:
                raise TransportError(f"shm key {key!r} already bound")
            listener = _ShmListener(self, key, self.ring_capacity)
            self._listeners[key] = listener
            return listener

    def connect(self, address: dict) -> Channel:
        key = address.get("key")
        listener = self._listeners.get(key)
        if listener is None or listener._closed:
            raise TransportError(f"no shm listener at {key!r}")
        c2s = ShmRing(self.ring_capacity)
        s2c = ShmRing(self.ring_capacity)
        client = ShmChannel(c2s, s2c)
        server = ShmChannel(s2c, c2s)
        listener._pending.put(server)
        return client
