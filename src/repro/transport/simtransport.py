"""Transport over the network simulator.

The simulated world is single-threaded and synchronous: virtual time only
moves when a message or CPU charge says so.  A :class:`SimChannel`
therefore works callback-style —

* ``send(data)`` charges the simulator for the route between the two
  machines and then *synchronously* hands the bytes to the peer: if the
  peer installed an ``on_message`` callback (a served endpoint), it runs
  inline; otherwise the bytes land in the peer's inbox for a later
  ``recv()``.
* ``recv()`` pops the inbox; it never blocks — in a synchronous virtual
  world an empty inbox is a programming error, not a wait state.

Connections are likewise synchronous: ``connect`` charges one small setup
message and delivers the server-side channel to the listener's
``on_connect`` callback (or its pending queue).

Each :class:`SimTransport` instance is bound to one simulator and one
*local machine*; the machine is what the simulator charges transfers
against, and listeners share a simulator-wide key space so any machine's
transport can reach any listener.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Optional

from repro.exceptions import ChannelClosedError, TransportError
from repro.simnet.simulator import NetworkSimulator
from repro.simnet.topology import Machine
from repro.transport.base import Channel, Listener, Transport

__all__ = ["SimChannel", "SimTransport", "SimShmTransport"]

#: Virtual size charged for connection setup (SYN-scale).
_SETUP_BYTES = 64


class SimChannel(Channel):
    """One end of a simulated connection.

    ``loopback_model`` (optional) overrides the link model used when both
    ends share a machine — a network-protocol channel pays TCP-loopback
    cost rather than raw shared-memory cost.
    """

    def __init__(self, sim: NetworkSimulator, machine: Machine,
                 loopback_model=None):
        self.sim = sim
        self.machine = machine
        self.loopback_model = loopback_model
        self.peer: Optional["SimChannel"] = None
        self.inbox: deque[bytes] = deque()
        self.on_message: Optional[Callable[[bytes, "SimChannel"], None]] = \
            None
        self._closed = False

    def _bind(self, peer: "SimChannel") -> None:
        self.peer = peer
        peer.peer = self

    def send(self, data) -> None:
        if self._closed:
            raise ChannelClosedError("send on closed sim channel")
        peer = self.peer
        if peer is None or peer._closed:
            raise ChannelClosedError("peer closed")
        payload = bytes(data)
        self.sim.transfer(self.machine, peer.machine, len(payload),
                          loopback=self.loopback_model)
        if self.sim.fault_plan is not None:
            # Link-level corruption happens here — transfer() only moves
            # accounting; the channel is the layer that holds the bytes.
            payload = self.sim.fault_plan.maybe_corrupt(
                self.machine.name, peer.machine.name, payload)
        if peer.on_message is not None:
            peer.on_message(payload, peer)
        else:
            peer.inbox.append(payload)

    def recv(self, timeout: Optional[float] = None) -> bytes:
        if self.inbox:
            return self.inbox.popleft()
        if self._closed or (self.peer is not None and self.peer._closed):
            raise ChannelClosedError("sim channel closed")
        raise TransportError(
            "recv on empty inbox: the synchronous simulated world has no "
            "pending message for this channel")

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class _SimListener(Listener):
    def __init__(self, transport: "SimTransport", key: str):
        self._transport = transport
        self._key = key
        self.machine = transport.machine
        self.pending: deque[SimChannel] = deque()
        self.on_connect: Optional[Callable[[SimChannel], None]] = None
        self._closed = False

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self.pending:
            return self.pending.popleft()
        if self._closed:
            raise ChannelClosedError("accept on closed listener")
        raise TransportError("no pending simulated connection")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._transport.sim_listeners.pop(self._key, None)

    @property
    def address(self) -> dict:
        return {"transport": self._transport.name, "key": self._key,
                "machine": self.machine.name}


class SimTransport(Transport):
    """Per-machine window onto the shared simulated network.

    All instances created with the same ``NetworkSimulator`` share one
    listener key space (stored on the simulator object itself), so a
    client transport on machine A can connect to a listener opened by the
    transport on machine B.
    """

    name = "sim"

    #: Optional link-model override for same-machine traffic (see
    #: :class:`SimChannel`).
    loopback_model = None

    def __init__(self, sim: NetworkSimulator, machine: Machine | str):
        self.sim = sim
        self.machine = (machine if isinstance(machine, Machine)
                        else sim.topology.machine(machine))
        if not hasattr(sim, "_sim_listeners"):
            sim._sim_listeners = {}
        if not hasattr(sim, "_sim_key_counter"):
            sim._sim_key_counter = itertools.count()

    @property
    def sim_listeners(self) -> dict:
        return self.sim._sim_listeners

    def listen(self, address: Optional[dict] = None) -> Listener:
        key = (address or {}).get("key") or \
            f"simep-{next(self.sim._sim_key_counter)}"
        if key in self.sim_listeners:
            raise TransportError(f"sim key {key!r} already bound")
        listener = _SimListener(self, key)
        self.sim_listeners[key] = listener
        return listener

    def connect(self, address: dict) -> Channel:
        key = address.get("key")
        listener = self.sim_listeners.get(key)
        if listener is None or listener._closed:
            raise TransportError(f"no sim listener at {key!r}")
        self._check_reachable(listener)
        client = SimChannel(self.sim, self.machine, self.loopback_model)
        server = SimChannel(self.sim, listener.machine, self.loopback_model)
        client._bind(server)
        # Charge a small handshake for the connection setup.
        self.sim.transfer(self.machine, listener.machine, _SETUP_BYTES,
                          loopback=self.loopback_model)
        if listener.on_connect is not None:
            listener.on_connect(server)
        else:
            listener.pending.append(server)
        return client

    def _check_reachable(self, listener) -> None:
        """Hook for subclasses to restrict reachability."""


class SimShmTransport(SimTransport):
    """Shared-memory over the simulator: same machine only.

    The paper's shared-memory protocol is "applicable only for clients
    and servers running on the same machine" (§4.3); protocol selection
    normally filters it out beforehand, but the transport enforces the
    physical constraint too.
    """

    name = "sim-shm"

    def _check_reachable(self, listener) -> None:
        if listener.machine.name != self.machine.name:
            raise TransportError(
                f"shared memory cannot span machines "
                f"({self.machine.name} -> {listener.machine.name})")
