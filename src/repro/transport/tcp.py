"""Real TCP transport (loopback), with length-prefixed framing.

This is the wall-clock analogue of the paper's "Nexus based protocol that
uses TCP": genuine sockets, genuine kernel buffering, genuine framing.
The benchmarks use it to demonstrate the protocol stack end to end on
real I/O; the simulated variant supplies the deterministic Figure 5
numbers.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.exceptions import ChannelClosedError, TransportError
from repro.transport.base import Channel, Listener, Transport
from repro.transport.framing import read_frame, sock_read_exact, write_frame

__all__ = ["TcpTransport", "TcpChannel"]


class TcpChannel(Channel):
    """Framed messages over a connected socket."""

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._consumed = 0      # bytes of the in-progress frame read
        self._read_exact = sock_read_exact(sock, on_bytes=self._on_bytes)
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False

    def _on_bytes(self, n: int) -> None:
        self._consumed += n

    def send(self, data) -> None:
        if self._closed:
            raise ChannelClosedError("send on closed channel")
        with self._send_lock:
            try:
                write_frame(self._sock.sendall, data)
            except OSError as exc:
                self._closed = True
                raise ChannelClosedError(f"send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None) -> bytes:
        if self._closed:
            raise ChannelClosedError("recv on closed channel")
        with self._recv_lock:
            self._consumed = 0
            try:
                self._sock.settimeout(timeout)
                return read_frame(self._read_exact)
            except socket.timeout:
                if self._consumed:
                    # The timeout struck mid-frame: part of a frame was
                    # consumed and the stream position is unknown, so a
                    # later recv would splice this frame's tail onto the
                    # next header.  The channel is unusable — close it so
                    # callers redial.
                    self.close()
                    raise TransportError(
                        f"recv timed out after {timeout}s mid-frame "
                        f"({self._consumed} bytes consumed); channel "
                        "closed") from None
                # Nothing consumed: the stream is still at a clean frame
                # boundary and the channel stays usable (endpoints poll
                # idle channels with short timeouts).
                raise TransportError(
                    f"recv timed out after {timeout}s") from None
            except ChannelClosedError:
                self._closed = True
                raise
            except OSError as exc:
                self._closed = True
                raise ChannelClosedError(f"recv failed: {exc}") from exc
            finally:
                if not self._closed:
                    self._sock.settimeout(None)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


class _TcpListener(Listener):
    def __init__(self, host: str, port: int):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self._host, self._port = self._sock.getsockname()
        self._closed = False

    def accept(self, timeout: Optional[float] = None) -> Channel:
        if self._closed:
            raise ChannelClosedError("accept on closed listener")
        try:
            self._sock.settimeout(timeout)
            conn, _addr = self._sock.accept()
            return TcpChannel(conn)
        except socket.timeout:
            raise TransportError("accept timed out") from None
        except OSError as exc:
            raise ChannelClosedError(f"accept failed: {exc}") from exc
        finally:
            if not self._closed:
                try:
                    self._sock.settimeout(None)
                except OSError:
                    pass

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    @property
    def address(self) -> dict:
        return {"transport": "tcp", "host": self._host, "port": self._port}


class TcpTransport(Transport):
    """TCP on loopback by default; address = {host, port}."""

    name = "tcp"

    def __init__(self, default_host: str = "127.0.0.1"):
        self.default_host = default_host

    def listen(self, address: Optional[dict] = None) -> Listener:
        address = address or {}
        return _TcpListener(address.get("host", self.default_host),
                            address.get("port", 0))

    def connect(self, address: dict) -> Channel:
        host = address.get("host", self.default_host)
        port = address.get("port")
        if port is None:
            raise TransportError("tcp address needs a port")
        try:
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.settimeout(None)
        except OSError as exc:
            raise TransportError(
                f"connect to {host}:{port} failed: {exc}") from exc
        return TcpChannel(sock)
