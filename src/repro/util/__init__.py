"""Low-level utilities shared by every other subsystem.

The modules here deliberately have no dependency on the rest of the
library so that anything may import them:

* :mod:`repro.util.bytesbuf` — growable byte buffer with zero-copy reads
* :mod:`repro.util.checksums` — CRC-32 / Adler-32 / Fletcher-16, vectorized
* :mod:`repro.util.ids` — deterministic unique-id generation
* :mod:`repro.util.timing` — wall/virtual time sources, stopwatch
* :mod:`repro.util.stats` — small online-statistics helpers
"""

from repro.util.bytesbuf import ByteBuffer, ByteReader
from repro.util.checksums import adler32, crc32, fletcher16
from repro.util.ids import IdGenerator, fresh_uid
from repro.util.timing import Stopwatch, WallClock
from repro.util.stats import OnlineStats

__all__ = [
    "ByteBuffer",
    "ByteReader",
    "adler32",
    "crc32",
    "fletcher16",
    "IdGenerator",
    "fresh_uid",
    "Stopwatch",
    "WallClock",
    "OnlineStats",
]
