"""Growable byte buffer and zero-copy reader.

The Open HPC++ paper stresses that "no extra data copying is done over and
above that done by the proto-object's protocol implementation" (§3.2).  The
two classes here are how we honour that constraint in Python:

* :class:`ByteBuffer` accumulates an outgoing message.  Writers append
  ``bytes``-like chunks; large chunks (above :data:`ZERO_COPY_THRESHOLD`)
  are *referenced*, not copied, until the final :meth:`ByteBuffer.getvalue`
  concatenation, and :meth:`ByteBuffer.chunks` exposes the raw chunk list so
  a gather-capable transport can write them without any join at all
  (the Python analogue of ``writev``).

* :class:`ByteReader` walks an incoming message.  All reads return
  ``memoryview`` slices of the original buffer, so decoding a 4 MB array
  argument costs O(1) — numpy can wrap the view directly.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.exceptions import BufferUnderflowError

BytesLike = Union[bytes, bytearray, memoryview]

#: Chunks at or above this size are kept by reference instead of being
#: copied into the tail accumulation buffer.
ZERO_COPY_THRESHOLD = 512


class ByteBuffer:
    """An append-only buffer of byte chunks with a zero-copy large-chunk path.

    Small writes are coalesced into a shared ``bytearray`` tail to avoid a
    long list of tiny chunks; writes of at least :data:`ZERO_COPY_THRESHOLD`
    bytes are stored by reference.
    """

    __slots__ = ("_chunks", "_tail", "_length")

    def __init__(self, initial: BytesLike | None = None):
        self._chunks: List[BytesLike] = []
        self._tail = bytearray()
        self._length = 0
        if initial:
            self.write(initial)

    def __len__(self) -> int:
        return self._length

    def write(self, data: BytesLike) -> "ByteBuffer":
        """Append ``data``; returns ``self`` for chaining."""
        n = len(data)
        if n == 0:
            return self
        if n >= ZERO_COPY_THRESHOLD:
            self._flush_tail()
            # Freeze mutable inputs: the caller may mutate a bytearray
            # after handing it to us, which would corrupt the message.
            if isinstance(data, bytearray):
                data = bytes(data)
            elif isinstance(data, memoryview) and not data.readonly:
                data = data.toreadonly()
            self._chunks.append(data)
        else:
            self._tail += data
        self._length += n
        return self

    def write_many(self, parts: Iterable[BytesLike]) -> "ByteBuffer":
        for part in parts:
            self.write(part)
        return self

    def _flush_tail(self) -> None:
        if self._tail:
            self._chunks.append(bytes(self._tail))
            self._tail = bytearray()

    def chunks(self) -> List[BytesLike]:
        """The chunk list, suitable for a gather-write transport."""
        self._flush_tail()
        return list(self._chunks)

    def getvalue(self) -> bytes:
        """Concatenate all chunks into a single immutable ``bytes``."""
        self._flush_tail()
        if len(self._chunks) == 1 and isinstance(self._chunks[0], bytes):
            return self._chunks[0]
        return b"".join(bytes(c) if not isinstance(c, bytes) else c
                        for c in self._chunks)

    def clear(self) -> None:
        self._chunks.clear()
        self._tail = bytearray()
        self._length = 0


class ByteReader:
    """Sequential zero-copy reader over a ``bytes``-like message."""

    __slots__ = ("_view", "_pos")

    def __init__(self, data: BytesLike):
        self._view = memoryview(data)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    def seek(self, position: int) -> None:
        if not 0 <= position <= len(self._view):
            raise BufferUnderflowError(
                f"seek({position}) outside buffer of {len(self._view)} bytes")
        self._pos = position

    def read(self, n: int) -> memoryview:
        """Return a zero-copy view of the next ``n`` bytes and advance."""
        if n < 0:
            raise ValueError("read size must be non-negative")
        if self._pos + n > len(self._view):
            raise BufferUnderflowError(
                f"need {n} bytes at offset {self._pos}, "
                f"only {self.remaining} remain")
        out = self._view[self._pos:self._pos + n]
        self._pos += n
        return out

    def read_bytes(self, n: int) -> bytes:
        """Like :meth:`read` but materializes an owned ``bytes`` copy."""
        return bytes(self.read(n))

    def peek(self, n: int) -> memoryview:
        """Return a view of the next ``n`` bytes without advancing."""
        if self._pos + n > len(self._view):
            raise BufferUnderflowError(
                f"peek({n}) at offset {self._pos} exceeds buffer")
        return self._view[self._pos:self._pos + n]

    def skip(self, n: int) -> None:
        self.read(n)

    def rest(self) -> memoryview:
        """View of everything from the cursor to the end; consumes it."""
        out = self._view[self._pos:]
        self._pos = len(self._view)
        return out
