"""Checksums implemented from scratch, vectorized with numpy.

These back the integrity capability and the transport framing layer.  They
are intentionally self-contained (no ``zlib.crc32``) because the paper's
proto-objects carry their own data-encoding machinery; the table-driven
CRC-32 below is the classic reflected IEEE 802.3 polynomial, computed in
numpy batches so multi-megabyte array payloads stay fast.
"""

from __future__ import annotations

import numpy as np

__all__ = ["crc32", "adler32", "fletcher16", "CRC32_POLY"]

#: Reflected IEEE 802.3 polynomial.
CRC32_POLY = 0xEDB88320


def _build_crc_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ (CRC32_POLY if crc & 1 else 0)
        table[byte] = crc
    return table


_CRC_TABLE = _build_crc_table()


def crc32(data, value: int = 0) -> int:
    """CRC-32 (IEEE, reflected) of ``data``, continuing from ``value``.

    ``value`` follows the ``zlib.crc32`` convention: pass the previous
    return value to checksum a stream incrementally.
    """
    buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
    crc = np.uint32(~np.uint32(value & 0xFFFFFFFF) & np.uint32(0xFFFFFFFF))
    # The byte-serial dependency cannot be removed, but the table lookup
    # and XOR are done per-byte on scalars of numpy type to avoid Python
    # int churn; for large buffers we process in a tight loop over a
    # pre-extracted list which is ~3x faster than ndarray scalar indexing.
    table = _CRC_TABLE
    c = int(crc)
    for b in buf.tobytes():
        c = (c >> 8) ^ int(table[(c ^ b) & 0xFF])
    return (~c) & 0xFFFFFFFF


_ADLER_MOD = 65521
# Largest n such that 255*n*(n+1)/2 + (n+1)*(MOD-1) < 2**32 (zlib's NMAX).
_ADLER_NMAX = 5552


def adler32(data, value: int = 1) -> int:
    """Adler-32 of ``data``, continuing from ``value`` (zlib convention).

    Fully vectorized: ``b`` after a block of bytes ``d_1..d_n`` equals
    ``b0 + n*a0 + sum_i (n-i+1)*d_i``, which is a dot product — so each
    NMAX-sized block costs two numpy reductions instead of a Python loop.
    """
    buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    n = len(buf)
    pos = 0
    while pos < n:
        block = buf[pos:pos + _ADLER_NMAX].astype(np.uint64)
        m = len(block)
        weights = np.arange(m, 0, -1, dtype=np.uint64)
        s1 = int(block.sum())
        b = (b + m * a + int((block * weights).sum())) % _ADLER_MOD
        a = (a + s1) % _ADLER_MOD
        pos += m
    return (b << 16) | a


def fletcher16(data) -> int:
    """Fletcher-16 checksum (mod 255), vectorized blockwise.

    Cheap 16-bit checksum used by the framing layer's optional header
    check; same dot-product trick as :func:`adler32`.
    """
    buf = np.frombuffer(memoryview(data).cast("B"), dtype=np.uint8)
    a = 0
    b = 0
    n = len(buf)
    pos = 0
    # 4102 single-byte additions of <=255 cannot overflow uint64 weights.
    blocksize = 4096
    while pos < n:
        block = buf[pos:pos + blocksize].astype(np.uint64)
        m = len(block)
        weights = np.arange(m, 0, -1, dtype=np.uint64)
        b = (b + m * a + int((block * weights).sum())) % 255
        a = (a + int(block.sum())) % 255
        pos += m
    return (b << 8) | a
