"""Deterministic unique-id generation.

Distributed-object systems need ids for contexts, exported objects, and
requests.  Real Open HPC++ used host/port/time tuples; we use a counter
namespaced by a generator prefix so that test runs are reproducible and ids
are human-readable in traces (``ctx-3``, ``obj-17``, ``req-204``).

A process-global :func:`fresh_uid` is provided for callers that just need
any unique token.
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["IdGenerator", "fresh_uid"]


class IdGenerator:
    """Thread-safe monotonically increasing id source with a name prefix."""

    def __init__(self, prefix: str, start: int = 0):
        self.prefix = prefix
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next_int(self) -> int:
        with self._lock:
            return next(self._counter)

    def next_id(self) -> str:
        return f"{self.prefix}-{self.next_int()}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IdGenerator(prefix={self.prefix!r})"


_GLOBAL = IdGenerator("uid")


def fresh_uid() -> str:
    """Return a process-unique string token."""
    return _GLOBAL.next_id()
