"""Small online-statistics helpers.

Used by the load monitor (exponentially weighted load averages drive the
high-water-mark migration policy of §4.3) and by the benchmark harness
(mean/stddev of repeated bandwidth readings, as the paper averages "a large
number of readings").
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["OnlineStats", "EwmAverage", "percentile"]


class OnlineStats:
    """Welford online mean/variance accumulator."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0.0 for fewer than 2 points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __eq__(self, other) -> bool:
        """Value equality — two accumulators that saw the same samples
        compare equal, so results carrying them can be diffed across
        identically-seeded runs."""
        if not isinstance(other, OnlineStats):
            return NotImplemented
        return (self.count == other.count and self.mean == other.mean
                and self._m2 == other._m2 and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"OnlineStats(n={self.count}, mean={self.mean:.6g}, "
                f"sd={self.stddev:.6g})")


class EwmAverage:
    """Exponentially weighted moving average.

    ``alpha`` is the weight of a new sample; the load monitor uses a small
    alpha so short load spikes do not trigger spurious migrations.
    """

    __slots__ = ("alpha", "value", "_initialized")

    def __init__(self, alpha: float = 0.2, initial: float | None = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = 0.0 if initial is None else initial
        self._initialized = initial is not None

    def add(self, x: float) -> float:
        if not self._initialized:
            self.value = x
            self._initialized = True
        else:
            self.value += self.alpha * (x - self.value)
        return self.value


def percentile(sorted_xs, q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sequence."""
    if not sorted_xs:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(sorted_xs) == 1:
        return float(sorted_xs[0])
    pos = (len(sorted_xs) - 1) * (q / 100.0)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return float(sorted_xs[lo]) * (1 - frac) + float(sorted_xs[hi]) * frac
