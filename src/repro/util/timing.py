"""Time sources and a stopwatch.

Two kinds of time flow through the system:

* **wall time** — what real transports (TCP loopback, in-proc queues)
  experience; provided by :class:`WallClock`.
* **virtual time** — what the network simulator advances; provided by
  :class:`repro.simnet.clock.VirtualClock`, which implements the same
  :class:`TimeSource` protocol.

Components that need "now" accept any :class:`TimeSource`, so the same
lease-capability code works under both clocks.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["TimeSource", "WallClock", "Stopwatch", "time_source"]


@runtime_checkable
class TimeSource(Protocol):
    """Anything with a ``now() -> float`` in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class WallClock:
    """Monotonic wall-clock time source."""

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "WallClock()"


#: Shared fallback for owners without a clock of their own; monotonic,
#: never ``time.time()``.
_SHARED_WALL = WallClock()


def time_source(owner) -> TimeSource:
    """The :class:`TimeSource` an object should measure time on.

    Returns ``owner.clock`` when it has one (a context under simulation
    hands back the shared :class:`~repro.simnet.clock.VirtualClock`, so
    time-dependent components stay deterministic); otherwise a shared
    monotonic :class:`WallClock`.  This is the single sanctioned escape
    hatch — components must never read ``time.time()`` directly, or
    simulated runs stop being a pure function of the seed.
    """
    clock = getattr(owner, "clock", None)
    return clock if clock is not None else _SHARED_WALL


class Stopwatch:
    """Accumulating stopwatch over an arbitrary :class:`TimeSource`.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self, source: TimeSource | None = None):
        self._source = source or WallClock()
        self._started_at: float | None = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = self._source.now()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += self._source.now() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self._started_at = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
