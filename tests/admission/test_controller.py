"""AdmissionController: shed decisions, deadlines, batch costing,
runtime policy swap, stop-drain."""

from repro.admission import (
    BATCH,
    INTERACTIVE,
    AdmissionController,
    AdmissionPolicy,
)
from repro.core.instrumentation import HookBus
from repro.serialization.marshal import BatchRequest
from repro.simnet.clock import VirtualClock


def make(capacity=4, **kw):
    policy = AdmissionPolicy(enabled=True, queue_capacity=capacity, **kw)
    bus = HookBus()
    events = []
    for kind in ("admit", "shed", "limit_change"):
        bus.on(kind, lambda e: events.append((e.kind, e.data)))
    clock = VirtualClock()
    return AdmissionController(policy, clock=clock, hooks=bus), clock, events


class Reject:
    def __init__(self):
        self.calls = []

    def __call__(self, retry_after, reason):
        self.calls.append((retry_after, reason))


class TestSubmit:
    def test_admit_emits_event(self):
        ctrl, _clock, events = make()
        assert ctrl.submit("w", priority=INTERACTIVE)
        assert ctrl.admitted == 1
        kinds = [k for k, _ in events]
        assert kinds == ["admit"]
        assert events[0][1]["depth"] == 1

    def test_queue_full_sheds_with_scaled_retry_after(self):
        ctrl, _clock, events = make(capacity=2, retry_after=0.05)
        reject = Reject()
        assert ctrl.submit("a") and ctrl.submit("b")
        assert not ctrl.submit("c", reject=reject)
        assert ctrl.shed == 1
        (retry_after, reason), = reject.calls
        assert reason == "queue_full"
        # full queue: hint is retry_after * (1 + fill) = 0.05 * 2
        assert retry_after == 0.1
        assert events[-1][0] == "shed"
        assert events[-1][1]["reason"] == "queue_full"

    def test_expired_budget_sheds_on_offer(self):
        ctrl, _clock, _events = make()
        reject = Reject()
        assert not ctrl.submit("w", deadline_remaining=0.0, reject=reject)
        assert reject.calls == [(0.0, "deadline")]

    def test_budget_expiring_in_queue_sheds_on_pop(self):
        ctrl, clock, _events = make()
        reject = Reject()
        assert ctrl.submit("late", deadline_remaining=0.5, reject=reject)
        ctrl.submit("fresh", priority=BATCH)
        clock.advance(1.0)
        item = ctrl.try_pop()          # expired head shed, next served
        assert item.work == "fresh"
        assert reject.calls == [(0.0, "deadline")]
        # the shed returned its limiter slot
        ctrl.finish(item, 0.01)
        assert ctrl.limiter.inflight == 0

    def test_pop_respects_limiter(self):
        ctrl, _clock, _events = make(max_limit=1, initial_limit=1)
        ctrl.submit("a")
        ctrl.submit("b")
        first = ctrl.try_pop()
        assert first is not None
        assert ctrl.try_pop() is None          # limit 1: no second slot
        ctrl.finish(first, 0.01)
        assert ctrl.try_pop() is not None


class TestBatchCosting:
    def test_batch_counted_as_member_units(self):
        ctrl, _clock, _events = make(capacity=8)
        payload = BatchRequest.of([b"x"] * 5).to_bytes()
        assert ctrl.classify("hpc.invoke.batch", payload) == 5

    def test_glue_batch_flat_cost(self):
        ctrl, _clock, _events = make(opaque_batch_cost=7)
        assert ctrl.classify("hpc.glue.batch", b"\x00opaque") == 7

    def test_plain_call_is_one_unit(self):
        ctrl, _clock, _events = make()
        assert ctrl.classify("echo", b"whatever") == 1

    def test_batch_shed_atomically_with_one_pushback(self):
        """A 5-member batch against 2 free units: one offer, one shed
        event, one reject — members never straddle the decision."""
        ctrl, _clock, events = make(capacity=4)
        ctrl.submit("standing", cost=2)
        reject = Reject()
        payload = BatchRequest.of([b"x"] * 5).to_bytes()
        cost = ctrl.classify("hpc.invoke.batch", payload)
        assert not ctrl.submit("batch", cost=cost, reject=reject)
        assert len(reject.calls) == 1
        assert [k for k, _ in events].count("shed") == 1
        assert events[-1][1]["cost"] == 5


class TestPolicySwap:
    def test_queued_work_survives_a_swap(self):
        ctrl, _clock, _events = make(capacity=4)
        ctrl.submit("a")
        ctrl.submit("b", priority=BATCH)
        ctrl.set_policy(AdmissionPolicy(enabled=True, queue_capacity=8))
        assert ctrl.queue.depth == 2
        assert ctrl.try_pop().work == "a"

    def test_shrinking_swap_sheds_overflow_with_pushback(self):
        ctrl, _clock, _events = make(capacity=4)
        rejects = [Reject() for _ in range(4)]
        for i, r in enumerate(rejects):
            ctrl.submit(i, priority=BATCH, reject=r)
        ctrl.set_policy(AdmissionPolicy(enabled=True, queue_capacity=2))
        assert ctrl.queue.units == 2
        shed_reasons = [r.calls[0][1] for r in rejects if r.calls]
        assert shed_reasons == ["queue_full"] * 2


class TestStop:
    def test_stop_sheds_queue_and_refuses_new_offers(self):
        ctrl, _clock, events = make()
        rejects = [Reject(), Reject()]
        ctrl.submit("a", reject=rejects[0])
        ctrl.submit("b", reject=rejects[1])
        assert ctrl.stop() == 2
        for r in rejects:
            assert r.calls[0][1] == "stopping"
        late = Reject()
        assert not ctrl.submit("late", reject=late)
        assert late.calls[0][1] == "stopping"
        reasons = [d["reason"] for k, d in events if k == "shed"]
        assert reasons == ["stopping"] * 3

    def test_snapshot_shape(self):
        ctrl, _clock, _events = make()
        ctrl.submit("a")
        snap = ctrl.snapshot()
        assert snap["enabled"] and snap["queue_depth"] == 1
        assert snap["admitted"] == 1 and snap["shed"] == 0
        assert "limit" in snap and "inflight" in snap
