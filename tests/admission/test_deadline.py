"""Ambient deadline propagation: nesting only ever tightens."""

import threading

from repro.admission import ambient_deadline, deadline_scope


class TestDeadlineScope:
    def test_default_is_none(self):
        assert ambient_deadline() is None

    def test_scope_publishes_and_restores(self):
        with deadline_scope(5.0) as effective:
            assert effective == 5.0
            assert ambient_deadline() == 5.0
        assert ambient_deadline() is None

    def test_nesting_tightens_never_loosens(self):
        with deadline_scope(5.0):
            with deadline_scope(3.0):
                assert ambient_deadline() == 3.0
            with deadline_scope(9.0):      # outer budget still applies
                assert ambient_deadline() == 5.0
            assert ambient_deadline() == 5.0

    def test_none_scope_is_a_noop(self):
        with deadline_scope(4.0):
            with deadline_scope(None):
                assert ambient_deadline() == 4.0

    def test_restores_after_exception(self):
        try:
            with deadline_scope(2.0):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert ambient_deadline() is None

    def test_thread_local(self):
        seen = []
        with deadline_scope(7.0):
            t = threading.Thread(
                target=lambda: seen.append(ambient_deadline()))
            t.start()
            t.join()
        assert seen == [None]
