"""ConcurrencyLimiter: AIMD adaptation over observed service latency."""

from repro.admission import AdmissionPolicy, ConcurrencyLimiter
from repro.core.instrumentation import HookBus


def make(window=4, **kw):
    defaults = dict(enabled=True, min_limit=1, max_limit=16, window=window,
                    tolerance=2.0, decrease=0.8, increase=1)
    defaults.update(kw)
    return AdmissionPolicy(**defaults)


def feed_window(lim, latency, queued):
    """One full adaptation window of identical completions."""
    for _ in range(lim.policy.window):
        assert lim.try_acquire()
        lim.release(latency, queued=queued)


class TestSlots:
    def test_acquire_up_to_limit(self):
        lim = ConcurrencyLimiter(make(initial_limit=2))
        assert lim.try_acquire() and lim.try_acquire()
        assert not lim.try_acquire()
        lim.release(0.01)
        assert lim.try_acquire()

    def test_negative_latency_returns_slot_without_sample(self):
        """release(-1) is the 'nothing was dispatched' path — the slot
        comes back but the adaptation window must not see a sample."""
        lim = ConcurrencyLimiter(make(window=1))
        lim.try_acquire()
        lim.release(-1.0)
        assert lim.inflight == 0
        assert lim.adjustments == 0

    def test_initial_limit_defaults_to_max(self):
        assert ConcurrencyLimiter(make()).limit == 16
        assert ConcurrencyLimiter(make(initial_limit=3)).limit == 3


class TestAdaptation:
    def test_inflated_p50_cuts_limit_multiplicatively(self):
        lim = ConcurrencyLimiter(make())
        feed_window(lim, 0.010, queued=False)   # establishes baseline
        feed_window(lim, 0.050, queued=True)    # 5x baseline: congested
        assert lim.limit == int(16 * 0.8)
        assert lim.adjustments == 1

    def test_healthy_window_with_demand_grows_additively(self):
        lim = ConcurrencyLimiter(make(initial_limit=4))
        feed_window(lim, 0.010, queued=True)
        assert lim.limit == 5

    def test_no_growth_without_demand(self):
        """Latency is healthy but nothing was waiting: added concurrency
        buys nothing, so the limit holds."""
        lim = ConcurrencyLimiter(make(initial_limit=4))
        feed_window(lim, 0.010, queued=False)
        assert lim.limit == 4

    def test_clamped_to_bounds(self):
        lim = ConcurrencyLimiter(make(initial_limit=2, min_limit=2))
        feed_window(lim, 0.010, queued=False)
        feed_window(lim, 0.100, queued=True)
        assert lim.limit == 2                   # min clamp
        lim2 = ConcurrencyLimiter(make(max_limit=4, initial_limit=4))
        feed_window(lim2, 0.010, queued=True)
        assert lim2.limit == 4                  # max clamp

    def test_baseline_tracks_the_best_window(self):
        lim = ConcurrencyLimiter(make())
        feed_window(lim, 0.040, queued=False)
        feed_window(lim, 0.010, queued=False)   # better: new baseline
        assert lim.snapshot()["baseline_p50"] == 0.010
        # 0.015 < 2 x 0.010: healthy relative to the *best* seen
        feed_window(lim, 0.015, queued=False)
        assert lim.limit == 16

    def test_limit_change_event(self):
        bus = HookBus()
        seen = []
        bus.on("limit_change", lambda e: seen.append(e.data))
        lim = ConcurrencyLimiter(make(), hooks=bus)
        feed_window(lim, 0.010, queued=False)
        feed_window(lim, 0.050, queued=True)
        assert len(seen) == 1
        assert seen[0]["previous"] == 16 and seen[0]["limit"] == 12
        assert seen[0]["baseline"] == 0.010

    def test_determinism(self):
        """Same completion sequence, same limit trajectory."""
        def trajectory():
            lim = ConcurrencyLimiter(make())
            out = []
            for lat in [0.01, 0.05, 0.01, 0.08, 0.02] * 8:
                lim.try_acquire()
                lim.release(lat, queued=True)
                out.append(lim.limit)
            return out
        assert trajectory() == trajectory()
