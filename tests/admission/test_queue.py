"""AdmissionQueue: priority classes, cost-unit bounds, FIFO/LIFO."""

import pytest

from repro.admission import (
    BATCH,
    BEST_EFFORT,
    INTERACTIVE,
    AdmissionQueue,
    QueuedItem,
)


def item(priority=INTERACTIVE, cost=1, work=None):
    return QueuedItem(work=work, priority=priority, cost=cost)


class TestBounds:
    def test_capacity_is_in_units_not_entries(self):
        q = AdmissionQueue(capacity=4)
        assert q.offer(item(cost=3))
        assert not q.offer(item(cost=2))      # 3 + 2 > 4
        assert q.offer(item(cost=1))
        assert q.units == 4 and q.depth == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        q = AdmissionQueue(capacity=4)
        with pytest.raises(ValueError):
            q.offer(item(priority=7))
        with pytest.raises(ValueError):
            q.offer(item(cost=0))

    def test_oversized_item_only_into_empty_queue(self):
        """A batch costing more than the whole capacity must not be
        permanently unadmittable, but must not evict standing work."""
        q = AdmissionQueue(capacity=4)
        assert q.offer(item(cost=1))
        assert not q.offer(item(cost=9))      # standing work: refused
        assert q.pop() is not None
        assert q.offer(item(cost=9))          # empty queue: admitted
        assert q.units == 9

    def test_pop_returns_units(self):
        q = AdmissionQueue(capacity=2)
        q.offer(item(cost=2))
        assert not q.offer(item())
        q.pop()
        assert q.offer(item())


class TestOrdering:
    def test_strict_priority_between_classes(self):
        q = AdmissionQueue(capacity=8)
        q.offer(item(priority=BEST_EFFORT, work="be"))
        q.offer(item(priority=BATCH, work="b"))
        q.offer(item(priority=INTERACTIVE, work="i"))
        assert [q.pop().work for _ in range(3)] == ["i", "b", "be"]

    def test_fifo_within_class_by_default(self):
        q = AdmissionQueue(capacity=8)
        for n in range(3):
            q.offer(item(work=n))
        assert [q.pop().work for _ in range(3)] == [0, 1, 2]

    def test_lifo_within_class(self):
        q = AdmissionQueue(capacity=8, lifo=True)
        for n in range(3):
            q.offer(item(work=n))
        q.offer(item(priority=BATCH, work="b0"))
        q.offer(item(priority=BATCH, work="b1"))
        # newest-first within a class, classes still strictly ordered
        assert [q.pop().work for _ in range(5)] == [2, 1, 0, "b1", "b0"]

    def test_pop_empty_returns_none(self):
        assert AdmissionQueue(capacity=1).pop() is None


class TestDrain:
    def test_drain_returns_everything_and_resets_units(self):
        q = AdmissionQueue(capacity=8)
        q.offer(item(work="a"))
        q.offer(item(priority=BATCH, work="b", cost=3))
        drained = q.drain()
        assert [i.work for i in drained] == ["a", "b"]
        assert q.units == 0 and q.depth == 0
        assert q.offer(item(cost=8))          # capacity fully available

    def test_depth_by_class(self):
        q = AdmissionQueue(capacity=8)
        q.offer(item())
        q.offer(item(priority=BATCH))
        q.offer(item(priority=BATCH))
        assert q.depth_by_class() == {
            "interactive": 1, "batch": 2, "best-effort": 0}
