"""Tests for the ``python -m repro.bench`` command-line runner."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "glue[auth]" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "glue[quota+encryption]" in out
        assert "shm" in out

    def test_fig5_ethernet(self, capsys):
        assert main(["fig5", "--fabric", "ethernet",
                     "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "ethernet-10" in out
        assert "shm speedup" in out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_all(self, capsys):
        assert main(["all", "--repetitions", "1"]) == 0
        out = capsys.readouterr().out
        assert "atm-155" in out and "ethernet-10" in out
        assert "Figure 4" in out and "Figure 3" in out
