"""Tests that the experiment drivers reproduce the paper's *shape*.

These are the quantitative claims of §5, checked as assertions:

1. over the network, all protocols (plain and capability-stacked)
   perform "almost identically" — the relative spread is small;
2. shared memory is "more than an order of magnitude faster";
3. the capabilities approach "adds only a small amount of overhead";
4. the Figure 4 tour selects the documented protocol at each stage;
5. the Figure 3 migration flips which client authenticates.
"""

import pytest

from repro.bench.figures import DEFAULT_SIZES, PROTOCOL_LABELS, run_fig5
from repro.bench.reporting import format_series_table, format_table
from repro.bench.scenario import run_fig3_scenario, run_fig4_scenario
from repro.simnet.linktypes import ATM_155, ETHERNET_10


@pytest.fixture(scope="module")
def fig5_atm():
    return run_fig5(fabric=ATM_155, repetitions=2)


@pytest.fixture(scope="module")
def fig5_eth():
    return run_fig5(fabric=ETHERNET_10, repetitions=2)


class TestFig5Shape:
    def test_all_protocols_present(self, fig5_atm):
        assert set(fig5_atm.bandwidth_mbps) == set(PROTOCOL_LABELS)
        assert all(len(v) == len(DEFAULT_SIZES)
                   for v in fig5_atm.bandwidth_mbps.values())

    def test_bandwidth_monotone_in_size(self, fig5_atm):
        for series in fig5_atm.bandwidth_mbps.values():
            assert all(b > a * 0.99 for a, b in zip(series, series[1:]))

    def test_network_protocols_nearly_identical(self, fig5_atm):
        """§5: 'all protocols except for the shared memory protocol
        perform almost identically'."""
        for i in range(len(fig5_atm.sizes)):
            values = [fig5_atm.bandwidth_mbps[label][i]
                      for label in PROTOCOL_LABELS[:3]]
            assert max(values) / min(values) < 1.30

    def test_shm_order_of_magnitude_faster(self, fig5_atm):
        """§5: 'more than an order of magnitude faster'."""
        assert fig5_atm.shm_speedup_at(DEFAULT_SIZES[-1]) > 10
        assert fig5_atm.shm_speedup_at(DEFAULT_SIZES[0]) > 10

    def test_capability_overhead_small(self, fig5_atm):
        """§5: 'the capabilities based approach adds only a small amount
        of overhead' — under 15% of achieved bandwidth on ATM."""
        overhead = fig5_atm.capability_overhead_at(DEFAULT_SIZES[-1])
        assert 0 <= overhead < 0.15

    def test_ethernet_virtually_identical_shape(self, fig5_eth):
        """§5: 'those for Ethernet are virtually identical' — same
        qualitative structure on the slow fabric."""
        assert fig5_eth.shm_speedup_at(DEFAULT_SIZES[-1]) > 10
        # On 10 Mbps Ethernet the wire dominates even harder, so the
        # capability overhead is *smaller* than on ATM.
        assert fig5_eth.capability_overhead_at(DEFAULT_SIZES[-1]) < 0.05

    def test_ethernet_slower_than_atm(self, fig5_atm, fig5_eth):
        last = -1
        assert fig5_eth.bandwidth_mbps["Nexus"][last] < \
            fig5_atm.bandwidth_mbps["Nexus"][last]

    def test_atm_saturates_in_paper_range(self, fig5_atm):
        """The big-message plateau sits in the tens of Mbps (the paper's
        achieved band), far below the 155 Mbps line rate."""
        nexus = fig5_atm.bandwidth_mbps["Nexus"][-1]
        assert 15 < nexus < 80

    def test_deterministic(self):
        a = run_fig5(repetitions=1, sizes=[1024, 65536])
        b = run_fig5(repetitions=1, sizes=[1024, 65536])
        assert a.bandwidth_mbps == b.bandwidth_mbps


class TestFig4Scenario:
    @pytest.fixture(scope="class")
    def stages(self):
        return run_fig4_scenario(repetitions=2)

    def test_four_stages(self, stages):
        assert [s.machine for s in stages] == ["M1", "M2", "M3", "M0"]

    def test_protocol_sequence(self, stages):
        assert [s.selected for s in stages] == [
            "glue[quota+encryption]",
            "glue[quota]",
            "nexus",
            "shm",
        ]

    def test_bandwidth_improves_along_the_tour(self, stages):
        bws = [s.bandwidth_mbps for s in stages]
        assert bws[0] < bws[1] < bws[2] < bws[3]
        assert bws[3] > 10 * bws[2] / 10  # shm >> network
        assert bws[3] / bws[0] > 10


class TestFig3Scenario:
    def test_roles_flip(self):
        result = run_fig3_scenario()
        assert result.before == {"P1": "nexus", "P2": "glue[auth]"}
        assert result.after == {"P1": "glue[auth]", "P2": "nexus"}


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], [300000, 0.00001]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "3e+05" in out or "300000" in out

    def test_format_series_table(self):
        out = format_series_table("size", [1, 2],
                                  {"x": [0.5, 1.5], "y": [2, 4]})
        assert "size" in out and "x" in out and "y" in out
        assert len(out.splitlines()) == 4

    def test_format_number_edge_cases(self):
        from repro.bench.reporting import format_number

        assert format_number(None) == "-"
        assert format_number(0) == "0"
        assert format_number("text") == "text"
        assert format_number(True) == "True"
