"""Tests for the chaos harness: seeded fault-plan workloads.

Closes the ROADMAP item "drive repro.cluster workloads through seeded
FaultPlans and assert throughput degradation curves": determinism of
the whole report (same seed => identical buckets, metrics, and
WorkloadResult), a real degradation-envelope pass, and a negative test
where a deliberately unhealed partition fails `assert_degradation`.
"""

import pytest

from repro.cluster import (
    BatchedSyntheticWorkload,
    ChaosRun,
    SyntheticWorkload,
    bind_workers,
    build_cluster,
)
from repro.core import ORB
from repro.core.instrumentation import GLOBAL_HOOKS
from repro.core.resilience import BreakerRegistry, RetryPolicy
from repro.faults import FaultPlan, FaultRule
from repro.metrics import DegradationEnvelopeError, assert_degradation
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

SEED = 17


def make_world(seed=SEED):
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    for i in range(3):
        topo.add_machine(f"m{i}", lan)
    sim = NetworkSimulator(topo, keep_records=0)
    orb = ORB(simulator=sim)
    nodes = build_cluster(orb, ["m1", "m2"], workers_per_node=1)
    client = orb.context("client", machine="m0")
    client.breakers = BreakerRegistry(client.clock, cooldown=1.0)
    table = bind_workers(client, nodes,
                         retry_policy=RetryPolicy(max_attempts=4,
                                                  seed=seed))
    return sim, orb, table


def loss_and_flap_plan(seed=SEED):
    """Reply loss in [2, 4) plus a one-second flap of m2 at t=5."""
    plan = FaultPlan(seed=seed)
    plan.rule_between(2.0, 4.0,
                      FaultRule("drop", probability=0.6, dst="m0"))
    plan.flap_node("m2", ["m0", "m1"], at=5.0, duration=1.0)
    return plan


def run_chaos(seed=SEED, plan_factory=loss_and_flap_plan, n_requests=300):
    sim, orb, table = make_world(seed)
    workload = SyntheticWorkload(seed=seed, n_requests=n_requests,
                                 object_names=list(table),
                                 payload_bytes=2048,
                                 mean_think_seconds=0.02)
    plan = plan_factory(seed)
    report = ChaosRun(workload, plan, bucket_seconds=1.0).run([table], sim)
    orb.shutdown()
    return report


class TestChaosDeterminism:
    def test_same_seed_same_everything(self):
        a = run_chaos()
        b = run_chaos()
        assert a.curve.to_dicts() == b.curve.to_dicts()
        assert a.metrics == b.metrics
        assert a.result == b.result
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = run_chaos(seed=17)
        b = run_chaos(seed=18)
        assert a.curve.to_dicts() != b.curve.to_dicts()

    def test_faults_actually_degraded_the_run(self):
        report = run_chaos()
        assert report.result.errors > 0
        counters = report.metrics["counters"]
        assert counters["faults_injected_total"] > 0
        assert counters["retries_total"] > 0
        # degradation is visible in the loss window's buckets
        window = [b for b in report.curve.buckets
                  if 2.0 <= b.start < 4.0]
        baseline = report.curve.buckets[0].goodput
        assert min(b.goodput for b in window) < baseline
        assert max(b.error_rate for b in window) > 0

    def test_envelope_passes_on_recovering_run(self):
        report = run_chaos()
        summary = assert_degradation(report.curve, max_dip=0.95,
                                     recover_within=4.0)
        assert summary["recovered_at"] is not None


def run_chaos_batched(seed=SEED, plan_factory=loss_and_flap_plan,
                      n_requests=300, batch_size=4):
    """`run_chaos`, but driven through explicit batch scopes."""
    sim, orb, table = make_world(seed)
    workload = BatchedSyntheticWorkload(
        seed=seed, n_requests=n_requests, object_names=list(table),
        payload_bytes=2048, mean_think_seconds=0.02,
        batch_size=batch_size)
    plan = plan_factory(seed)
    report = ChaosRun(workload, plan, bucket_seconds=1.0).run([table], sim)
    orb.shutdown()
    return report


def quiet_plan(seed=SEED):
    """A plan with no rules: chaos machinery attached, zero faults."""
    return FaultPlan(seed=seed)


class TestChaosWithBatching:
    """The batching layer under chaos: seeded runs stay bit-identical,
    and on a quiet network batching changes the wire shape only — every
    call's outcome matches the unbatched driver."""

    def test_batched_run_bit_identical_across_runs(self):
        a = run_chaos_batched()
        b = run_chaos_batched()
        assert a.curve.to_dicts() == b.curve.to_dicts()
        assert a.metrics == b.metrics
        assert a.result == b.result
        assert a.to_dict() == b.to_dict()

    def test_batching_actually_engaged_under_faults(self):
        """The determinism test must not pass vacuously: calls really
        travel batched, faults really land, and the run degrades."""
        report = run_chaos_batched()
        counters = report.metrics["counters"]
        assert counters["batch_flushes_total"] > 0
        assert counters["batched_calls_total"] > 0
        assert counters["faults_injected_total"] > 0
        assert report.result.errors > 0
        window = [b for b in report.curve.buckets
                  if 2.0 <= b.start < 4.0]
        baseline = report.curve.buckets[0].goodput
        assert min(b.goodput for b in window) < baseline

    def test_batched_seeds_differ(self):
        a = run_chaos_batched(seed=17)
        b = run_chaos_batched(seed=18)
        assert a.curve.to_dicts() != b.curve.to_dicts()

    def test_quiet_plan_batched_matches_unbatched_aggregates(self):
        """With no faults the batched and unbatched drivers agree on
        every aggregate: same successes, same errors (none), same
        per-object request counts."""
        direct = run_chaos(plan_factory=quiet_plan, n_requests=120)
        batched = run_chaos_batched(plan_factory=quiet_plan,
                                    n_requests=120)
        assert direct.result.errors == batched.result.errors == 0
        assert direct.result.ok == batched.result.ok == 120
        assert direct.result.per_object_requests == \
            batched.result.per_object_requests

    def test_batched_equals_unbatched_call_for_call(self):
        """Distinct per-call payloads echo back identically whether the
        calls ride a batch or go out alone — value for value, in
        order."""
        def drive(batched):
            sim, orb, table = make_world()
            gps = [table[name] for name in sorted(table)]
            payloads = [bytes([i % 251]) * (1 + i % 96)
                        for i in range(80)]
            values = []
            if batched:
                for base in range(0, len(payloads), 8):
                    futures, scopes = [], {}
                    for i in range(base, min(base + 8, len(payloads))):
                        gp = gps[i % len(gps)]
                        scope = scopes.get(id(gp))
                        if scope is None:
                            scope = scopes[id(gp)] = gp.batch()
                        futures.append(
                            scope.invoke("process", payloads[i]))
                    for scope in scopes.values():
                        scope.flush()
                    values.extend(f.result() for f in futures)
            else:
                for i, payload in enumerate(payloads):
                    values.append(
                        gps[i % len(gps)].invoke("process", payload))
            orb.shutdown()
            return values

        batched, direct = drive(True), drive(False)
        assert len(batched) == len(direct) == 80
        for got, want in zip(batched, direct):
            assert bytes(got) == bytes(want)


class TestChaosEnvelopeNegative:
    def test_broken_recovery_is_caught(self):
        """A partition that never heals must fail the envelope check —
        the negative test that proves assert_degradation has teeth."""

        def broken(seed):
            plan = FaultPlan(seed=seed)
            plan.partition_at(2.0, {"m0"}, {"m1", "m2"})
            # deliberately no heal_at: the cluster stays dark
            return plan

        report = run_chaos(plan_factory=broken)
        with pytest.raises(DegradationEnvelopeError):
            assert_degradation(report.curve, recover_within=4.0)


class TestChaosHarnessMechanics:
    def test_consumed_plan_refused(self):
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=30,
                                     object_names=list(table))
        plan = FaultPlan(seed=SEED)
        plan.drop(probability=0.3, dst="m0")
        chaos = ChaosRun(workload, plan, bucket_seconds=1.0)
        chaos.run([table], sim)
        with pytest.raises(ValueError, match="reset"):
            chaos.run([table], sim)
        orb.shutdown()

    def test_reset_allows_rerun(self):
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=30,
                                     object_names=list(table))
        plan = FaultPlan(seed=SEED)
        plan.drop(probability=0.3, dst="m0")
        chaos = ChaosRun(workload, plan, bucket_seconds=1.0)
        first = chaos.run([table], sim)
        plan.reset()
        second = chaos.run([table], sim)
        # same world, same rewound plan: same *fault trail*; virtual
        # time has moved on, so buckets shift but totals agree
        assert first.result.errors == second.result.errors
        assert first.metrics["counters"] == second.metrics["counters"]
        orb.shutdown()

    def test_plan_gets_private_bus(self):
        """ChaosRun must never record through GLOBAL_HOOKS (the GP
        mirrors every event there — it would double-count)."""
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=10,
                                     object_names=list(table))
        plan = FaultPlan(seed=SEED)        # defaults to GLOBAL_HOOKS
        assert plan.hooks is GLOBAL_HOOKS
        report = ChaosRun(workload, plan).run([table], sim)
        assert plan.hooks is not GLOBAL_HOOKS
        assert report.metrics["counters"]["requests_total"] == 10
        orb.shutdown()

    def test_recorder_detached_after_run(self):
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=10,
                                     object_names=list(table))
        report = ChaosRun(workload, FaultPlan(seed=SEED)).run([table], sim)
        before = report.metrics["counters"]["requests_total"]
        next(iter(table.values())).invoke("process", b"x")
        assert report.recorder.counter_value("requests_total") == before
        orb.shutdown()

    def test_resolve_path_attaches_lazily(self):
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=20,
                                     object_names=list(table))
        report = ChaosRun(workload, FaultPlan(seed=SEED)).run(
            [None], sim, resolve=lambda ci, name: table[name])
        assert report.metrics["counters"]["requests_total"] == 20
        orb.shutdown()


class TestWorkloadReuse:
    def test_repeated_run_accumulates_nothing(self):
        """Reuse regression: per-object counters, latency stats, and
        error counts must all start fresh on every run() call."""
        workload = SyntheticWorkload(seed=SEED, n_requests=25,
                                     object_names=["wm1-0", "wm2-0"])

        def one_run():
            sim, orb, table = make_world()
            result = workload.run([table], sim)
            orb.shutdown()
            return result

        first, second = one_run(), one_run()
        assert first == second
        assert first.to_dict() == second.to_dict()
        assert sum(first.per_object_requests.values()) == 25
        assert first.latencies.count == 25

    def test_back_to_back_runs_on_one_world(self):
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=20,
                                     object_names=list(table))
        first = workload.run([table], sim)
        second = workload.run([table], sim)
        # fresh result object per run: nothing carried over
        assert second.latencies.count == 20
        assert sum(second.per_object_requests.values()) == 20
        assert second.errors == 0
        assert first.latencies.count == 20
        orb.shutdown()

    def test_on_error_validation(self):
        sim, orb, table = make_world()
        workload = SyntheticWorkload(seed=SEED, n_requests=5,
                                     object_names=list(table))
        with pytest.raises(ValueError):
            workload.run([table], sim, on_error="ignore")
        orb.shutdown()
