"""Tests for the cluster harness and synthetic workloads."""

import pytest

from repro.cluster import SyntheticWorkload, build_cluster
from repro.cluster.node import WorkUnit
from repro.core import ORB, LoadBalancer
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology


def make_world(n_machines=3):
    topo = Topology()
    site = topo.add_site("site")
    lan = topo.add_lan("lan", site, ETHERNET_10)
    for i in range(n_machines):
        topo.add_machine(f"m{i}", lan)
    sim = NetworkSimulator(topo, keep_records=0)
    return sim, ORB(simulator=sim)


class TestClusterNode:
    def test_build_cluster(self):
        _sim, orb = make_world()
        nodes = build_cluster(orb, ["m0", "m1", "m2"], workers_per_node=2)
        assert len(nodes) == 3
        assert all(len(n.objects) == 2 for n in nodes)
        assert nodes[0].context.placement.machine == "m0"

    def test_needs_simulator(self):
        with pytest.raises(ValueError):
            build_cluster(ORB(), ["m0"])

    def test_worker_roundtrip(self):
        _sim, orb = make_world()
        nodes = build_cluster(orb, ["m0", "m1"], workers_per_node=1)
        client = orb.context("client", machine="m0")
        oref = nodes[1].objects["wm1-0"]
        gp = client.bind(oref)
        assert gp.invoke("process", b"data") == b"data"
        assert gp.invoke("status")["calls"] == 1

    def test_worker_migratable(self):
        from repro.core.migration import migrate

        _sim, orb = make_world()
        nodes = build_cluster(orb, ["m0", "m1"], workers_per_node=1)
        oref = nodes[0].objects["wm0-0"]
        client = orb.context("client", machine="m1")
        gp = client.bind(oref)
        gp.invoke("process", b"x")
        migrate(nodes[0].context, oref.object_id, nodes[1].context,
                by_value=True)
        assert gp.invoke("status")["calls"] == 1


class TestSyntheticWorkload:
    def test_script_deterministic(self):
        w = SyntheticWorkload(seed=3, n_requests=50,
                              object_names=["a", "b"])
        assert w.script(4) == w.script(4)

    def test_different_seeds_differ(self):
        mk = lambda s: SyntheticWorkload(
            seed=s, n_requests=50, object_names=["a", "b"]).script(2)
        assert mk(1) != mk(2)

    def test_hotspot_skew(self):
        w = SyntheticWorkload(seed=1, n_requests=500,
                              object_names=["hot", "c1", "c2", "c3"],
                              hot_objects=["hot"], hotspot_fraction=0.9)
        script = w.script(2)
        hot = sum(1 for r in script if r.object_name == "hot")
        assert hot > 400

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(object_names=[])
        with pytest.raises(ValueError):
            SyntheticWorkload(object_names=["a"], hotspot_fraction=1.5)

    def test_run_collects_latencies(self):
        sim, orb = make_world(2)
        nodes = build_cluster(orb, ["m0", "m1"], workers_per_node=1)
        client = orb.context("client", machine="m0")
        gps = {"wm0-0": client.bind(nodes[0].objects["wm0-0"]),
               "wm1-0": client.bind(nodes[1].objects["wm1-0"])}
        w = SyntheticWorkload(seed=1, n_requests=40,
                              object_names=list(gps),
                              payload_bytes=1024)
        result = w.run([gps], sim)
        assert result.latencies.count == 40
        assert result.makespan > 0
        assert sum(result.per_object_requests.values()) == 40
        assert result.latency_percentile(50) > 0

    def test_run_with_rebalance_hook(self):
        sim, orb = make_world(2)
        nodes = build_cluster(orb, ["m0", "m1"], workers_per_node=1)
        client = orb.context("client", machine="m0")
        gps = {"wm0-0": client.bind(nodes[0].objects["wm0-0"])}
        w = SyntheticWorkload(seed=1, n_requests=20,
                              object_names=["wm0-0"])
        calls = []
        result = w.run([gps], sim, rebalance_every=5,
                       rebalance=lambda: calls.append(1) or [])
        assert len(calls) == 4
        assert result.migrations == 0

    def test_nearby_objects_are_faster(self):
        """Locality shows up in workload latencies: a client hammering a
        remote object sees higher mean latency than a local one."""
        sim, orb = make_world(2)
        nodes = build_cluster(orb, ["m0", "m1"], workers_per_node=1)
        client = orb.context("client", machine="m0")
        local = {"w": client.bind(nodes[0].objects["wm0-0"])}
        remote = {"w": client.bind(nodes[1].objects["wm1-0"])}
        w = SyntheticWorkload(seed=1, n_requests=30, object_names=["w"],
                              payload_bytes=4096, mean_think_seconds=0)
        r_local = w.run([local], sim)
        r_remote = w.run([remote], sim)
        assert r_remote.mean_latency > 2 * r_local.mean_latency
