"""Property tests for the proc-cluster control-channel records.

The control channel is how a parent learns its children are alive,
healthy, and gone; a record that silently misparses turns process
orchestration into guesswork.  Same adversarial treatment as the batch
records: arbitrary contents round-trip exactly; truncation, trailing
garbage, foreign kinds, and corrupted counts are rejected loudly.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.control import (
    CONTROL_KINDS,
    MAX_WORKERS,
    ConfigRecord,
    ControlChannel,
    GoodbyeRecord,
    ReadyRecord,
    ShutdownRecord,
    SnapshotRecord,
    SnapshotRequest,
    decode_record,
)
from repro.exceptions import ChannelClosedError, MarshalError, TransportError
from repro.serialization.xdr import XdrEncoder

names_st = st.text(min_size=0, max_size=32)
str_map_st = st.dictionaries(st.text(max_size=24), st.text(max_size=48),
                             max_size=8)
#: A structurally valid registry snapshot with assorted value shapes.
snapshot_st = st.fixed_dictionaries({
    "counters": st.dictionaries(st.text(max_size=16),
                                st.floats(allow_nan=False,
                                          allow_infinity=False),
                                max_size=6),
    "gauges": st.dictionaries(st.text(max_size=16),
                              st.floats(allow_nan=False,
                                        allow_infinity=False),
                              max_size=4),
    "histograms": st.dictionaries(
        st.text(max_size=16),
        st.one_of(st.none(),
                  st.fixed_dictionaries({"count": st.integers(0, 2**31)})),
        max_size=4),
    "series": st.dictionaries(
        st.text(max_size=16),
        st.lists(st.fixed_dictionaries({
            "bucket": st.integers(0, 2**31),
            "count": st.integers(0, 2**31)}), max_size=3),
        max_size=4),
})

records_st = st.one_of(
    st.builds(ConfigRecord, node=names_st, context_id=names_st,
              workers=st.lists(st.text(max_size=24), max_size=8).map(tuple),
              options=str_map_st),
    st.builds(ReadyRecord, node=names_st,
              pid=st.integers(min_value=0, max_value=2**31),
              orefs=str_map_st),
    st.just(SnapshotRequest()),
    st.builds(SnapshotRecord, node=names_st,
              captured_at=st.floats(allow_nan=False, allow_infinity=False),
              metrics=snapshot_st,
              servant_calls=st.dictionaries(
                  st.text(max_size=16),
                  st.integers(min_value=0, max_value=2**63 - 1),
                  max_size=6)),
    st.builds(ShutdownRecord, reason=names_st),
    st.builds(GoodbyeRecord, node=names_st, clean=st.booleans()),
)


class TestRoundtrip:
    @given(records_st)
    def test_roundtrip_exact(self, record):
        wire = record.to_bytes()
        assert type(record).from_bytes(wire) == record

    @given(records_st)
    def test_decode_record_dispatches_by_kind(self, record):
        decoded = decode_record(record.to_bytes())
        assert type(decoded) is type(record)
        assert decoded == record


class TestRejection:
    @given(records_st)
    @settings(max_examples=40)
    def test_truncation_always_rejected(self, record):
        wire = record.to_bytes()
        for cut in range(0, len(wire), max(1, len(wire) // 16)):
            if cut == len(wire):
                continue
            with pytest.raises(MarshalError):
                type(record).from_bytes(wire[:cut])

    @given(records_st, st.binary(min_size=1, max_size=16))
    @settings(max_examples=40)
    def test_trailing_garbage_rejected(self, record, junk):
        with pytest.raises(MarshalError):
            type(record).from_bytes(record.to_bytes() + junk)

    def test_kind_tags_are_disjoint(self):
        """Six record kinds, six distinct tags — and none shared with
        the batch (0xB0A0/1) or snapshot (0x5A90) records."""
        assert len(set(CONTROL_KINDS)) == len(CONTROL_KINDS)
        assert not set(CONTROL_KINDS) & {0xB0A0, 0xB0A1, 0x5A90}

    def test_cross_kind_decode_rejected(self):
        """Every record refuses every *other* record's wire bytes."""
        samples = [ConfigRecord("n", "c", ("w",)),
                   ReadyRecord("n", 1, {}),
                   SnapshotRequest(),
                   SnapshotRecord("n", 0.0, {"counters": {}, "gauges": {},
                                             "histograms": {},
                                             "series": {}}),
                   ShutdownRecord(),
                   GoodbyeRecord("n")]
        for this in samples:
            for other in samples:
                if type(this) is type(other):
                    continue
                with pytest.raises(MarshalError, match="not a"):
                    type(this).from_bytes(other.to_bytes())

    def test_unknown_kind_rejected(self):
        enc = XdrEncoder()
        enc.pack_uint(0xDEAD)
        with pytest.raises(MarshalError, match="unknown control record"):
            decode_record(enc.getvalue())

    def test_insane_worker_count_rejected(self):
        enc = XdrEncoder()
        enc.pack_uint(CONTROL_KINDS[0])   # ConfigRecord
        enc.pack_string("n")
        enc.pack_string("ctx")
        enc.pack_uint(MAX_WORKERS + 1)
        with pytest.raises(MarshalError, match="claims"):
            ConfigRecord.from_bytes(enc.getvalue())

    def test_empty_buffer_rejected(self):
        with pytest.raises(MarshalError):
            decode_record(b"")


class TestControlChannel:
    """The framed pipe transport under the records."""

    def make_pair(self):
        a_r, b_w = os.pipe()
        b_r, a_w = os.pipe()
        return ControlChannel(a_r, a_w), ControlChannel(b_r, b_w)

    def test_bidirectional_records(self):
        parent, child = self.make_pair()
        try:
            parent.send(ConfigRecord("n0", "ctx", ("w0",), {"k": "v"}))
            config = child.recv(timeout=5.0)
            assert config == ConfigRecord("n0", "ctx", ("w0",), {"k": "v"})
            child.send(ReadyRecord("n0", 42, {"w0": "hpcor:AAAA"}))
            assert parent.recv(timeout=5.0).pid == 42
        finally:
            parent.close()
            child.close()

    def test_recv_timeout_leaves_channel_usable(self):
        parent, child = self.make_pair()
        try:
            with pytest.raises(TransportError, match="timed out"):
                parent.recv(timeout=0.05)
            child.send(GoodbyeRecord("n0"))
            assert parent.recv(timeout=5.0) == GoodbyeRecord("n0")
        finally:
            parent.close()
            child.close()

    def test_peer_close_raises_channel_closed(self):
        parent, child = self.make_pair()
        try:
            child.close()
            with pytest.raises(ChannelClosedError):
                parent.recv(timeout=5.0)
        finally:
            parent.close()

    def test_send_after_close_rejected(self):
        parent, child = self.make_pair()
        parent.close()
        child.close()
        with pytest.raises(ChannelClosedError):
            parent.send(SnapshotRequest())

    @given(st.lists(records_st, min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_record_stream_preserves_order_and_content(self, records):
        parent, child = self.make_pair()
        try:
            for record in records:
                parent.send(record)
            for record in records:
                assert child.recv(timeout=5.0) == record
        finally:
            parent.close()
            child.close()
