"""OverloadRun: seeded open-loop load, bit-identical reports, and the
baseline-collapse contrast the admission layer exists to prevent."""

import json

import pytest

from repro.admission import AdmissionPolicy
from repro.cluster import OverloadPhase, OverloadRun

PHASES = [OverloadPhase(duration=4.0, rate=800.0, mix=(0.6, 0.3, 0.1))]
KW = dict(seed=11, service_time=0.02, deadline=0.25, baseline_workers=4)


def policy(**kw):
    defaults = dict(enabled=True, max_limit=4, queue_capacity=8)
    defaults.update(kw)
    return AdmissionPolicy(**defaults)


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadPhase(duration=0, rate=10)
        with pytest.raises(ValueError):
            OverloadPhase(duration=1, rate=-1)
        with pytest.raises(ValueError):
            OverloadPhase(duration=1, rate=1, mix=(0.5, 0.5))
        with pytest.raises(ValueError):
            OverloadPhase(duration=1, rate=1, mix=(0.9, 0.2, 0.1))

    def test_run_validation(self):
        with pytest.raises(ValueError):
            OverloadRun(service_time=0)
        with pytest.raises(ValueError):
            OverloadRun(deadline=-1)
        with pytest.raises(ValueError):
            OverloadRun().run([])


class TestDeterminism:
    def test_same_seed_bit_identical_reports(self):
        a = OverloadRun(policy=policy(), **KW).run(PHASES)
        b = OverloadRun(policy=policy(), **KW).run(PHASES)
        assert a.to_dict() == b.to_dict()
        # and json-stable, so committed bench results are reproducible
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)

    def test_different_seed_diverges(self):
        kw = dict(KW)
        a = OverloadRun(policy=policy(), **kw).run(PHASES)
        kw["seed"] = 12
        c = OverloadRun(policy=policy(), **kw).run(PHASES)
        assert a.to_dict() != c.to_dict()

    def test_baseline_run_deterministic_too(self):
        a = OverloadRun(policy=None, **KW).run(PHASES)
        b = OverloadRun(policy=None, **KW).run(PHASES)
        assert a.to_dict() == b.to_dict()


class TestContrast:
    def test_admission_holds_goodput_where_baseline_collapses(self):
        protected = OverloadRun(policy=policy(), **KW).run(PHASES)
        baseline = OverloadRun(policy=None, **KW).run(PHASES)
        # both saw the same offered load (same seed, same arrivals)
        assert protected.offered == baseline.offered
        # baseline completes at capacity but far past every deadline
        assert baseline.completed > 0.9 * protected.timely
        assert protected.goodput > 5 * baseline.goodput
        assert protected.shed_by_reason["queue_full"] > 0

    def test_interactive_served_ahead_of_batch(self):
        r = OverloadRun(policy=policy(), **KW).run(PHASES)
        inter = r.latency_by_class["interactive"]
        batch = r.latency_by_class["batch"]
        assert inter["count"] and batch["count"]
        assert inter["p99"] < batch["p99"]

    def test_underload_sheds_nothing(self):
        light = [OverloadPhase(duration=4.0, rate=50.0)]
        r = OverloadRun(policy=policy(), **KW).run(light)
        assert r.shed == 0
        assert r.timely == r.completed == r.offered

    def test_report_accounting(self):
        r = OverloadRun(policy=policy(), **KW).run(PHASES)
        assert r.completed + r.shed == r.offered
        assert r.shed == sum(r.shed_by_reason.values())
        assert sum(b["offered"] for b in r.buckets) == r.offered
        assert r.admission is not None and r.admission["enabled"]
        base = OverloadRun(policy=None, **KW).run(PHASES)
        assert base.admission is None

    def test_admission_metrics_recorded(self):
        r = OverloadRun(policy=policy(), **KW).run(PHASES)
        counters = r.metrics["counters"]
        # deadline sheds happen *after* admission (the budget died in
        # the queue), so admits = completions + in-queue expiries
        assert counters["admits_total"] == \
            r.completed + r.shed_by_reason.get("deadline", 0)
        assert counters["sheds_total"] == r.shed
