"""Tests for the admission-time placement scheduler."""

import pytest

from repro.cluster import PlacementScheduler, build_cluster
from repro.core import ORB, HealthMonitor
from repro.core.context import Placement
from repro.exceptions import HpcError
from repro.simnet import ETHERNET_10, NetworkSimulator, Topology

from tests.core.conftest import Counter


def make_world():
    topo = Topology()
    site_a = topo.add_site("a")
    site_b = topo.add_site("b")
    lan1 = topo.add_lan("lan1", site_a, ETHERNET_10)
    lan2 = topo.add_lan("lan2", site_a, ETHERNET_10)
    lan3 = topo.add_lan("lan3", site_b, ETHERNET_10)
    topo.connect(lan1, lan2, ETHERNET_10)
    topo.connect(lan2, lan3, ETHERNET_10)
    for i, lan in enumerate((lan1, lan2, lan3)):
        topo.add_machine(f"m{i}", lan)
    sim = NetworkSimulator(topo)
    orb = ORB(simulator=sim)
    nodes = build_cluster(orb, ["m0", "m1", "m2"])
    return orb, [n.context for n in nodes]


class TestPolicies:
    def test_round_robin_cycles(self):
        _orb, contexts = make_world()
        sched = PlacementScheduler(contexts, policy="round-robin")
        chosen = [sched.place(Counter())[0].id for _ in range(6)]
        assert chosen[:3] == [c.id for c in contexts]
        assert chosen[3:] == chosen[:3]

    def test_least_loaded(self):
        _orb, contexts = make_world()
        contexts[0].monitor.busy_fraction.value = 0.8
        contexts[1].monitor.busy_fraction.value = 0.1
        contexts[2].monitor.busy_fraction.value = 0.5
        sched = PlacementScheduler(contexts, policy="least-loaded")
        ctx, oref = sched.place(Counter())
        assert ctx is contexts[1]
        assert oref.object_id in ctx.servants
        assert sched.placements == [(oref.object_id, ctx.id)]

    def test_locality_prefers_nearest(self):
        _orb, contexts = make_world()
        sched = PlacementScheduler(contexts, policy="locality")
        client_placement = Placement("m2", "lan3", "b")
        ctx, _oref = sched.place(Counter(), near=client_placement)
        assert ctx.placement.machine == "m2"

    def test_locality_breaks_ties_by_load(self):
        _orb, contexts = make_world()
        # Client is on no machine we host: all contexts are "remote".
        client_placement = Placement("elsewhere", "nowhere", "offsite")
        contexts[0].monitor.busy_fraction.value = 0.9
        contexts[1].monitor.busy_fraction.value = 0.1
        contexts[2].monitor.busy_fraction.value = 0.5
        sched = PlacementScheduler(contexts, policy="locality")
        ctx = sched.choose(near=client_placement)
        assert ctx is contexts[1]

    def test_locality_needs_placement(self):
        _orb, contexts = make_world()
        sched = PlacementScheduler(contexts, policy="locality")
        with pytest.raises(HpcError):
            sched.choose()

    def test_unknown_policy(self):
        _orb, contexts = make_world()
        with pytest.raises(HpcError):
            PlacementScheduler(contexts, policy="astrology")

    def test_empty_contexts(self):
        with pytest.raises(HpcError):
            PlacementScheduler([])


class TestHealthVeto:
    def test_dead_context_skipped(self):
        orb = ORB()
        home = orb.context("home")
        home.call_timeout = 0.3
        a = orb.context("a")
        b = orb.context("b")
        health = HealthMonitor(home)
        health.watch_context(a)
        health.watch_context(b)
        a.stop()
        health.sweep()
        sched = PlacementScheduler([a, b], policy="round-robin",
                                   health=health)
        for _ in range(4):
            ctx, _ = sched.place(Counter())
            assert ctx is b
        orb.shutdown()

    def test_all_dead_raises(self):
        orb = ORB()
        home = orb.context("home2")
        home.call_timeout = 0.3
        a = orb.context("a2")
        health = HealthMonitor(home)
        health.watch_context(a)
        a.stop()
        health.sweep()
        sched = PlacementScheduler([a], health=health)
        with pytest.raises(HpcError):
            sched.choose()
        orb.shutdown()


class TestEndToEnd:
    def test_placed_objects_reachable(self):
        orb, contexts = make_world()
        client = orb.context("client", machine="m0")
        sched = PlacementScheduler(contexts, policy="round-robin")
        orefs = [sched.place(Counter())[1] for _ in range(3)]
        for i, oref in enumerate(orefs):
            gp = client.bind(oref)
            assert gp.invoke("add", i + 1) == i + 1
