"""Tests for RLE, LZSS, and zlib codecs and the registry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    CODECS,
    LzssCodec,
    RleCodec,
    ZlibCodec,
    get_codec,
    register_codec,
)
from repro.compression.codec import Codec
from repro.exceptions import CompressionError

ALL_CODECS = [RleCodec(), LzssCodec(), ZlibCodec()]


@pytest.fixture(params=ALL_CODECS, ids=lambda c: c.name)
def codec(request):
    return request.param


class TestRoundtrips:
    def test_empty(self, codec):
        assert codec.decompress(codec.compress(b"")) == b""

    def test_simple(self, codec):
        msg = b"hello hello hello world"
        assert codec.decompress(codec.compress(msg)) == msg

    def test_binary_payload(self, codec):
        rng = np.random.default_rng(1)
        msg = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        assert codec.decompress(codec.compress(msg)) == msg

    def test_long_runs(self, codec):
        msg = b"\x00" * 100_000 + b"\x01" * 3 + b"\x00" * 500
        assert codec.decompress(codec.compress(msg)) == msg

    def test_single_byte(self, codec):
        assert codec.decompress(codec.compress(b"x")) == b"x"

    def test_accepts_memoryview(self, codec):
        msg = b"abcabcabc" * 10
        assert codec.decompress(codec.compress(memoryview(msg))) == msg

    @given(st.binary(max_size=3000))
    @settings(max_examples=40)
    def test_roundtrip_property_rle(self, msg):
        c = RleCodec()
        assert c.decompress(c.compress(msg)) == msg

    @given(st.binary(max_size=1500))
    @settings(max_examples=30)
    def test_roundtrip_property_lzss(self, msg):
        c = LzssCodec()
        assert c.decompress(c.compress(msg)) == msg

    @given(st.binary(max_size=3000))
    @settings(max_examples=30)
    def test_roundtrip_property_zlib(self, msg):
        c = ZlibCodec()
        assert c.decompress(c.compress(msg)) == msg


class TestCompressionQuality:
    def test_rle_wins_on_zero_runs(self):
        msg = b"\x00" * 50_000
        assert RleCodec().ratio(msg) < 0.01

    def test_lzss_compresses_repetitive_text(self):
        msg = b"the quick brown fox " * 500
        assert LzssCodec().ratio(msg) < 0.3

    def test_zlib_compresses_text(self):
        msg = b"some highly repetitive text. " * 200
        assert ZlibCodec().ratio(msg) < 0.2

    def test_ratio_of_empty_is_one(self):
        assert RleCodec().ratio(b"") == 1.0

    def test_incompressible_data_bounded_expansion(self):
        rng = np.random.default_rng(0)
        msg = rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes()
        # RLE worst case is 2x + header; LZSS worst case ~ 1.13x.
        assert len(RleCodec().compress(msg)) <= 2 * len(msg) + 16
        assert len(LzssCodec().compress(msg)) <= 1.2 * len(msg) + 16


class TestErrorHandling:
    def test_wrong_magic_rejected(self, codec):
        with pytest.raises(CompressionError):
            codec.decompress(b"XXX\x00\x00\x00\x00garbage")

    def test_cross_codec_rejected(self):
        wire = RleCodec().compress(b"data data data")
        with pytest.raises(CompressionError):
            LzssCodec().decompress(wire)
        with pytest.raises(CompressionError):
            ZlibCodec().decompress(wire)

    def test_truncated_stream_rejected(self, codec):
        wire = codec.compress(b"payload payload payload" * 20)
        with pytest.raises(CompressionError):
            codec.decompress(wire[: len(wire) // 2])

    def test_rle_zero_count_rejected(self):
        # Hand-craft an RL1 stream with an illegal zero-length run.
        bad = b"RL1" + (1).to_bytes(4, "big") + b"\x00\x41"
        with pytest.raises(CompressionError):
            RleCodec().decompress(bad)

    def test_zlib_level_validation(self):
        with pytest.raises(ValueError):
            ZlibCodec(level=10)


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("rle", "lzss", "zlib"):
            assert name in CODECS
            assert get_codec(name).name == name

    def test_unknown_codec(self):
        with pytest.raises(CompressionError):
            get_codec("nope")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_codec(RleCodec())

    def test_replace_allowed(self):
        original = get_codec("rle")
        try:
            replacement = RleCodec()
            register_codec(replacement, replace=True)
            assert get_codec("rle") is replacement
        finally:
            register_codec(original, replace=True)

    def test_unnamed_codec_rejected(self):
        class Nameless(Codec):
            name = ""

            def compress(self, data):
                return b""

            def decompress(self, data):
                return b""

        with pytest.raises(ValueError):
            register_codec(Nameless())
