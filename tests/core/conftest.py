"""Shared fixtures for core tests: servants, wall-clock and simulated
ORB worlds."""

import pytest

from repro.core import ORB
from repro.idl import remote_interface, remote_method
from repro.simnet import NetworkSimulator, paper_testbed


@remote_interface("Counter")
class Counter:
    """Simple stateful servant used across the core tests."""

    def __init__(self, start: int = 0):
        self.n = start

    @remote_method
    def add(self, k: int) -> int:
        self.n += k
        return self.n

    @remote_method
    def get(self) -> int:
        return self.n

    @remote_method
    def fail(self, message: str):
        raise RuntimeError(message)

    @remote_method(oneway=True)
    def bump(self):
        self.n += 1

    @remote_method
    def echo(self, value):
        return value

    # state protocol for by-value migration
    def hpc_get_state(self):
        return {"n": self.n}

    def hpc_set_state(self, state):
        self.n = state["n"]


@pytest.fixture
def wall_orb():
    orb = ORB()
    yield orb
    orb.shutdown()


@pytest.fixture
def wall_pair(wall_orb):
    """(server ctx, client ctx) in one wall-clock 'machine'."""
    server = wall_orb.context("server")
    client = wall_orb.context("client")
    return server, client


@pytest.fixture
def sim_world():
    """The paper testbed: simulator + ORB + client on M0 and one server
    context per machine."""
    tb = paper_testbed()
    sim = NetworkSimulator(tb.topology)
    orb = ORB(simulator=sim)
    contexts = {
        "client": orb.context("client", machine=tb.m0),
        "s1": orb.context("s1", machine=tb.m1),
        "s2": orb.context("s2", machine=tb.m2),
        "s3": orb.context("s3", machine=tb.m3),
        "s4": orb.context("s4", machine=tb.m0),
    }
    yield orb, sim, tb, contexts
    orb.shutdown()
