"""The call coalescer and batch scopes: semantics, not just speed.

The performance claim lives in ``benchmarks/bench_batching.py``; here
we pin the *correctness* contract of `repro.core.batching`:

* results and errors are delivered per member, never smeared across a
  batch;
* a whole-batch transport failure falls back to individual calls
  through the GP's normal retry machinery;
* ``invoke_oneway`` and ``GlobalPointer.close()`` flush pending
  batches — the shutdown-loss regression (a call enqueued in an
  un-expired window must complete, not vanish);
* explicit scopes work identically in the simulated world.
"""

import threading
import time

import pytest

from repro.core.batching import BatchPolicy, BatchScope, CallCoalescer
from repro.exceptions import (
    HpcError,
    InterfaceError,
    RemoteException,
    TransportError,
)

from tests.core.conftest import Counter


def enable_batching(context, **overrides):
    policy = context.batch_policy
    policy.enabled = True
    for key, value in overrides.items():
        setattr(policy, key, value)
    return policy


class TestPolicy:
    def test_window_without_history_is_min(self):
        policy = BatchPolicy(min_window=0.001)
        assert policy.window_for(None) == 0.001

    def test_window_tracks_p50_clamped(self):
        from repro.core.instrumentation import LatencyTracker

        policy = BatchPolicy(min_window=0.001, max_window=0.010,
                             window_fraction=0.5)
        tracker = LatencyTracker()
        for _ in range(10):
            tracker.observe(0.008)
        assert policy.window_for(tracker) == pytest.approx(0.004)
        for _ in range(50):
            tracker.observe(10.0)       # slow peer: clamp to max
        assert policy.window_for(tracker) == 0.010
        fast = LatencyTracker()
        for _ in range(10):
            fast.observe(1e-7)          # fast peer: clamp to min
        assert policy.window_for(fast) == 0.001


class TestTransparentCoalescing:
    def test_results_match_direct_calls(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client)
        flushes = []
        gp.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        futures = [gp.invoke_async("add", 1) for _ in range(24)]
        results = sorted(f.result(timeout=30) for f in futures)
        assert results == list(range(1, 25))
        assert gp.invoke("get") == 24
        assert sum(f["size"] for f in flushes) >= 24
        gp.close()

    def test_batch_caps_force_flush(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        # A huge window: only the caps can flush multi-member batches.
        enable_batching(client, max_batch=4, min_window=5.0,
                        max_window=5.0)
        flushes = []
        gp.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        futures = [gp.invoke_async("add", 1) for _ in range(8)]
        for f in futures:
            f.result(timeout=30)
        assert gp.invoke_oneway("bump") is None  # drains leftovers too
        full = [f for f in flushes if f["reason"] == "full"]
        assert full and all(f["size"] == 4 for f in full)
        gp.close()

    def test_member_exception_is_per_member(self, wall_pair):
        """One failing member never poisons its batch-mates."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, min_window=0.05)
        good = [gp.invoke_async("add", 1) for _ in range(3)]
        bad = gp.invoke_async("fail", "kaput")
        more = [gp.invoke_async("add", 1) for _ in range(3)]
        assert sorted(f.result(timeout=30) for f in good + more) \
            == list(range(1, 7))
        with pytest.raises(RemoteException, match="kaput"):
            bad.result(timeout=30)
        gp.close()

    def test_oversized_payload_rides_alone(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, max_item_bytes=64)
        flushes = []
        gp.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        blob = "x" * 4096
        assert gp.invoke("echo", blob) == blob
        assert not flushes  # went down the direct path
        gp.close()


class TestWholeBatchFallback:
    def test_members_retry_individually(self, wall_pair):
        """A dead wire under a whole batch: every member falls back
        through its own GP and still completes."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, min_window=0.2)
        entry = gp.select_protocol()
        proto_client = gp._client_for(entry)
        calls = {"n": 0}

        def broken_batch(payloads, **kwargs):
            calls["n"] += 1
            raise TransportError("wire cut under the batch")

        proto_client.invoke_batch = broken_batch
        fallbacks = []
        gp.hooks.on("batch_fallback", lambda ev: fallbacks.append(ev.data))
        futures = [gp.invoke_async("add", 1) for _ in range(4)]
        results = sorted(f.result(timeout=30) for f in futures)
        assert results == [1, 2, 3, 4]
        assert calls["n"] >= 1
        assert len(fallbacks) >= 4
        assert all(not f["dispatched"] for f in fallbacks)
        gp.close()

    def test_unsafe_member_not_blind_retried(self, wall_pair):
        """When the batch may have reached dispatch, a non-retry-safe
        member surfaces the error instead of double-executing."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, min_window=0.2)
        proto_client = gp._client_for(gp.select_protocol())

        def sent_then_died(payloads, **kwargs):
            exc = TransportError("reply lost")
            exc.request_sent = True
            raise exc

        proto_client.invoke_batch = sent_then_died
        future = gp.invoke_async("add", 1)  # add is not retry_safe
        with pytest.raises(TransportError, match="reply lost"):
            future.result(timeout=30)
        # Exactly-once preserved: the add either ran zero or one time,
        # never two — and here the batch never really dispatched.
        assert gp.invoke("get") == 0
        gp.close()


class TestShutdownFlush:
    """Regression: calls must not be lost at shutdown (fix #4)."""

    def test_oneway_flushes_pending_window(self, wall_pair):
        """invoke_oneway returns only after the pending batch (its own
        call included) is on the wire — even mid-window."""
        server, client = wall_pair
        counter = Counter()
        gp = client.bind(server.export(counter))
        enable_batching(client, min_window=10.0, max_window=10.0)
        # A two-way call parks in the 10s window on a helper thread...
        parked = gp.invoke_async("add", 5)
        deadline = time.monotonic() + 5
        while client.batching.pending() == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert client.batching.pending() == 1
        # ...then a oneway must flush the whole batch eagerly.
        started = time.monotonic()
        gp.invoke_oneway("bump")
        assert time.monotonic() - started < 5.0, "oneway sat in window"
        assert parked.result(timeout=30) == 5
        assert gp.invoke("get") == 6
        gp.close()

    def test_close_flushes_pending_window(self, wall_pair):
        """close() drains calls still coalescing toward the peer."""
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, min_window=10.0, max_window=10.0)
        parked = gp.invoke_async("add", 7)
        deadline = time.monotonic() + 5
        while client.batching.pending() == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert client.batching.pending() == 1
        gp.close()
        assert parked.result(timeout=30) == 7
        assert client.batching.pending() == 0

    def test_coalescer_flush_returns_count(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, min_window=10.0)
        gp.invoke_async("add", 1)
        deadline = time.monotonic() + 5
        while client.batching.pending() == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        assert client.batching.flush_all() == 1
        assert client.batching.flush_all() == 0
        gp.close()


class TestBatchScope:
    def test_scope_wall_clock(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        with gp.batch() as b:
            futures = [b.invoke("add", i) for i in range(5)]
            assert b.pending == 5
        assert [f.result() for f in futures] == [0, 1, 3, 6, 10]

    def test_scope_chunks_by_policy(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        client.batch_policy.max_batch = 3  # scopes honor caps even off
        flushes = []
        gp.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        with gp.batch() as b:
            futures = [b.invoke("add", 1) for _ in range(8)]
        assert sorted(f.result() for f in futures) == list(range(1, 9))
        assert [f["size"] for f in flushes] == [3, 3, 2]
        assert all(f["reason"] == "scope" for f in flushes)

    def test_scope_member_errors_and_oneway(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        with gp.batch() as b:
            ok = b.invoke("add", 1)
            boom = b.invoke("fail", "scoped")
            fire = b.invoke_oneway("bump")
            missing = b.invoke("no_such_method")
        assert ok.result() == 1
        with pytest.raises(RemoteException, match="scoped"):
            boom.result()
        assert fire.result() is None
        with pytest.raises(InterfaceError):
            missing.result()
        assert gp.invoke("get") == 2  # add + bump both landed

    def test_scope_aborts_on_exception(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        with pytest.raises(RuntimeError):
            with gp.batch() as b:
                future = b.invoke("add", 1)
                raise RuntimeError("caller blew up mid-scope")
        with pytest.raises(HpcError, match="aborted"):
            future.result()
        assert gp.invoke("get") == 0  # nothing was sent

    def test_scope_closed_after_exit(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        with gp.batch() as b:
            b.invoke("add", 1)
        with pytest.raises(HpcError, match="already flushed"):
            b.invoke("add", 2)

    def test_scope_in_sim_world(self, sim_world):
        orb, sim, tb, contexts = sim_world
        gp = contexts["client"].bind(contexts["s1"].export(Counter()))
        with gp.batch() as b:
            futures = [b.invoke("add", 1) for _ in range(10)]
        assert sorted(f.result() for f in futures) == list(range(1, 11))
        assert gp.invoke("get") == 10

    def test_sim_scope_is_deterministic(self):
        """Same seed, same ops => bit-identical virtual timelines."""
        from repro.core import ORB
        from repro.simnet import NetworkSimulator, paper_testbed

        def run():
            tb = paper_testbed()
            sim = NetworkSimulator(tb.topology)
            orb = ORB(simulator=sim)
            server = orb.context("srv", machine=tb.m1)
            client = orb.context("cli", machine=tb.m0)
            gp = client.bind(server.export(Counter()))
            with gp.batch() as b:
                futures = [b.invoke("add", i) for i in range(20)]
            values = [f.result() for f in futures]
            return values, sim.clock.now()

        assert run() == run()


class TestCoalescerUnit:
    def test_leader_flushes_alone_after_window(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        enable_batching(client, min_window=0.01, max_window=0.01)
        flushes = []
        gp.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        assert gp.invoke("add", 3) == 3  # lone leader: batch of one
        assert flushes and flushes[0]["size"] == 1
        assert flushes[0]["reason"] == "window"
        gp.close()

    def test_concurrent_gps_share_one_coalescer(self, wall_pair):
        """Two GPs to the same peer coalesce into the same batches."""
        server, client = wall_pair
        counter = Counter()
        oref = server.export(counter)
        gp1, gp2 = client.bind(oref), client.bind(oref)
        enable_batching(client, min_window=0.2)
        flushes = []
        gp1.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        gp2.hooks.on("batch_flush", lambda ev: flushes.append(ev.data))
        barrier = threading.Barrier(2)

        def caller(gp):
            barrier.wait()
            return gp.invoke("add", 1)

        t1 = threading.Thread(target=caller, args=(gp1,))
        t2 = threading.Thread(target=caller, args=(gp2,))
        t1.start(); t2.start()
        t1.join(timeout=30); t2.join(timeout=30)
        assert gp1.invoke("get") == 2
        assert any(f["size"] == 2 for f in flushes), \
            [f["size"] for f in flushes]
        key = (gp1.oref.context_id, gp1.select_protocol().proto_id)
        co = client.batching.coalescer(*key)
        assert isinstance(co, CallCoalescer)
        assert co.pending == 0
        gp1.close(); gp2.close()

    def test_sim_context_never_coalesces(self, sim_world):
        """Transparent coalescing is wall-clock only; the synchronous
        virtual world takes the direct path even when enabled."""
        orb, sim, tb, contexts = sim_world
        client = contexts["client"]
        gp = client.bind(contexts["s1"].export(Counter()))
        enable_batching(client, min_window=5.0)
        assert gp.invoke("add", 1) == 1  # would hang if it coalesced
        assert client.batching.pending() == 0


class TestScopeDirect:
    def test_scope_on_closed_gp_fails_futures(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        gp.close()
        scope = BatchScope(gp)
        future = scope.invoke("add", 1)
        scope.flush()
        with pytest.raises(HpcError):
            future.result()

    def test_empty_scope_flush_is_noop(self, wall_pair):
        server, client = wall_pair
        gp = client.bind(server.export(Counter()))
        assert BatchScope(gp).flush() == 0
