"""Unit tests for the capability objects (client/server halves paired
directly, without the full ORB)."""

import pytest

from repro.core.capabilities import (
    CAPABILITY_TYPES,
    AuthenticationCapability,
    CallQuotaCapability,
    CompressionCapability,
    EncryptionCapability,
    IntegrityCapability,
    TimeLeaseCapability,
    TracingCapability,
    make_capability,
)
from repro.core.capabilities.base import Capability, register_capability_type
from repro.core.request import RequestMeta
from repro.exceptions import (
    AuthenticationError,
    CapabilityError,
    CompressionError,
    DecryptionError,
    IntegrityError,
    LeaseExpiredError,
    QuotaExceededError,
)
from repro.security.keys import KeyStore, Principal
from repro.simnet.clock import VirtualClock


class FakeContext:
    """Minimal stand-in exposing what capabilities need."""

    def __init__(self):
        self.keystore = KeyStore(seed=7)
        self.clock = VirtualClock()
        self.sim = None
        self.machine = None

    def charge_cost(self, kind, nbytes):
        pass


@pytest.fixture
def ctx():
    return FakeContext()


def pair(descriptor, client_ctx, server_ctx=None):
    server_ctx = server_ctx or client_ctx
    return (make_capability(descriptor, client_ctx, "client"),
            make_capability(descriptor, server_ctx, "server"))


def roundtrip_request(client_cap, server_cap, payload=b"payload bytes"):
    meta = RequestMeta()
    wire = client_cap.process(payload, meta)
    return server_cap.unprocess(wire, meta), meta, wire


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("encryption", "auth", "quota", "lease", "compression",
                     "integrity", "tracing"):
            assert name in CAPABILITY_TYPES

    def test_unknown_type(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability({"type": "nope"}, ctx, "client")

    def test_bad_role(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability(CallQuotaCapability.for_calls(1), ctx, "spy")

    def test_duplicate_type_rejected(self):
        with pytest.raises(CapabilityError):
            register_capability_type(CallQuotaCapability)

    def test_custom_capability(self, ctx):
        class Rot13(Capability):
            type_name = "test-rot13"

            def process(self, data, meta):
                return bytes((b + 13) % 256 for b in data)

            def unprocess(self, data, meta):
                return bytes((b - 13) % 256 for b in data)

        register_capability_type(Rot13, replace=True)
        try:
            c, s = pair({"type": "test-rot13"}, ctx)
            out, _meta, wire = roundtrip_request(c, s, b"abc")
            assert out == b"abc" and wire != b"abc"
        finally:
            CAPABILITY_TYPES.pop("test-rot13", None)

    def test_applicability_override(self, ctx):
        cap = make_capability(
            CallQuotaCapability.for_calls(5, applicability="always"),
            ctx, "client")
        assert cap.applicability == "always"

    def test_default_applicability(self, ctx):
        cap = make_capability(CallQuotaCapability.for_calls(5), ctx,
                              "client")
        assert cap.applicability == "different-lan"


class TestEncryption:
    def test_roundtrip(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=11)
        c, s = pair(desc, ctx)
        out, meta, wire = roundtrip_request(c, s, b"secret data")
        assert out == b"secret data"
        assert b"secret data" not in wire

    def test_reply_roundtrip(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=11)
        c, s = pair(desc, ctx)
        meta = RequestMeta()
        s.unprocess(c.process(b"req", meta), meta)
        reply_wire = s.process_reply(b"reply data", meta)
        assert b"reply data" not in reply_wire
        assert c.unprocess_reply(reply_wire, meta) == b"reply data"

    def test_reply_without_request_fails(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=11)
        _c, s = pair(desc, ctx)
        with pytest.raises(CapabilityError):
            s.process_reply(b"reply", RequestMeta())

    def test_xtea_cipher(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=3,
                                                      cipher="xtea")
        c, s = pair(desc, ctx)
        out, _meta, _wire = roundtrip_request(c, s, b"block data")
        assert out == b"block data"

    def test_unknown_cipher(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=3)
        desc["cipher"] = "rot26"
        with pytest.raises(CapabilityError):
            make_capability(desc, ctx, "client")

    def test_two_clients_independent_keys(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=5)
        c1 = make_capability(desc, ctx, "client")
        c2 = make_capability(desc, ctx, "client")
        s = make_capability(desc, ctx, "server")
        for c in (c1, c2):
            out, _m, _w = roundtrip_request(c, s, b"hello")
            assert out == b"hello"
        assert c1._shared_key != c2._shared_key

    def test_corrupt_ciphertext(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=11)
        c, s = pair(desc, ctx)
        meta = RequestMeta()
        wire = bytearray(c.process(b"data", meta))
        wire[: 4] = b"\xff\xff\xff\xff"
        with pytest.raises(DecryptionError):
            s.unprocess(bytes(wire), meta)

    def test_server_needs_seed(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=1)
        del desc["server_key_seed"]
        with pytest.raises(CapabilityError):
            make_capability(desc, ctx, "server")
        # ... but the client half works from the public part alone,
        # which is how a sanitized descriptor would travel.
        assert make_capability(desc, ctx, "client") is not None

    def test_seed_public_mismatch_detected(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=1)
        desc["server_public"] += 1
        with pytest.raises(CapabilityError):
            make_capability(desc, ctx, "server")

    def test_default_applicability_is_different_site(self, ctx):
        desc = EncryptionCapability.server_descriptor(key_seed=1)
        cap = make_capability(desc, ctx, "client")
        assert cap.applicability == "different-site"


class TestAuthentication:
    def setup_keys(self, client_ctx, server_ctx):
        alice = Principal("alice", "lab")
        key = server_ctx.keystore.generate(alice)
        client_ctx.keystore.install(alice, key)
        return alice

    def test_roundtrip_sets_principal(self, ctx):
        server_ctx = FakeContext()
        alice = self.setup_keys(ctx, server_ctx)
        desc = AuthenticationCapability.for_principal(alice)
        c, s = pair(desc, ctx, server_ctx)
        out, meta, _wire = roundtrip_request(c, s, b"hello")
        assert out == b"hello"
        assert meta.principal == alice

    def test_wrong_key_rejected(self, ctx):
        server_ctx = FakeContext()
        alice = Principal("alice", "lab")
        ctx.keystore.install(alice, b"client-key")
        server_ctx.keystore.install(alice, b"different-key")
        desc = AuthenticationCapability.for_principal(alice)
        c, s = pair(desc, ctx, server_ctx)
        meta = RequestMeta()
        wire = c.process(b"hi", meta)
        with pytest.raises(AuthenticationError):
            s.unprocess(wire, meta)

    def test_unknown_principal_rejected(self, ctx):
        server_ctx = FakeContext()
        ghost = Principal("ghost")
        ctx.keystore.install(ghost, b"k")
        desc = AuthenticationCapability.for_principal(ghost)
        c, s = pair(desc, ctx, server_ctx)
        with pytest.raises(AuthenticationError):
            s.unprocess(c.process(b"x", RequestMeta()), RequestMeta())

    def test_replay_rejected(self, ctx):
        server_ctx = FakeContext()
        alice = self.setup_keys(ctx, server_ctx)
        desc = AuthenticationCapability.for_principal(alice)
        c, s = pair(desc, ctx, server_ctx)
        meta = RequestMeta()
        wire = c.process(b"once", meta)
        s.unprocess(wire, meta)
        with pytest.raises(AuthenticationError):
            s.unprocess(wire, RequestMeta())  # replay!

    def test_tamper_rejected(self, ctx):
        server_ctx = FakeContext()
        alice = self.setup_keys(ctx, server_ctx)
        desc = AuthenticationCapability.for_principal(alice)
        c, s = pair(desc, ctx, server_ctx)
        wire = bytearray(c.process(b"data", RequestMeta()))
        wire[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            s.unprocess(bytes(wire), RequestMeta())

    def test_reply_mac(self, ctx):
        server_ctx = FakeContext()
        alice = self.setup_keys(ctx, server_ctx)
        desc = AuthenticationCapability.for_principal(alice)
        c, s = pair(desc, ctx, server_ctx)
        meta = RequestMeta()
        s.unprocess(c.process(b"req", meta), meta)
        reply = s.process_reply(b"reply", meta)
        assert c.unprocess_reply(reply, meta) == b"reply"
        # Tampered reply must fail (flip a MAC byte; the trailing bytes
        # are XDR padding, which the MAC deliberately does not cover).
        bad = bytearray(reply)
        bad[0] ^= 1
        with pytest.raises(AuthenticationError):
            c.unprocess_reply(bytes(bad), meta)

    def test_descriptor_needs_principal(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability({"type": "auth"}, ctx, "client")

    def test_counters_increase(self, ctx):
        server_ctx = FakeContext()
        alice = self.setup_keys(ctx, server_ctx)
        desc = AuthenticationCapability.for_principal(alice)
        c, s = pair(desc, ctx, server_ctx)
        for i in range(3):
            out, _m, _w = roundtrip_request(c, s, f"m{i}".encode())
            assert out == f"m{i}".encode()
        assert s._seen[(str(alice), c._session)] == 3

    def test_two_sessions_same_principal(self, ctx):
        """Two clients sharing one principal must not trip each other's
        replay windows (separate session tokens)."""
        server_ctx = FakeContext()
        alice = self.setup_keys(ctx, server_ctx)
        desc = AuthenticationCapability.for_principal(alice)
        c1 = make_capability(desc, ctx, "client")
        c2 = make_capability(desc, ctx, "client")
        s = make_capability(desc, server_ctx, "server")
        for c in (c1, c2):
            out, _m, _w = roundtrip_request(c, s, b"hello")
            assert out == b"hello"


class TestQuota:
    def test_client_enforces(self, ctx):
        desc = CallQuotaCapability.for_calls(2)
        c, s = pair(desc, ctx)
        roundtrip_request(c, s)
        roundtrip_request(c, s)
        with pytest.raises(QuotaExceededError):
            c.process(b"third", RequestMeta())

    def test_server_enforces_independently(self, ctx):
        desc = CallQuotaCapability.for_calls(2)
        c = make_capability(desc, ctx, "client")
        s = make_capability(desc, ctx, "server")
        meta = RequestMeta()
        w1 = c.process(b"1", meta)
        w2 = c.process(b"2", meta)
        s.unprocess(w1, meta)
        s.unprocess(w2, meta)
        # A hand-crafted third message bypassing a client would still die.
        c2 = make_capability(desc, ctx, "client")
        w3 = c2.process(b"3", meta)
        with pytest.raises(QuotaExceededError):
            s.unprocess(w3, meta)

    def test_remaining(self, ctx):
        c = make_capability(CallQuotaCapability.for_calls(3), ctx, "client")
        assert c.remaining == 3
        c.process(b"x", RequestMeta())
        assert c.remaining == 2

    def test_replies_not_metered(self, ctx):
        c, s = pair(CallQuotaCapability.for_calls(1), ctx)
        meta = RequestMeta()
        s.unprocess(c.process(b"only", meta), meta)
        # Replies flow freely even with the quota exhausted.
        assert c.unprocess_reply(s.process_reply(b"r", meta), meta) == b"r"

    def test_meta_gets_accounting(self, ctx):
        c, s = pair(CallQuotaCapability.for_calls(5), ctx)
        _out, meta, _wire = roundtrip_request(c, s)
        assert meta.properties["quota.ordinal"] == 1
        assert meta.properties["quota.remaining"] == 4

    def test_invalid_max_calls(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability(CallQuotaCapability.describe(max_calls=0),
                            ctx, "client")


class TestLease:
    def test_live_lease_passes(self, ctx):
        desc = TimeLeaseCapability.lasting(10.0)
        c = TimeLeaseCapability(desc, ctx, "client")
        assert c.process(b"x", RequestMeta()) == b"x"

    def test_expired_lease_rejects(self, ctx):
        c = TimeLeaseCapability(TimeLeaseCapability.lasting(5.0), ctx,
                                "client")
        ctx.clock.advance(6.0)
        with pytest.raises(LeaseExpiredError):
            c.process(b"x", RequestMeta())

    def test_absolute_expiry(self, ctx):
        c = TimeLeaseCapability(TimeLeaseCapability.until(2.0), ctx,
                                "client")
        ctx.clock.advance(1.0)
        c.process(b"ok", RequestMeta())
        ctx.clock.advance(1.5)
        with pytest.raises(LeaseExpiredError):
            c.process(b"late", RequestMeta())

    def test_remaining_seconds(self, ctx):
        c = TimeLeaseCapability(TimeLeaseCapability.until(4.0), ctx,
                                "client")
        ctx.clock.advance(1.0)
        assert c.remaining_seconds == pytest.approx(3.0)
        ctx.clock.advance(10.0)
        assert c.remaining_seconds == 0.0

    def test_server_enforces_too(self, ctx):
        s = TimeLeaseCapability(TimeLeaseCapability.until(1.0), ctx,
                                "server")
        ctx.clock.advance(2.0)
        with pytest.raises(LeaseExpiredError):
            s.unprocess(b"x", RequestMeta())

    def test_replies_always_pass(self, ctx):
        s = TimeLeaseCapability(TimeLeaseCapability.until(1.0), ctx,
                                "server")
        ctx.clock.advance(2.0)
        assert s.process_reply(b"r", RequestMeta()) == b"r"

    def test_needs_expiry(self, ctx):
        with pytest.raises(CapabilityError):
            TimeLeaseCapability({"type": "lease"}, ctx, "client")

    def test_negative_duration(self, ctx):
        with pytest.raises(CapabilityError):
            TimeLeaseCapability(TimeLeaseCapability.describe(duration=-1),
                                ctx, "client")


class TestCompression:
    def test_roundtrip_compresses(self, ctx):
        desc = CompressionCapability.with_codec("zlib")
        c, s = pair(desc, ctx)
        payload = b"repetitive " * 500
        out, _meta, wire = roundtrip_request(c, s, payload)
        assert out == payload
        assert len(wire) < len(payload) / 2

    def test_small_payload_passes_raw(self, ctx):
        c, s = pair(CompressionCapability.with_codec("zlib", min_size=64),
                    ctx)
        out, _meta, wire = roundtrip_request(c, s, b"tiny")
        assert out == b"tiny"
        assert wire == b"\x00tiny"

    def test_incompressible_rides_raw(self, ctx):
        import numpy as np

        payload = np.random.default_rng(0).integers(
            0, 256, 4096, dtype=np.uint8).tobytes()
        c, s = pair(CompressionCapability.with_codec("zlib"), ctx)
        out, _meta, wire = roundtrip_request(c, s, payload)
        assert out == payload
        assert len(wire) <= len(payload) + 1

    @pytest.mark.parametrize("codec", ["rle", "lzss", "zlib"])
    def test_all_codecs(self, ctx, codec):
        c, s = pair(CompressionCapability.with_codec(codec), ctx)
        payload = b"\x00" * 1000 + b"data" * 100
        out, _meta, _wire = roundtrip_request(c, s, payload)
        assert out == payload

    def test_unknown_codec(self, ctx):
        with pytest.raises(CompressionError):
            make_capability(CompressionCapability.with_codec("gzip9000"),
                            ctx, "client")

    def test_garbage_flag_rejected(self, ctx):
        _c, s = pair(CompressionCapability.with_codec("zlib"), ctx)
        with pytest.raises(CompressionError):
            s.unprocess(b"\x07junk", RequestMeta())

    def test_ratio_tracking(self, ctx):
        c, _s = pair(CompressionCapability.with_codec("zlib"), ctx)
        c.process(b"abc" * 1000, RequestMeta())
        assert c.overall_ratio < 0.5


class TestIntegrity:
    def test_checksum_roundtrip(self, ctx):
        c, s = pair(IntegrityCapability.checksum(), ctx)
        out, _meta, _wire = roundtrip_request(c, s, b"fragile")
        assert out == b"fragile"
        assert s.verified == 1

    def test_checksum_detects_corruption(self, ctx):
        c, s = pair(IntegrityCapability.checksum(), ctx)
        wire = bytearray(c.process(b"fragile", RequestMeta()))
        wire[-1] ^= 0x40
        with pytest.raises(IntegrityError):
            s.unprocess(bytes(wire), RequestMeta())
        assert s.failures == 1

    def test_mac_mode(self, ctx):
        key_id = Principal("link-key")
        ctx.keystore.install(key_id, b"shared")
        c, s = pair(IntegrityCapability.mac("link-key"), ctx)
        out, _meta, _wire = roundtrip_request(c, s, b"payload")
        assert out == b"payload"

    def test_mac_detects_tamper(self, ctx):
        ctx.keystore.install(Principal("link-key"), b"shared")
        c, s = pair(IntegrityCapability.mac("link-key"), ctx)
        wire = bytearray(c.process(b"payload", RequestMeta()))
        wire[-2] ^= 0xFF
        with pytest.raises(IntegrityError):
            s.unprocess(bytes(wire), RequestMeta())

    def test_mac_needs_key_id(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability({"type": "integrity", "mode": "mac"}, ctx,
                            "client")

    def test_unknown_mode(self, ctx):
        with pytest.raises(CapabilityError):
            make_capability({"type": "integrity", "mode": "???"}, ctx,
                            "client")

    def test_short_payload_rejected(self, ctx):
        _c, s = pair(IntegrityCapability.checksum(), ctx)
        with pytest.raises(IntegrityError):
            s.unprocess(b"\x01", RequestMeta())


class TestTracing:
    def test_records_both_directions(self, ctx):
        c, s = pair({"type": "tracing"}, ctx)
        meta = RequestMeta()
        s.unprocess(c.process(b"req", meta), meta)
        c.unprocess_reply(s.process_reply(b"reply!", meta), meta)
        assert [(e.stage, e.role, e.direction) for e in c.events] == \
            [("process", "client", "request"),
             ("unprocess", "client", "reply")]
        assert [(e.stage, e.direction) for e in s.events] == \
            [("unprocess", "request"), ("process", "reply")]
        assert c.events[0].nbytes == 3

    def test_passthrough(self, ctx):
        c, _s = pair({"type": "tracing"}, ctx)
        assert c.process(b"data", RequestMeta()) == b"data"

    def test_bounded(self, ctx):
        c = make_capability({"type": "tracing", "max_events": 2}, ctx,
                            "client")
        for _ in range(5):
            c.process(b"x", RequestMeta())
        assert len(c.events) == 2

    def test_clear(self, ctx):
        c, _s = pair({"type": "tracing"}, ctx)
        c.process(b"x", RequestMeta())
        c.clear()
        assert c.events == []


class TestCapabilityClockSource:
    """Regression: capability timestamps come from the owning context's
    TimeSource (the shared VirtualClock under simulation) — never the
    wall-clock epoch."""

    def test_tracing_timestamps_follow_the_context_clock(self, ctx):
        cap = make_capability({"type": "tracing"}, ctx, "client")
        ctx.clock.advance_to(41.5)
        cap.process(b"x", RequestMeta())
        ctx.clock.advance(1.0)
        cap.process_reply(b"y", RequestMeta())
        assert [e.timestamp for e in cap.events] == \
            [pytest.approx(41.5), pytest.approx(42.5)]

    def test_lease_duration_resolves_against_the_context_clock(self, ctx):
        ctx.clock.advance_to(100.0)
        cap = make_capability(TimeLeaseCapability.lasting(5.0), ctx,
                              "client")
        # An epoch fallback would put expiry ~56 years in the future.
        assert cap.expires_at == pytest.approx(105.0)
        assert cap.remaining_seconds == pytest.approx(5.0)
        ctx.clock.advance(5.1)
        with pytest.raises(LeaseExpiredError):
            cap.process(b"x", RequestMeta())

    def test_contextless_capability_gets_the_shared_wall_source(self):
        from repro.util.timing import time_source

        class Bare:
            keystore = None
            sim = None
            machine = None

        bare = Bare()
        cap = make_capability({"type": "tracing"}, bare, "client")
        cap.process(b"x", RequestMeta())
        # No context clock: falls back to the process-wide wall source,
        # and both read the same timeline.
        assert cap.events[0].timestamp == pytest.approx(
            time_source(bare).now(), abs=5.0)
